"""The headline checkpoint guarantee: a run killed at any round and
resumed from its last checkpoint is bitwise-identical to an
uninterrupted run — history, parameters and trace digest — on every
executor backend.

Momentum is only exercised on the serial backend: thread/process
replicas each hold their own velocity slots, whose assignment is
scheduling-dependent, so optimizer state is only well-defined
cross-process for stateless SGD there.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt import checkpoint_paths, latest_checkpoint, read_checkpoint
from repro.ckpt.__main__ import main as ckpt_cli
from repro.experiments.ckpt_smoke import build_trainer, federation_parts
from repro.fl.trainer import FederatedTrainer
from repro.obs import load_trace, trace_digest

REPO_ROOT = Path(__file__).resolve().parent.parent

ROUNDS = 6
CRASH_ROUND = 5

MATRIX = [
    ("serial", "momentum"),
    ("serial", "sgd"),
    ("thread", "sgd"),
    ("process", "sgd"),
    ("batched", "sgd"),
]


class _Abort(RuntimeError):
    """Simulated crash raised from inside the decide phase."""


def _kwargs(tmp_path, tag, backend, optimizer):
    return dict(
        rounds=ROUNDS,
        backend=backend,
        optimizer=optimizer,
        ckpt_dir=str(tmp_path / f"{tag}-ckpt"),
        trace_path=str(tmp_path / f"{tag}-trace.jsonl"),
    )


def _run_uninterrupted(kwargs):
    trainer = build_trainer(**kwargs)
    with trainer:
        trainer.run(ROUNDS)
    return trainer


def _run_crashed_then_resumed(kwargs):
    trainer = build_trainer(**kwargs)
    seen = {"count": 0}

    def hook(result, decision):
        del result, decision
        # Crash mid-decide of CRASH_ROUND, after its predecessor's
        # checkpoint exists but with the round span still open.
        if len(trainer.history) + 1 == CRASH_ROUND:
            seen["count"] += 1
            if seen["count"] >= 2:
                raise _Abort("simulated crash")

    trainer.on_decision = hook
    with pytest.raises(_Abort):
        with trainer:
            trainer.run(ROUNDS)

    path = latest_checkpoint(kwargs["ckpt_dir"])
    assert path is not None
    assert path.name == f"ckpt-{CRASH_ROUND - 1:08d}.ckpt"
    resumed = FederatedTrainer.restore(path, **federation_parts(**kwargs))
    assert len(resumed.history) == CRASH_ROUND - 1
    with resumed:
        resumed.run(ROUNDS - len(resumed.history))
    return resumed


def _assert_verify_ok(*directories):
    paths = [str(p) for d in directories for p in checkpoint_paths(d)]
    assert paths
    assert ckpt_cli(["verify", *paths]) == 0


@pytest.mark.parametrize("backend,optimizer", MATRIX)
def test_crash_resume_is_bitwise_identical(tmp_path, backend, optimizer):
    full_kw = _kwargs(tmp_path, "full", backend, optimizer)
    part_kw = _kwargs(tmp_path, "part", backend, optimizer)
    full = _run_uninterrupted(full_kw)
    resumed = _run_crashed_then_resumed(part_kw)

    assert len(resumed.history) == ROUNDS
    assert resumed.history.to_jsonl() == full.history.to_jsonl()
    assert (
        resumed.server.global_params.tobytes()
        == full.server.global_params.tobytes()
    )
    assert trace_digest(load_trace(part_kw["trace_path"])) == trace_digest(
        load_trace(full_kw["trace_path"])
    )
    _assert_verify_ok(full_kw["ckpt_dir"], part_kw["ckpt_dir"])


def test_sigkill_resume_matches_uninterrupted(tmp_path):
    """A process killed with SIGKILL mid-round resumes to the same run."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    kill_kw = _kwargs(tmp_path, "kill", "serial", "momentum")
    cmd = [
        sys.executable, "-m", "repro.experiments.ckpt_smoke",
        "--rounds", str(ROUNDS),
        "--ckpt-dir", kill_kw["ckpt_dir"],
        "--trace", kill_kw["trace_path"],
    ]
    killed = subprocess.run(
        cmd + ["--kill-at", "4"], env=env, cwd=REPO_ROOT, capture_output=True
    )
    assert killed.returncode == -signal.SIGKILL
    assert latest_checkpoint(kill_kw["ckpt_dir"]).name == "ckpt-00000003.ckpt"

    resumed = subprocess.run(
        cmd + ["--resume"], env=env, cwd=REPO_ROOT,
        capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resuming from" in resumed.stdout

    full_kw = _kwargs(tmp_path, "full", "serial", "momentum")
    full = _run_uninterrupted(full_kw)

    final = read_checkpoint(
        Path(kill_kw["ckpt_dir"]) / f"ckpt-{ROUNDS:08d}.ckpt"
    )
    assert final.texts["history.jsonl"] == full.history.to_jsonl()
    np.testing.assert_array_equal(
        final.arrays["global_params"], full.server.global_params
    )
    assert trace_digest(load_trace(kill_kw["trace_path"])) == trace_digest(
        load_trace(full_kw["trace_path"])
    )
    _assert_verify_ok(kill_kw["ckpt_dir"], full_kw["ckpt_dir"])


def test_resume_without_trace(tmp_path):
    """Checkpointing works with tracing off; restore matches the full run."""
    kw = dict(
        rounds=ROUNDS, backend="serial", optimizer="momentum",
        ckpt_dir=str(tmp_path / "ckpt"),
    )
    full = _run_uninterrupted(kw)
    mid = Path(kw["ckpt_dir"]) / "ckpt-00000003.ckpt"
    resumed = FederatedTrainer.restore(mid, **federation_parts(**kw))
    assert not resumed.tracer.enabled
    with resumed:
        resumed.run(ROUNDS - 3)
    assert resumed.history.to_jsonl() == full.history.to_jsonl()
    assert (
        resumed.server.global_params.tobytes()
        == full.server.global_params.tobytes()
    )


def test_restore_rejects_mismatched_federation(tmp_path):
    from repro.ckpt import CheckpointError

    kw = dict(
        rounds=2, backend="serial", optimizer="momentum",
        ckpt_dir=str(tmp_path / "ckpt"),
    )
    trainer = build_trainer(**kw)
    with trainer:
        trainer.run(2)
    path = latest_checkpoint(kw["ckpt_dir"])
    wrong = federation_parts(**{**kw, "optimizer": "sgd"})
    with pytest.raises(CheckpointError, match="does not match"):
        FederatedTrainer.restore(path, **wrong)


def test_checkpoint_every_and_retention_in_run(tmp_path):
    kw = dict(
        rounds=ROUNDS, backend="serial", optimizer="sgd",
        ckpt_dir=str(tmp_path / "ckpt"), ckpt_every=2, ckpt_keep=2,
    )
    trainer = build_trainer(**kw)
    with trainer:
        trainer.run(ROUNDS)
    names = [p.name for p in checkpoint_paths(kw["ckpt_dir"])]
    assert names == ["ckpt-00000004.ckpt", "ckpt-00000006.ckpt"]
    _assert_verify_ok(kw["ckpt_dir"])
