"""The async event engine: S=0 bitwise sync-equivalence, bounded
staleness, determinism, churn, and the virtual-timeline primitives."""

import numpy as np
import pytest

from repro.core import AlwaysUpload, CMFLPolicy, TriggerPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.fl.client import FLClient
from repro.fl.config import ConfigError, FLConfig
from repro.fl.events import (
    ARRIVAL,
    DISPATCH,
    AsyncConfig,
    AsyncFederatedTrainer,
    Event,
    EventQueue,
    LatencyModel,
    VirtualClock,
)
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.obs import load_trace, trace_digest
from repro.utils.rng import child_rngs

N_FEATURES = 4


def _clients(n=6, seed=0):
    rngs = child_rngs(seed, n + 2)
    w = rngs[0].normal(size=N_FEATURES)
    clients = []
    for i in range(n):
        x = rngs[1].normal(size=(20, N_FEATURES))
        y = (x @ w > 0).astype(np.int64)
        clients.append(FLClient(i, Dataset(x, y), rng=rngs[2 + i]))
    return clients


def _workspace(seed=3):
    model = make_logistic_regression(N_FEATURES, rng=seed)
    return ModelWorkspace(
        model,
        SigmoidBinaryCrossEntropy(),
        SGD(model.parameters(), 0.5),
        metric=binary_accuracy,
    )


def _policy(kind="always"):
    if kind == "always":
        return TriggerPolicy(AlwaysUpload())
    return CMFLPolicy(InverseSqrtThreshold(0.8))


def _trainer(backend="serial", policy="always", rounds=4, trace_path=None):
    config = FLConfig(
        rounds=rounds,
        local_epochs=1,
        batch_size=8,
        lr=ConstantLR(0.3),
        seed=11,
        executor=backend,
        trace=trace_path is not None,
        trace_path=None if trace_path is None else str(trace_path),
    )
    return FederatedTrainer(_workspace(), _clients(), _policy(policy), config)


def _run_sync(backend, policy, trace_path):
    trainer = _trainer(backend, policy, trace_path=trace_path)
    trainer.run()
    trainer.close()
    return trainer


def _run_async(backend, policy, trace_path, async_config):
    engine = AsyncFederatedTrainer(
        _trainer(backend, policy, trace_path=trace_path),
        async_config=async_config,
    )
    engine.run()
    engine.close()
    return engine


# -- timeline primitives -----------------------------------------------------


class TestClockAndQueue:
    def test_clock_never_goes_backwards(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_queue_orders_by_time_then_kind(self):
        queue = EventQueue()
        queue.push(Event(2.0, DISPATCH, 2))
        queue.push(Event(1.0, DISPATCH, 1))
        queue.push(Event(2.0, ARRIVAL, 1, client_id=3))
        order = [queue.pop() for _ in range(3)]
        assert [(e.time, e.kind) for e in order] == [
            (1.0, DISPATCH),
            (2.0, ARRIVAL),
            (2.0, DISPATCH),
        ]

    def test_queue_state_roundtrip(self):
        queue = EventQueue()
        queue.push(Event(1.5, ARRIVAL, 1, client_id=2))
        queue.push(Event(0.5, DISPATCH, 1))
        other = EventQueue()
        other.load_state_dict(queue.state_dict())
        assert list(other) == list(queue)
        assert other.has_kind(DISPATCH)

    def test_latency_is_a_pure_function(self):
        model = LatencyModel(seed=7, n_params=10, drop_rate=0.3)
        draws = [model.timing(3, 5, 20, 2) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]
        assert draws[0].latency_s > 0.0

    def test_latency_streams_differ_across_rounds_and_clients(self):
        model = LatencyModel(seed=7, n_params=10)
        a = model.timing(1, 0, 20, 1)
        b = model.timing(2, 0, 20, 1)
        c = model.timing(1, 1, 20, 1)
        assert len({a.latency_s, b.latency_s, c.latency_s}) == 3


class TestAsyncConfig:
    def test_merge_weight_is_exactly_one_at_zero(self):
        cfg = AsyncConfig(staleness_bound=4, staleness_alpha=1.7)
        assert cfg.merge_weight(0) == 1.0
        assert cfg.merge_weight(2) == pytest.approx(1.0 / 3.0**1.7)

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncConfig(staleness_bound=-1)
        with pytest.raises(ValueError):
            AsyncConfig(drop_rate=1.0)


# -- S = 0: bitwise synchronous equivalence ----------------------------------


class TestSyncEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "batched"])
    @pytest.mark.parametrize("policy", ["always", "cmfl"])
    def test_bitwise_identical_to_sync_trainer(
        self, tmp_path, backend, policy
    ):
        sync_path = tmp_path / f"sync-{backend}-{policy}.jsonl"
        async_path = tmp_path / f"async-{backend}-{policy}.jsonl"
        sync = _run_sync(backend, policy, sync_path)
        engine = _run_async(backend, policy, async_path, AsyncConfig())

        assert (
            engine.history.to_jsonl() == sync.history.to_jsonl()
        )
        assert (
            engine.trainer.server.global_params.tobytes()
            == sync.server.global_params.tobytes()
        )
        assert trace_digest(load_trace(async_path)) == trace_digest(
            load_trace(sync_path)
        )

    def test_sync_mode_records_zero_staleness(self, tmp_path):
        engine = _run_async("serial", "always", None, AsyncConfig())
        assert engine.history.staleness().tolist() == [0, 0, 0, 0]
        assert engine.history.virtual_times().tolist() == [0.0] * 4


# -- S > 0: bounded staleness ------------------------------------------------


class TestBoundedStaleness:
    def _run(self, staleness_bound=2, trace_path=None, **knobs):
        return _run_async(
            "serial",
            "always",
            trace_path,
            AsyncConfig(staleness_bound=staleness_bound, **knobs),
        )

    def test_rounds_overlap_and_staleness_is_bounded(self):
        engine = self._run(staleness_bound=2, speed_sigma=1.0)
        staleness = engine.history.staleness()
        assert len(engine.history) == 4
        assert staleness.max() <= 2
        # With heavy straggling and S=2, at least one round must have
        # aggregated against a model that moved while it was in flight.
        assert staleness.max() >= 1

    def test_virtual_time_is_monotone_and_positive(self):
        engine = self._run()
        times = engine.history.virtual_times()
        assert np.all(np.diff(times) >= 0)
        assert times[0] > 0.0

    def test_identical_runs_are_bitwise_identical(self, tmp_path):
        a = self._run(trace_path=tmp_path / "a.jsonl", speed_sigma=1.0)
        b = self._run(trace_path=tmp_path / "b.jsonl", speed_sigma=1.0)
        assert a.history.to_jsonl() == b.history.to_jsonl()
        assert (
            a.trainer.server.global_params.tobytes()
            == b.trainer.server.global_params.tobytes()
        )
        assert trace_digest(load_trace(tmp_path / "a.jsonl")) == trace_digest(
            load_trace(tmp_path / "b.jsonl")
        )

    def test_async_history_differs_from_sync_when_stale(self):
        sync = _run_sync("serial", "always", None)
        engine = self._run(staleness_bound=2, speed_sigma=1.0)
        assert engine.history.to_jsonl() != sync.history.to_jsonl()

    def test_churn_drops_clients_but_rounds_still_close(self):
        engine = self._run(staleness_bound=1, drop_rate=0.4)
        assert len(engine.history) == 4
        n_clients = np.array([r.n_clients for r in engine.history])
        # drop_rate=0.4 over 6 clients x 4 rounds: some upload must
        # have been lost (probability of none is ~1e-5 at this seed).
        assert n_clients.min() < 6
        assert n_clients.min() >= 1

    def test_ledger_tracks_staleness(self):
        engine = self._run(staleness_bound=2, speed_sigma=1.0)
        ledger = engine.trainer.ledger
        assert ledger.staleness_max == engine.history.staleness().max()
        assert ledger.staleness_total == engine.history.staleness().sum()

    def test_async_metrics_are_emitted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        engine = self._run(
            staleness_bound=2, trace_path=path, speed_sigma=1.0
        )
        events = load_trace(path)
        counters = {}
        for event in events:
            if event.get("kind") == "metric":
                counters[event["name"]] = event["attrs"].get("value")
        assert counters.get("async.dispatches") == 4
        assert counters.get("async.closes") == 4
        assert counters.get("async.arrivals") == 4 * 6
        span_names = {
            e["name"] for e in events if e.get("kind") == "span"
        }
        assert {"dispatch", "round_close"} <= span_names
        assert "round" not in span_names


# -- configuration errors ----------------------------------------------------


class TestConfigError:
    def test_store_process_backend_is_structured(self):
        from repro.fl.store import ClientStateStore

        store = ClientStateStore.from_clients(_clients(), shard_size=4)
        config = FLConfig(
            rounds=2,
            local_epochs=1,
            batch_size=8,
            lr=ConstantLR(0.3),
            executor="process",
        )
        with pytest.raises(ConfigError) as excinfo:
            FederatedTrainer(_workspace(), store, _policy(), config)
        assert excinfo.value.constraint == "store-process-backend"
        assert "process" not in excinfo.value.supported
        assert "serial" in excinfo.value.supported
        # Still a ValueError: pre-existing call sites keep working.
        assert isinstance(excinfo.value, ValueError)
