"""RunHistory serialisation: the v2 schema (async columns) round-trips
bitwise and v1 files still load with zero staleness/virtual_time."""

import json
from dataclasses import asdict

import pytest

from repro.fl.history import (
    COMPATIBLE_SCHEMAS,
    HISTORY_SCHEMA,
    RoundRecord,
    RunHistory,
)


def _record(iteration, staleness=0, virtual_time=0.0):
    return RoundRecord(
        iteration=iteration,
        n_clients=6,
        n_uploaded=4,
        accumulated_rounds=4 * iteration,
        total_bytes=1024 * iteration,
        lr=0.3,
        mean_train_loss=0.5 / iteration,
        mean_score=0.8,
        threshold=0.57,
        test_loss=0.4,
        test_metric=0.9,
        uploaded_ids=[0, 2, 3, 5],
        staleness=staleness,
        virtual_time=virtual_time,
    )


def _async_history():
    history = RunHistory(policy_name="cmfl")
    for t, (s, vt) in enumerate([(0, 1.5), (1, 2.25), (2, 2.5)], start=1):
        history.append(_record(t, staleness=s, virtual_time=vt))
    return history


def test_v2_roundtrip_is_bitwise(tmp_path):
    history = _async_history()
    path = tmp_path / "run.jsonl"
    text = history.to_jsonl(path)
    for restored in (RunHistory.from_jsonl(text),
                     RunHistory.from_jsonl(path)):
        assert restored.to_jsonl() == text
        assert restored.staleness().tolist() == [0, 1, 2]
        assert restored.virtual_times().tolist() == [1.5, 2.25, 2.5]


def test_header_carries_v2_schema():
    header = json.loads(_async_history().to_jsonl().splitlines()[0])
    assert header["schema"] == HISTORY_SCHEMA == "repro-run-history/v2"


def test_v1_files_load_with_zero_async_columns():
    """Pre-async histories (no staleness/virtual_time keys) must keep
    loading; the missing columns default to the synchronous zeros."""
    assert "repro-run-history/v1" in COMPATIBLE_SCHEMAS
    lines = [json.dumps({"schema": "repro-run-history/v1",
                         "policy_name": "cmfl"})]
    for t in (1, 2):
        row = asdict(_record(t))
        del row["staleness"], row["virtual_time"]
        lines.append(json.dumps(row, sort_keys=True))
    history = RunHistory.from_jsonl("\n".join(lines) + "\n")
    assert len(history) == 2
    assert history.staleness().tolist() == [0, 0]
    assert history.virtual_times().tolist() == [0.0, 0.0]
    # Re-serialising upgrades the file to v2 with explicit zeros.
    header = json.loads(history.to_jsonl().splitlines()[0])
    assert header["schema"] == "repro-run-history/v2"


def test_unknown_schema_is_rejected():
    text = json.dumps({"schema": "repro-run-history/v99",
                       "policy_name": "cmfl"}) + "\n"
    with pytest.raises(ValueError, match="repro-run-history"):
        RunHistory.from_jsonl(text)
