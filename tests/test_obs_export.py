"""Metrics export (OpenMetrics/JSONL) and the CLI's behavior on
damaged traces."""

import json

import pytest

from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.obs import (
    EXPORT_SCHEMA,
    MemorySink,
    Tracer,
    diff_traces,
    load_trace,
    metrics_from_trace,
    openmetrics_name,
    to_jsonl_snapshot,
    to_openmetrics,
)
from repro.obs.__main__ import main as obs_main
from tests.test_executor import _federation


def _traced_metrics():
    sink = MemorySink()
    tracer = Tracer(sinks=[sink])
    tracer.metrics.counter("comm.uploads").inc(7)
    tracer.metrics.gauge("store.shards_materialized").set(3)
    hist = tracer.metrics.histogram("runtime.executor.queue_wait")
    for v in (0.01, 0.02, 0.03, 0.04):
        hist.observe(v)
    tracer.close()
    return sink.events


def _parse_openmetrics(text):
    """A minimal OpenMetrics exposition parser: types + samples."""
    assert text.endswith("# EOF\n")
    types, samples = {}, {}
    for line in text.splitlines():
        if line == "# EOF":
            break
        if line.startswith("# TYPE "):
            _, _, name, metric_type = line.split(" ")
            types[name] = metric_type
            continue
        name_and_labels, value = line.rsplit(" ", 1)
        samples[name_and_labels] = float(value)
    return types, samples


class TestOpenMetrics:
    def test_name_sanitization(self):
        assert openmetrics_name("comm.uploaded_bytes") == "comm_uploaded_bytes"
        assert openmetrics_name("emu.bytes.UPDATE") == "emu_bytes_UPDATE"
        assert openmetrics_name("9lives") == "_9lives"

    def test_exposition_covers_all_metric_types(self):
        metrics = metrics_from_trace(_traced_metrics())
        types, samples = _parse_openmetrics(to_openmetrics(metrics))
        assert types["comm_uploads"] == "counter"
        assert samples["comm_uploads_total"] == 7
        assert types["store_shards_materialized"] == "gauge"
        assert samples["store_shards_materialized"] == 3
        # Histogram sketches export as the OpenMetrics summary type.
        assert types["runtime_executor_queue_wait"] == "summary"
        assert samples["runtime_executor_queue_wait_count"] == 4
        assert samples["runtime_executor_queue_wait_sum"] == pytest.approx(
            0.1
        )
        assert samples['runtime_executor_queue_wait{quantile="0.5"}'] == (
            pytest.approx(0.025)
        )

    def test_families_are_name_sorted(self):
        metrics = metrics_from_trace(_traced_metrics())
        text = to_openmetrics(metrics)
        family_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert family_lines == sorted(family_lines)


class TestJsonlSnapshot:
    def test_schema_header_and_one_object_per_metric(self):
        metrics = metrics_from_trace(_traced_metrics())
        lines = to_jsonl_snapshot(metrics).splitlines()
        assert json.loads(lines[0]) == {"schema": EXPORT_SCHEMA}
        parsed = [json.loads(line) for line in lines[1:]]
        assert [p["name"] for p in parsed] == sorted(metrics)
        by_name = {p["name"]: p for p in parsed}
        assert by_name["comm.uploads"]["value"] == 7
        assert by_name["comm.uploads"]["type"] == "counter"
        # Internal resume-state never leaks into the export.
        assert all("state" not in p for p in parsed)


class TestMetricsFromTrace:
    def test_prefers_the_close_time_snapshot(self):
        metrics = metrics_from_trace(_traced_metrics())
        assert metrics["comm.uploads"]["value"] == 7
        # Histogram quantiles only exist via the snapshot path.
        assert metrics["runtime.executor.queue_wait"]["p50"] is not None

    def test_falls_back_to_streamed_metric_events(self):
        # A killed run: drop the close-time snapshot.
        events = [
            e
            for e in _traced_metrics()
            if e.get("name") != "metrics_snapshot"
        ]
        metrics = metrics_from_trace(events)
        assert metrics["comm.uploads"]["value"] == 7
        assert metrics["comm.uploads"]["type"] == "counter"
        # Histograms do not stream per observation.
        assert "runtime.executor.queue_wait" not in metrics


def _write_trace(tmp_path, name="trace.jsonl", rounds=2):
    trainer, _ = _federation(
        CMFLPolicy(InverseSqrtThreshold(0.8)),
        rounds=rounds,
        trace_path=str(tmp_path / name),
    )
    with trainer:
        trainer.run()
    trainer.tracer.close()
    return tmp_path / name


class TestExportCli:
    def test_export_openmetrics_to_stdout(self, tmp_path, capsys):
        trace = _write_trace(tmp_path)
        assert obs_main(["export", str(trace)]) == 0
        out = capsys.readouterr().out
        types, samples = _parse_openmetrics(out)
        assert types["comm_uploads"] == "counter"
        assert "comm_uploaded_bytes_total" in samples

    def test_export_jsonl_to_file(self, tmp_path):
        trace = _write_trace(tmp_path)
        out = tmp_path / "metrics.jsonl"
        assert obs_main(
            ["export", str(trace), "--format", "jsonl", "--out", str(out)]
        ) == 0
        lines = out.read_text().splitlines()
        assert json.loads(lines[0]) == {"schema": EXPORT_SCHEMA}

    def test_export_missing_file_exits_2(self, tmp_path, capsys):
        assert obs_main(["export", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDamagedTraces:
    """`diff` (and friends) on truncated / corrupted JSONL files."""

    def test_diff_identical_traces_is_clean(self, tmp_path, capsys):
        a = _write_trace(tmp_path, "a.jsonl")
        b = _write_trace(tmp_path, "b.jsonl")
        assert obs_main(["diff", str(a), str(b)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_diff_truncated_trace_reports_divergence(self, tmp_path, capsys):
        a = _write_trace(tmp_path, "a.jsonl")
        b = tmp_path / "truncated.jsonl"
        lines = a.read_text().splitlines(keepends=True)
        # Whole-line truncation: a run killed between writes.  Every
        # line parses, so the diff itself must flag the missing tail.
        b.write_text("".join(lines[:-5]))
        assert obs_main(["diff", str(a), str(b)]) == 1
        assert capsys.readouterr().out  # names the diverging events
        differences = diff_traces(load_trace(a), load_trace(b))
        assert differences

    def test_diff_mid_line_corruption_exits_2(self, tmp_path, capsys):
        a = _write_trace(tmp_path, "a.jsonl")
        b = tmp_path / "corrupt.jsonl"
        lines = a.read_text().splitlines(keepends=True)
        middle = len(lines) // 2
        # Chop a line in half: a crash mid-write (no trailing newline
        # flush).  The loader must name the bad line, not guess.
        lines[middle] = lines[middle][: len(lines[middle]) // 2]
        b.write_text("".join(lines))
        assert obs_main(["diff", str(a), str(b)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_validate_truncated_trace_flags_missing_close(
        self, tmp_path, capsys
    ):
        a = _write_trace(tmp_path, "a.jsonl")
        b = tmp_path / "truncated.jsonl"
        lines = a.read_text().splitlines(keepends=True)
        b.write_text("".join(lines[:-5]))
        # Truncation is detectable but not a parse error.
        assert obs_main(["digest", str(b)]) == 0
