"""The MOCHA-style MTL substrate."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import ConstantThreshold
from repro.data.har import make_har_tasks
from repro.mtl.mocha import MochaTrainer, MTLConfig
from repro.mtl.relationship import (
    inverse_relationship,
    relationship_matrix,
    task_similarity,
)


@pytest.fixture
def tasks():
    return make_har_tasks(n_clients=10, n_features=20, min_samples=10,
                          max_samples=30, rng=0)


@pytest.fixture
def config():
    return MTLConfig(rounds=5, local_epochs=1, batch_size=5, lr=0.01,
                     personal_retention=0.5, eval_every=1, seed=1)


class TestRelationship:
    def test_symmetric_unit_trace(self, rng):
        w = rng.normal(size=(8, 4))
        omega = relationship_matrix(w, ridge=0.0)
        np.testing.assert_allclose(omega, omega.T, atol=1e-10)
        assert np.trace(omega) == pytest.approx(1.0)

    def test_positive_definite(self, rng):
        w = rng.normal(size=(8, 4))
        omega = relationship_matrix(w)
        assert np.all(np.linalg.eigvalsh(omega) > 0)

    def test_inverse(self, rng):
        w = rng.normal(size=(8, 4))
        omega = relationship_matrix(w)
        inv = inverse_relationship(omega, ridge=0.0)
        np.testing.assert_allclose(omega @ inv, np.eye(4), atol=1e-6)

    def test_similarity_identical_columns(self):
        w = np.tile(np.arange(1, 5, dtype=float)[:, None], (1, 3))
        sim = task_similarity(w)
        np.testing.assert_allclose(sim, np.ones((3, 3)))

    def test_similarity_opposite_columns(self):
        col = np.arange(1, 5, dtype=float)
        w = np.stack([col, -col], axis=1)
        sim = task_similarity(w)
        assert sim[0, 1] == pytest.approx(-1.0)

    def test_zero_column_similarity_is_zero(self):
        w = np.zeros((4, 2))
        w[:, 0] = 1.0
        sim = task_similarity(w)
        assert sim[0, 1] == 0.0


class TestMTLConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MTLConfig(rounds=0)
        with pytest.raises(ValueError):
            MTLConfig(lr=0.0)
        with pytest.raises(ValueError):
            MTLConfig(personal_retention=1.5)
        with pytest.raises(ValueError):
            MTLConfig(feedback_mode="bogus")


class TestMochaTrainer:
    def test_runs_and_records(self, tasks, config):
        trainer = MochaTrainer(tasks, VanillaPolicy(), config)
        history = trainer.run()
        assert len(history) == 5
        assert history.final.accumulated_rounds == 10 * 5
        assert 0.0 <= history.final.test_metric <= 1.0

    def test_learning_improves_over_zero_init(self):
        low_noise = make_har_tasks(n_clients=10, n_features=20,
                                   min_samples=10, max_samples=30,
                                   noise_std=1.0, rng=0)
        config = MTLConfig(rounds=8, local_epochs=2, batch_size=5, lr=0.05,
                           personal_retention=0.5, eval_every=1, seed=1)
        trainer = MochaTrainer(low_noise, VanillaPolicy(), config)
        history = trainer.run()
        # zero weights predict class 1 everywhere -> ~0.5 accuracy
        assert history.final.test_metric > 0.65

    def test_task_weights_combines_base_and_offset(self, tasks, config):
        trainer = MochaTrainer(tasks, VanillaPolicy(), config)
        trainer.run(2)
        k = 0
        np.testing.assert_allclose(
            trainer.task_weights(k), trainer.base + trainer.offsets[:, k]
        )

    def test_cmfl_reduces_uploads(self, config):
        tasks = make_har_tasks(n_clients=10, n_features=20, min_samples=10,
                               max_samples=30, rng=0)
        vanilla = MochaTrainer(tasks, VanillaPolicy(), config).run()
        tasks = make_har_tasks(n_clients=10, n_features=20, min_samples=10,
                               max_samples=30, rng=0)
        cmfl = MochaTrainer(
            tasks, CMFLPolicy(ConstantThreshold(0.55)), config
        ).run()
        assert cmfl.final.accumulated_rounds < vanilla.final.accumulated_rounds

    def test_outliers_filtered_more_than_clean(self):
        tasks = make_har_tasks(n_clients=20, n_features=60, min_samples=15,
                               max_samples=40, noise_std=0.8, rng=4)
        config = MTLConfig(rounds=10, local_epochs=1, batch_size=5, lr=0.005,
                           personal_retention=0.5, eval_every=5, seed=2)
        trainer = MochaTrainer(tasks, CMFLPolicy(ConstantThreshold(0.53)),
                               config)
        trainer.run()
        skips = np.asarray(trainer.ledger.elimination_counts(20), dtype=float)
        outliers = np.asarray([t.is_outlier for t in tasks])
        assert skips[outliers].mean() > skips[~outliers].mean()

    def test_feedback_modes_run(self, tasks):
        for mode in ("mean", "relationship"):
            config = MTLConfig(rounds=3, local_epochs=1, batch_size=5,
                               lr=0.01, feedback_mode=mode, seed=1)
            history = MochaTrainer(tasks, VanillaPolicy(), config).run()
            assert len(history) == 3

    def test_reproducible(self, config):
        results = []
        for _ in range(2):
            tasks = make_har_tasks(n_clients=6, n_features=15, rng=7)
            trainer = MochaTrainer(tasks, VanillaPolicy(), config)
            trainer.run()
            results.append(trainer.base.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_mismatched_feature_dims_rejected(self, config):
        a = make_har_tasks(n_clients=3, n_features=10, rng=0)
        b = make_har_tasks(n_clients=3, n_features=12, rng=0)
        with pytest.raises(ValueError):
            MochaTrainer(a + b, VanillaPolicy(), config)

    def test_empty_tasks_rejected(self, config):
        with pytest.raises(ValueError):
            MochaTrainer([], VanillaPolicy(), config)
