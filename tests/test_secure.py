"""Secure aggregation: masks cancel, privacy holds, dropouts unmask."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.secure import SecureAggregator, pairwise_mask


def _updates(n_clients, n_params, seed=0):
    gen = np.random.default_rng(seed)
    return {i: gen.normal(size=n_params) for i in range(n_clients)}


class TestPairwiseMask:
    def test_symmetric_in_pair(self):
        a = pairwise_mask(7, 2, 5, 16)
        b = pairwise_mask(7, 5, 2, 16)
        np.testing.assert_array_equal(a, b)

    def test_distinct_pairs_distinct_masks(self):
        a = pairwise_mask(7, 2, 5, 16)
        b = pairwise_mask(7, 2, 6, 16)
        assert not np.array_equal(a, b)

    def test_self_mask_rejected(self):
        with pytest.raises(ValueError):
            pairwise_mask(7, 3, 3, 16)


class TestAggregation:
    def test_masks_cancel_exactly(self):
        updates = _updates(5, 32)
        agg = SecureAggregator(list(updates), n_params=32, master_seed=11)
        for cid, u in updates.items():
            agg.submit(cid, agg.mask_update(cid, u))
        total, count = agg.aggregate()
        assert count == 5
        np.testing.assert_allclose(total, sum(updates.values()), atol=1e-9)

    def test_mean_matches_plain_mean(self):
        updates = _updates(4, 10, seed=3)
        agg = SecureAggregator(list(updates), n_params=10, master_seed=2)
        for cid, u in updates.items():
            agg.submit(cid, agg.mask_update(cid, u))
        np.testing.assert_allclose(
            agg.aggregate_mean(), np.mean(list(updates.values()), axis=0),
            atol=1e-9,
        )

    def test_masked_upload_hides_the_raw_update(self):
        """The server-visible vector is far from the raw update."""
        updates = _updates(3, 64, seed=5)
        agg = SecureAggregator(list(updates), n_params=64, master_seed=9,
                               mask_scale=5.0)
        masked = agg.mask_update(0, updates[0])
        raw = updates[0]
        correlation = np.dot(masked, raw) / (
            np.linalg.norm(masked) * np.linalg.norm(raw)
        )
        assert abs(correlation) < 0.5

    def test_dropout_unmasking(self):
        """A client that masks but never submits is reconstructed away."""
        updates = _updates(4, 20, seed=7)
        agg = SecureAggregator(list(updates), n_params=20, master_seed=4)
        for cid in (0, 1, 3):  # client 2 drops out after masking
            agg.submit(cid, agg.mask_update(cid, updates[cid]))
        assert agg.missing() == [2]
        total, count = agg.aggregate()
        assert count == 3
        expected = updates[0] + updates[1] + updates[3]
        np.testing.assert_allclose(total, expected, atol=1e-9)

    def test_double_submit_rejected(self):
        agg = SecureAggregator([0, 1], n_params=4, master_seed=0)
        agg.submit(0, np.zeros(4))
        with pytest.raises(ValueError):
            agg.submit(0, np.zeros(4))

    def test_unknown_client_rejected(self):
        agg = SecureAggregator([0, 1], n_params=4, master_seed=0)
        with pytest.raises(ValueError):
            agg.mask_update(9, np.zeros(4))

    def test_needs_two_participants(self):
        with pytest.raises(ValueError):
            SecureAggregator([0], n_params=4, master_seed=0)

    @settings(max_examples=20)
    @given(st.integers(2, 8), st.integers(1, 40), st.integers(0, 2**31 - 1))
    def test_cancellation_property(self, n_clients, n_params, seed):
        updates = _updates(n_clients, n_params, seed=seed)
        agg = SecureAggregator(list(updates), n_params=n_params,
                               master_seed=seed)
        for cid, u in updates.items():
            agg.submit(cid, agg.mask_update(cid, u))
        total, _ = agg.aggregate()
        np.testing.assert_allclose(total, sum(updates.values()), atol=1e-7)
