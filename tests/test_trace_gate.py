"""Tier-1 gate: a traced smoke run writes a schema-valid JSONL trace
whose spans and counters reconcile with the run's own measurements."""

import pytest

from repro.experiments.trace_smoke import run_traced_smoke
from repro.obs import (
    comm_totals,
    load_trace,
    phase_summary,
    round_rows,
    validate_trace,
)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "smoke.jsonl"
    trainer = run_traced_smoke(rounds=2, trace_path=str(path))
    return trainer, load_trace(path)


def test_trace_file_is_schema_valid(traced_run):
    _, events = traced_run
    assert validate_trace(events) == []


def test_trace_reproduces_ledger_totals_exactly(traced_run):
    trainer, events = traced_run
    totals = comm_totals(events)
    assert totals["comm.uploads"] == trainer.ledger.accumulated_rounds
    assert totals["comm.skips"] == sum(
        trainer.ledger.skips_per_client.values()
    )
    assert (
        totals["comm.uploaded_bytes"] + totals["comm.status_bytes"]
        == trainer.ledger.total_bytes
    )


def test_trace_reproduces_history_upload_counts(traced_run):
    trainer, events = traced_run
    rows = round_rows(events, history=trainer.history)
    assert [r["iteration"] for r in rows] == [1, 2]
    for row, record in zip(rows, trainer.history):
        assert row["n_uploaded"] == record.n_uploaded
        assert row["total_bytes"] == record.total_bytes


def test_client_compute_spans_reconcile_with_round_wall_time(traced_run):
    trainer, events = traced_run
    rows = round_rows(events, history=trainer.history)
    n_clients = len(trainer.clients)
    phases = phase_summary(events)
    assert phases["client_compute"]["count"] == 2 * n_clients
    for row in rows:
        # Serial backend: the clients ran inside the round span one
        # after another, so their summed time is bounded by (and for a
        # compute-dominated round, most of) the round wall time.
        assert 0 < row["client_compute_s"] <= row["round_s"]
        covered = (
            row["client_compute_s"] + row["decide_s"]
            + row["aggregate_s"] + row["evaluate_s"] + row["broadcast_s"]
        )
        assert covered <= row["round_s"]
