"""The checkpoint layer: atomic IO, container format, state round-trips,
retention and the ``python -m repro.ckpt`` CLI."""

import json
import zipfile

import numpy as np
import pytest

from repro.ckpt import (
    CKPT_SCHEMA,
    Checkpointer,
    CheckpointError,
    checkpoint_paths,
    latest_checkpoint,
    read_checkpoint,
    verify_checkpoint,
    write_checkpoint,
)
from repro.ckpt.__main__ import main as ckpt_cli
from repro.core.feedback import GlobalUpdateEstimator
from repro.core.policy import CMFLPolicy, UploadPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.fl.accounting import CommunicationLedger
from repro.fl.history import RunHistory, RoundRecord
from repro.fl.sampling import (
    FullParticipation,
    UniformSampler,
    UnreliableParticipation,
)
from repro.models.linear import make_logistic_regression
from repro.nn.optimizers import SGD, Adam, Momentum
from repro.obs import MemorySink, Tracer, truncate_trace
from repro.obs.sinks import encode_event
from repro.utils.atomic_io import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.utils.rng import restore_generator


# -- atomic_io --------------------------------------------------------------


class TestAtomicWrite:
    def test_writes_text_and_bytes(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "er" / "a.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_failed_write_leaves_target_intact(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "original")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_write(target) as fh:
                fh.write("partial")
                raise RuntimeError("boom")
        assert target.read_text() == "original"
        # The temp file is cleaned up, not left littering the directory.
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_rejects_non_write_modes(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            with atomic_write(tmp_path / "a", mode="r"):
                pass

    def test_no_partial_file_visible_before_commit(self, tmp_path):
        target = tmp_path / "a.txt"
        with atomic_write(target) as fh:
            fh.write("content")
            assert not target.exists()
        assert target.read_text() == "content"


# -- container format -------------------------------------------------------


def _write_sample(path):
    manifest = {"iteration": 3, "note": "sample"}
    arrays = {
        "global_params": np.arange(5, dtype=float),
        "optimizer/velocity/0": np.ones((2, 2)),
    }
    texts = {"history.jsonl": '{"schema": "x"}\n'}
    write_checkpoint(path, manifest, arrays, texts)
    return manifest, arrays, texts


class TestContainerFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.ckpt"
        _, arrays, texts = _write_sample(path)
        ckpt = read_checkpoint(path)
        assert ckpt.manifest["schema"] == CKPT_SCHEMA
        assert ckpt.iteration == 3
        for key, value in arrays.items():
            np.testing.assert_array_equal(ckpt.arrays[key], value)
        assert ckpt.texts == texts

    def test_bytes_are_deterministic(self, tmp_path):
        a, b = tmp_path / "a.ckpt", tmp_path / "b.ckpt"
        _write_sample(a)
        _write_sample(b)
        assert a.read_bytes() == b.read_bytes()

    def test_tampered_member_names_member_and_digests(self, tmp_path):
        path = tmp_path / "a.ckpt"
        _write_sample(path)
        # Rewrite the zip with one array payload flipped.
        with zipfile.ZipFile(path) as zf:
            members = {n: zf.read(n) for n in zf.namelist()}
        tampered = np.arange(5, dtype=float) + 1.0
        import io

        buf = io.BytesIO()
        np.save(buf, tampered, allow_pickle=False)
        members["arrays/global_params.npy"] = buf.getvalue()
        with zipfile.ZipFile(path, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)
        with pytest.raises(CheckpointError) as err:
            read_checkpoint(path)
        message = str(err.value)
        assert "arrays/global_params.npy" in message
        assert "sha256" in message
        # Unverified reads still work (e.g. forensic inspection).
        ckpt = read_checkpoint(path, verify=False)
        np.testing.assert_array_equal(ckpt.arrays["global_params"], tampered)

    def test_truncated_file_is_a_clear_error(self, tmp_path):
        path = tmp_path / "a.ckpt"
        _write_sample(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            read_checkpoint(path)

    def test_missing_member_is_a_clear_error(self, tmp_path):
        path = tmp_path / "a.ckpt"
        _write_sample(path)
        with zipfile.ZipFile(path) as zf:
            members = {n: zf.read(n) for n in zf.namelist()}
        del members["history.jsonl"]
        with zipfile.ZipFile(path, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)
        with pytest.raises(CheckpointError, match="missing member"):
            read_checkpoint(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr(
                "manifest.json", json.dumps({"schema": "repro-ckpt/v999"})
            )
        with pytest.raises(CheckpointError, match="repro-ckpt/v999"):
            read_checkpoint(path)

    def test_not_a_zip_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_text("this is not a checkpoint")
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            read_checkpoint(path)

    def test_discovery_helpers(self, tmp_path):
        assert checkpoint_paths(tmp_path) == []
        assert latest_checkpoint(tmp_path) is None
        for i in (2, 10, 1):
            _write_sample(tmp_path / f"ckpt-{i:08d}.ckpt")
        paths = checkpoint_paths(tmp_path)
        assert [p.name for p in paths] == [
            "ckpt-00000001.ckpt",
            "ckpt-00000002.ckpt",
            "ckpt-00000010.ckpt",
        ]
        assert latest_checkpoint(tmp_path).name == "ckpt-00000010.ckpt"

    def test_verify_checkpoint_returns_manifest(self, tmp_path):
        path = tmp_path / "a.ckpt"
        _write_sample(path)
        assert verify_checkpoint(path)["iteration"] == 3


# -- state_dict round-trips -------------------------------------------------


def _optimizer_pair(make):
    rng = np.random.default_rng(3)
    model_a = make_logistic_regression(4, rng=np.random.default_rng(5))
    model_b = make_logistic_regression(4, rng=np.random.default_rng(5))
    opt_a, opt_b = make(model_a.parameters()), make(model_b.parameters())
    for p in model_a.parameters():
        p.grad[...] = rng.normal(size=p.data.shape)
    opt_a.step()
    opt_a.step()
    return model_a, opt_a, model_b, opt_b


class TestOptimizerState:
    def test_momentum_roundtrip(self):
        model_a, opt_a, model_b, opt_b = _optimizer_pair(
            lambda ps: Momentum(ps, 0.1, momentum=0.9)
        )
        opt_b.load_state_dict(opt_a.state_dict())
        model_b.load_state_dict(model_a.state_dict())
        for p in model_b.parameters():
            p.grad[...] = 0.5
        for p in model_a.parameters():
            p.grad[...] = 0.5
        opt_a.step()
        opt_b.step()
        for pa, pb in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_adam_roundtrip_restores_step_count(self):
        _, opt_a, _, opt_b = _optimizer_pair(lambda ps: Adam(ps, 0.01))
        state = opt_a.state_dict()
        assert state["scalars"]["t"] == 2
        opt_b.load_state_dict(state)
        assert opt_b._t == 2

    def test_sgd_is_stateless(self):
        _, opt_a, _, opt_b = _optimizer_pair(lambda ps: SGD(ps, 0.1))
        state = opt_a.state_dict()
        assert state == {"type": "SGD", "scalars": {}, "slots": {}}
        opt_b.load_state_dict(state)

    def test_type_mismatch_rejected(self):
        _, opt_a, _, _ = _optimizer_pair(lambda ps: SGD(ps, 0.1))
        with pytest.raises(ValueError, match="Momentum"):
            opt_a.load_state_dict({"type": "Momentum", "scalars": {}, "slots": {}})

    def test_slot_shape_mismatch_rejected(self):
        _, opt_a, _, _ = _optimizer_pair(
            lambda ps: Momentum(ps, 0.1, momentum=0.9)
        )
        state = opt_a.state_dict()
        state["slots"]["velocity"][0] = np.zeros(99)
        with pytest.raises(ValueError, match="shape"):
            opt_a.load_state_dict(state)


class TestModuleState:
    def test_roundtrip_preserves_buffer_identity(self):
        model = make_logistic_regression(4, rng=np.random.default_rng(0))
        other = make_logistic_regression(4, rng=np.random.default_rng(1))
        buffers = [p.data for p in other.parameters()]
        other.load_state_dict(model.state_dict())
        for p, buf in zip(other.parameters(), buffers):
            assert p.data is buf  # optimizer slot bindings stay valid
        for pa, pb in zip(model.parameters(), other.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_missing_and_mismatched_entries_rejected(self):
        model = make_logistic_regression(4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="entries"):
            model.load_state_dict({})
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((9, 9))
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)


class TestFeedbackAndLedgerState:
    def test_estimator_roundtrip(self):
        a = GlobalUpdateEstimator(3, staleness=1)
        a.observe(np.array([1.0, 2.0, 3.0]))
        a.observe(np.array([1.1, 2.1, 3.1]))
        b = GlobalUpdateEstimator(3, staleness=1)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.estimate, a.estimate)
        assert b.delta_updates == a.delta_updates

    def test_estimator_shape_checks(self):
        a = GlobalUpdateEstimator(3)
        with pytest.raises(ValueError, match="parameters"):
            a.load_state_dict(
                {"n_params": 4, "staleness": 1, "history": [], "delta_updates": []}
            )
        with pytest.raises(ValueError, match="staleness"):
            a.load_state_dict(
                {"n_params": 3, "staleness": 2, "history": [], "delta_updates": []}
            )

    def test_ledger_roundtrip_restores_int_keys(self):
        a = CommunicationLedger(n_params=10)
        a.record_round([0, 2], [1])
        a.record_round([1], [0, 2])
        b = CommunicationLedger(n_params=10)
        b.load_state_dict(a.state_dict())
        assert b.accumulated_rounds == a.accumulated_rounds
        assert b.skips_per_client == {1: 1, 0: 1, 2: 1}
        assert all(isinstance(k, int) for k in b.uploads_per_client)
        assert b.rounds_per_iteration == [2, 1]

    def test_ledger_n_params_check(self):
        a = CommunicationLedger(n_params=10)
        b = CommunicationLedger(n_params=11)
        with pytest.raises(ValueError, match="parameters"):
            b.load_state_dict(a.state_dict())

    def test_stateless_policy_rejects_state(self):
        policy = CMFLPolicy(InverseSqrtThreshold(0.7))
        assert policy.state_dict() == {}
        with pytest.raises(ValueError, match="stateless"):
            UploadPolicy().load_state_dict({"x": 1})


class TestSamplerState:
    def test_uniform_sampler_rng_continuation(self):
        a = UniformSampler(0.5, rng=123)
        b = UniformSampler(0.5, rng=999)
        a._rng.random(7)  # advance the stream
        b.load_state_dict(a.state_dict())
        assert b._rng.random() == a._rng.random()

    def test_unreliable_recurses_into_base(self):
        a = UnreliableParticipation(UniformSampler(0.5, rng=1), 0.2, rng=2)
        b = UnreliableParticipation(UniformSampler(0.5, rng=3), 0.2, rng=4)
        b.load_state_dict(a.state_dict())
        assert b._rng.random() == a._rng.random()
        assert b.base._rng.random() == a.base._rng.random()

    def test_full_participation_is_stateless(self):
        sampler = FullParticipation()
        assert sampler.state_dict() == {}
        with pytest.raises(ValueError, match="stateless"):
            sampler.load_state_dict({"rng": {}})

    def test_restore_generator_rejects_unknown(self):
        with pytest.raises(ValueError, match="bit generator"):
            restore_generator({"bit_generator": "NotAGenerator"})


# -- history continuation ---------------------------------------------------


def _history(policy="cmfl", n=3):
    history = RunHistory(policy_name=policy)
    for t in range(1, n + 1):
        history.append(
            RoundRecord(
                iteration=t, n_clients=4, n_uploaded=2,
                accumulated_rounds=2 * t, total_bytes=100 * t, lr=0.1,
                mean_train_loss=1.0 / t, mean_score=0.5, threshold=0.7,
                uploaded_ids=[0, 1],
            )
        )
    return history


class TestHistoryContinuation:
    def test_append_extends_existing_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _history(n=2).to_jsonl(path)
        _history(n=4).to_jsonl(path, append=True)
        assert len(RunHistory.from_jsonl(path)) == 4

    def test_append_refuses_divergent_history(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _history(n=3).to_jsonl(path)
        divergent = _history(n=4)
        divergent.records[1].mean_train_loss = 99.0
        with pytest.raises(ValueError, match="diverges at iteration 2"):
            divergent.to_jsonl(path, append=True)

    def test_append_refuses_policy_mismatch(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _history(policy="cmfl").to_jsonl(path)
        with pytest.raises(ValueError, match="policy"):
            _history(policy="vanilla").to_jsonl(path, append=True)

    def test_append_refuses_shorter_history(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _history(n=4).to_jsonl(path)
        with pytest.raises(ValueError, match="refusing to overwrite"):
            _history(n=2).to_jsonl(path, append=True)


# -- trace truncation + tracer continuation ---------------------------------


class TestTraceContinuation:
    def test_truncate_drops_tail_and_partial_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [encode_event({"seq": i, "kind": "point"}) for i in range(6)]
        path.write_text("\n".join(lines[:4]) + "\n" + '{"seq": 4, "ki')
        assert truncate_trace(path, 3) == 3
        kept = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["seq"] for e in kept] == [0, 1, 2]

    def test_tracer_state_roundtrip_continues_stream(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        span = tracer.span("run", policy="cmfl")
        span.__enter__()
        tracer.metrics.counter("comm.uploads").inc(3)
        state = tracer.export_state()

        fresh_sink = MemorySink()
        fresh = Tracer(sinks=[fresh_sink], emit_header=False)
        fresh.restore_state(state)
        assert fresh.current_span().name == "run"
        fresh.metrics.counter("comm.uploads").inc(2)
        event = fresh_sink.events[-1]
        assert event["seq"] == state["seq"]
        assert event["attrs"]["value"] == 5  # counter kept counting

    def test_restore_state_requires_fresh_tracer(self):
        used = Tracer(sinks=[MemorySink()])  # header consumed seq 0
        with pytest.raises(RuntimeError, match="fresh tracer"):
            used.restore_state({"seq": 5, "next_id": 2, "open_spans": [],
                                "metrics": {}})


# -- Checkpointer scheduling ------------------------------------------------


class _FakeTrainer:
    """The minimum surface save_checkpoint touches, without a federation."""

    def __init__(self):
        from repro.obs import NULL_TRACER

        self.tracer = NULL_TRACER
        self.history = _history(n=2)


def _checkpointer_with_stub(tmp_path, **kw):
    ckpt = Checkpointer(tmp_path, **kw)

    def fake_save(trainer, path):
        path.write_bytes(b"stub")
        return path

    import repro.ckpt.checkpointer as mod

    return ckpt, mod, fake_save


class TestCheckpointer:
    def test_schedule_and_naming(self, tmp_path):
        ckpt = Checkpointer(tmp_path, every_n_rounds=3)
        assert [ckpt.due(t) for t in (1, 2, 3, 4, 6)] == [
            False, False, True, False, True,
        ]
        assert ckpt.path_for(7).name == "ckpt-00000007.ckpt"

    def test_retention_prunes_oldest(self, tmp_path, monkeypatch):
        ckpt, mod, fake_save = _checkpointer_with_stub(tmp_path, keep=2)
        monkeypatch.setattr(mod, "save_checkpoint", fake_save)
        trainer = _FakeTrainer()
        for n in range(1, 5):
            trainer.history = _history(n=n)
            ckpt.save(trainer)
        assert [p.name for p in ckpt.checkpoints()] == [
            "ckpt-00000003.ckpt",
            "ckpt-00000004.ckpt",
        ]

    def test_keep_zero_retains_all(self, tmp_path, monkeypatch):
        ckpt, mod, fake_save = _checkpointer_with_stub(tmp_path, keep=0)
        monkeypatch.setattr(mod, "save_checkpoint", fake_save)
        trainer = _FakeTrainer()
        for n in range(1, 5):
            trainer.history = _history(n=n)
            ckpt.save(trainer)
        assert len(ckpt.checkpoints()) == 4

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, every_n_rounds=0)
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, keep=-1)


# -- CLI --------------------------------------------------------------------


class TestCkptCli:
    def test_inspect_and_verify(self, tmp_path, capsys):
        path = tmp_path / "a.ckpt"
        manifest = {
            "iteration": 2,
            "policy": {"name": "cmfl", "state": {}},
            "n_params": 5,
            "optimizer": {"type": "SGD", "scalars": {}, "slots": {}},
            "executor": {"backend": "serial"},
            "trace": None,
        }
        write_checkpoint(
            path, manifest, {"global_params": np.zeros(5)}, {"history.jsonl": "{}"}
        )
        assert ckpt_cli(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "iteration       2" in out
        assert "arrays/global_params.npy" in out
        assert ckpt_cli(["verify", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_fails_on_corruption(self, tmp_path, capsys):
        path = tmp_path / "a.ckpt"
        _write_sample(path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert ckpt_cli(["verify", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff(self, tmp_path, capsys):
        a, b = tmp_path / "a.ckpt", tmp_path / "b.ckpt"
        _write_sample(a)
        manifest = {"iteration": 3, "note": "sample"}
        arrays = {
            "global_params": np.arange(5, dtype=float) + 0.5,
            "optimizer/velocity/0": np.ones((2, 2)),
        }
        write_checkpoint(b, manifest, arrays, {"history.jsonl": '{"schema": "x"}\n'})
        assert ckpt_cli(["diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out
        assert ckpt_cli(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "global_params" in out
