"""Unit tests for the layer zoo: shapes, errors, determinism."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid, Tanh, sigmoid, softmax
from repro.nn.layers.conv import Conv2D, MaxPool2D, col2im, im2col
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.recurrent import LSTM
from repro.nn.layers.reshape import Flatten, LastStep
from repro.nn.module import Sequential


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 3, rng=0)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_rejects_wrong_input_width(self):
        layer = Dense(4, 3, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 7)))

    def test_no_bias_option(self):
        layer = Dense(4, 3, rng=0, use_bias=False)
        assert len(layer.parameters()) == 1

    def test_deterministic_under_seed(self):
        a = Dense(4, 3, rng=42).weight.data
        b = Dense(4, 3, rng=42).weight.data
        np.testing.assert_array_equal(a, b)

    def test_backward_before_forward_raises(self):
        layer = Dense(4, 3, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((5, 3)))

    def test_gradient_accumulates_across_calls(self):
        layer = Dense(2, 2, rng=0)
        x = np.ones((3, 2))
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestConv:
    def test_output_shape_valid_padding(self):
        conv = Conv2D(1, 4, kernel_size=5, rng=0)
        out = conv.forward(np.zeros((2, 1, 20, 20)))
        assert out.shape == (2, 4, 16, 16)

    def test_padding_preserves_size(self):
        conv = Conv2D(2, 3, kernel_size=3, padding=1, rng=0)
        out = conv.forward(np.zeros((1, 2, 8, 8)))
        assert out.shape == (1, 3, 8, 8)

    def test_im2col_col2im_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> -- the adjoint property that
        makes the conv backward pass correct."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 3, 1)))
        assert abs(lhs - rhs) < 1e-9

    def test_kernel_larger_than_input_raises(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 3, 3)), 5, 5, 1)

    def test_known_convolution_value(self):
        conv = Conv2D(1, 1, kernel_size=2, rng=0)
        conv.weight.data[...] = np.array([[[[1.0, 0.0], [0.0, 1.0]]]])
        conv.bias.data[...] = 0.5
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = conv.forward(x)
        # window sum of main diagonal + bias
        assert out[0, 0, 0, 0] == pytest.approx(0 + 4 + 0.5)
        assert out[0, 0, 1, 1] == pytest.approx(4 + 8 + 0.5)


class TestMaxPool:
    def test_forward_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_max(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0  # position of 5
        assert grad[0, 0, 3, 3] == 1.0  # position of 15

    def test_ties_do_not_duplicate_gradient(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 4, 4))
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == pytest.approx(4.0)

    def test_indivisible_input_raises(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 5)))


class TestLSTM:
    def test_sequence_output_shape(self):
        lstm = LSTM(4, 8, rng=0, return_sequences=True)
        out = lstm.forward(np.zeros((3, 7, 4)))
        assert out.shape == (3, 7, 8)

    def test_last_state_shape(self):
        lstm = LSTM(4, 8, rng=0, return_sequences=False)
        out = lstm.forward(np.zeros((3, 7, 4)))
        assert out.shape == (3, 8)

    def test_zero_input_nonzero_output_via_bias(self):
        lstm = LSTM(2, 3, rng=0, return_sequences=False)
        out = lstm.forward(np.zeros((1, 4, 2)))
        # Forget bias of 1 does not create state from nothing; output
        # stays zero for zero input and zero initial state.
        assert np.allclose(out, 0.0)

    def test_backward_shape(self, rng):
        lstm = LSTM(3, 5, rng=0, return_sequences=True)
        x = rng.normal(size=(2, 6, 3))
        out = lstm.forward(x)
        grad = lstm.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_backward_wrong_grad_shape_raises(self, rng):
        lstm = LSTM(3, 5, rng=0, return_sequences=False)
        lstm.forward(rng.normal(size=(2, 6, 3)))
        with pytest.raises(ValueError):
            lstm.backward(np.ones((2, 6, 5)))


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=0)
        ids = np.array([[1, 2], [3, 1]])
        out = emb.forward(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 0], emb.weight.data[1])

    def test_rejects_float_ids(self):
        emb = Embedding(10, 4, rng=0)
        with pytest.raises(TypeError):
            emb.forward(np.ones((2, 2)))

    def test_rejects_out_of_range(self):
        emb = Embedding(10, 4, rng=0)
        with pytest.raises(ValueError):
            emb.forward(np.array([[11]]))

    def test_backward_accumulates_repeated_ids(self):
        emb = Embedding(5, 2, rng=0)
        ids = np.array([[1, 1, 1]])
        out = emb.forward(ids)
        emb.backward(np.ones_like(out))
        np.testing.assert_allclose(emb.weight.grad[1], [3.0, 3.0])
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestDropout:
    def test_identity_at_inference(self, rng):
        drop = Dropout(0.5, rng=0)
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(drop.forward(x, training=False), x)

    def test_preserves_expectation_under_training(self):
        drop = Dropout(0.3, rng=0)
        x = np.ones((200, 200))
        out = drop.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, rng=0)
        x = np.ones((10, 10))
        out = drop.forward(x, training=True)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)


class TestReshape:
    def test_flatten_round_trip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = flat.forward(x)
        assert out.shape == (3, 32)
        back = flat.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_last_step(self, rng):
        layer = LastStep()
        x = rng.normal(size=(2, 5, 3))
        out = layer.forward(x)
        np.testing.assert_array_equal(out, x[:, -1, :])
        grad = layer.backward(np.ones((2, 3)))
        assert grad[:, :-1, :].sum() == 0
        assert grad[:, -1, :].sum() == 6


class TestActivationsAndSequential:
    def test_relu_zeroes_negative(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)) * 50)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-9)

    def test_tanh_backward_value(self):
        layer = Tanh()
        layer.forward(np.array([[0.0]]))
        assert layer.backward(np.array([[1.0]]))[0, 0] == pytest.approx(1.0)

    def test_sequential_chains(self, rng):
        model = Sequential([Dense(4, 8, rng=0), ReLU(), Dense(8, 2, rng=1)])
        out = model.forward(rng.normal(size=(3, 4)))
        assert out.shape == (3, 2)
        grad = model.backward(np.ones((3, 2)))
        assert grad.shape == (3, 4)

    def test_sequential_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_sigmoid_layer_matches_function(self, rng):
        x = rng.normal(size=(3, 3))
        np.testing.assert_allclose(Sigmoid().forward(x), sigmoid(x))
