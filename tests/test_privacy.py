"""Differential-privacy mechanism: clipping, noise, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.privacy import GaussianMechanism, clip_update


class TestClipping:
    def test_small_update_untouched(self):
        vec = np.array([0.3, 0.4])  # norm 0.5
        np.testing.assert_array_equal(clip_update(vec, 1.0), vec)

    def test_large_update_scaled_to_bound(self):
        vec = np.array([3.0, 4.0])  # norm 5
        clipped = clip_update(vec, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # direction preserved
        np.testing.assert_allclose(clipped / np.linalg.norm(clipped),
                                   vec / np.linalg.norm(vec))

    def test_zero_vector_passes(self):
        np.testing.assert_array_equal(clip_update(np.zeros(3), 1.0),
                                      np.zeros(3))

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            clip_update(np.ones(2), 0.0)

    @settings(max_examples=40)
    @given(st.integers(0, 2**31 - 1), st.floats(0.1, 10.0))
    def test_clip_never_exceeds_bound(self, seed, bound):
        vec = np.random.default_rng(seed).normal(size=20) * 10
        assert np.linalg.norm(clip_update(vec, bound)) <= bound + 1e-9


class TestMechanism:
    def test_noise_scale(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=2.0, rng=0)
        outs = np.stack([mech.privatize(np.zeros(50)) for _ in range(200)])
        assert outs.std() == pytest.approx(2.0, rel=0.1)

    def test_zero_noise_is_pure_clipping(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        vec = np.array([3.0, 4.0])
        out = mech.privatize(vec)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_accounting_composes_linearly(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=1.0,
                                 delta=1e-5, rng=0)
        for _ in range(10):
            mech.privatize(np.ones(4))
        spent = mech.spent()
        assert spent.steps == 10
        assert spent.epsilon == pytest.approx(10 * mech.epsilon_per_step())
        assert spent.delta == pytest.approx(1e-4)

    def test_more_noise_less_epsilon(self):
        low = GaussianMechanism(1.0, noise_multiplier=0.5)
        high = GaussianMechanism(1.0, noise_multiplier=2.0)
        assert high.epsilon_per_step() < low.epsilon_per_step()

    def test_zero_noise_infinite_epsilon(self):
        mech = GaussianMechanism(1.0, noise_multiplier=0.0)
        assert mech.epsilon_per_step() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMechanism(0.0, 1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, -1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, 1.0, delta=2.0)

    def test_privatized_update_feeds_aggregation(self):
        """DP-noised updates still aggregate sanely."""
        from repro.fl.aggregation import mean_aggregate
        from repro.fl.client import ClientUpdate

        mech = GaussianMechanism(clip_norm=0.5, noise_multiplier=0.1, rng=1)
        gen = np.random.default_rng(2)
        updates = [
            ClientUpdate(i, mech.privatize(gen.normal(size=30)), 10, 0.1)
            for i in range(20)
        ]
        agg = mean_aggregate(updates)
        assert np.all(np.isfinite(agg))
        assert np.linalg.norm(agg) < 0.5 + 3 * 0.05 / np.sqrt(20) * 30


class TestPrivatizedPolicy:
    def test_composes_in_a_federation(self):
        from repro.baselines.vanilla import VanillaPolicy
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.fl.client import FLClient
        from repro.fl.config import FLConfig
        from repro.fl.privacy import PrivatizedPolicy
        from repro.fl.trainer import FederatedTrainer
        from repro.fl.workspace import ModelWorkspace
        from repro.models.linear import make_logistic_regression
        from repro.nn.losses import SigmoidBinaryCrossEntropy
        from repro.nn.optimizers import SGD
        from repro.nn.schedules import ConstantLR
        from repro.utils.rng import child_rngs

        rngs = child_rngs(4, 8)
        x = rngs[0].normal(size=(60, 5))
        y = (x @ rngs[1].normal(size=5) > 0).astype(np.int64)
        data = Dataset(x, y)
        model = make_logistic_regression(5, rng=rngs[2])
        workspace = ModelWorkspace(model, SigmoidBinaryCrossEntropy(),
                                   SGD(model.parameters(), 0.5))
        clients = [FLClient(i, data.subset(p), rng=rngs[3 + i])
                   for i, p in enumerate(iid_partition(60, 4, rng=0))]
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.3, rng=5)
        policy = PrivatizedPolicy(VanillaPolicy(), mech)
        trainer = FederatedTrainer(
            workspace, clients, policy,
            FLConfig(rounds=4, local_epochs=1, batch_size=10,
                     lr=ConstantLR(0.5)),
        )
        trainer.run()
        spent = mech.spent()
        assert spent.steps == 4 * 4
        assert np.isfinite(spent.epsilon)
        assert np.all(np.isfinite(trainer.server.global_params))

    def test_name(self):
        from repro.baselines.vanilla import VanillaPolicy
        from repro.fl.privacy import PrivatizedPolicy

        policy = PrivatizedPolicy(
            VanillaPolicy(), GaussianMechanism(1.0, 1.0)
        )
        assert policy.name == "vanilla+dp"
