"""The run-everything entry point and the report assembler."""

import sys
from pathlib import Path

from repro.experiments.run_all import EXPERIMENTS


def test_every_experiment_module_is_wired():
    names = [name for name, _ in EXPERIMENTS]
    assert names == [
        "fig1_divergence", "fig2_measures", "fig3_delta_update",
        "fig4_table1", "fig5_table2", "fig6_outliers", "fig7_ec2",
        "micro_overhead", "convergence_check", "ablations",
    ]
    for _, module in EXPERIMENTS:
        assert callable(module.run)
        assert callable(module.main)


def test_experiments_md_builder_lists_every_report():
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    try:
        import build_experiments_md as builder
    finally:
        sys.path.pop(0)
    stems = {stem for stem, _ in builder.ORDER}
    # one entry per paper artifact + the extras
    assert {"fig1_divergence", "fig4_table1_digits", "fig5_table2_har",
            "fig7_ec2", "micro_overhead", "ablations"} <= stems
