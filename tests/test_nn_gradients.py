"""Finite-difference verification of every layer's backward pass."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.gradcheck import check_input_gradient, check_module_gradients
from repro.nn.layers.conv import Conv2D, MaxPool2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.recurrent import LSTM
from repro.nn.layers.reshape import Flatten
from repro.nn.losses import (
    MeanSquaredError,
    SigmoidBinaryCrossEntropy,
    SoftmaxCrossEntropy,
)
from repro.nn.module import Sequential

TOL = 1e-5


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_dense_gradients(rng):
    model = Sequential([Dense(4, 3, rng=0)])
    x = rng.normal(size=(5, 4))
    y = rng.integers(0, 3, size=5)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_dense_input_gradient(rng):
    model = Sequential([Dense(4, 3, rng=0)])
    x = rng.normal(size=(5, 4))
    y = rng.integers(0, 3, size=5)
    assert check_input_gradient(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_mlp_with_activations_gradients(rng):
    model = Sequential(
        [Dense(4, 6, rng=0), ReLU(), Dense(6, 5, rng=1), Tanh(), Dense(5, 2, rng=2)]
    )
    x = rng.normal(size=(4, 4))
    y = rng.integers(0, 2, size=4)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_sigmoid_activation_gradients(rng):
    model = Sequential([Dense(3, 3, rng=0), Sigmoid(), Dense(3, 2, rng=1)])
    x = rng.normal(size=(4, 3))
    y = rng.integers(0, 2, size=4)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_conv_gradients(rng):
    model = Sequential(
        [Conv2D(1, 2, kernel_size=3, rng=0), Flatten(), Dense(2 * 16, 2, rng=1)]
    )
    x = rng.normal(size=(2, 1, 6, 6))
    y = rng.integers(0, 2, size=2)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_conv_with_padding_gradients(rng):
    model = Sequential(
        [Conv2D(1, 2, kernel_size=3, padding=1, rng=0), Flatten(),
         Dense(2 * 36, 2, rng=1)]
    )
    x = rng.normal(size=(2, 1, 6, 6))
    y = rng.integers(0, 2, size=2)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_conv_pool_pipeline_gradients(rng):
    model = Sequential(
        [
            Conv2D(1, 2, kernel_size=3, rng=0),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(2 * 9, 3, rng=1),
        ]
    )
    x = rng.normal(size=(2, 1, 8, 8))
    y = rng.integers(0, 3, size=2)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_conv_input_gradient(rng):
    model = Sequential(
        [Conv2D(2, 2, kernel_size=3, rng=0), Flatten(), Dense(2 * 9, 2, rng=1)]
    )
    x = rng.normal(size=(2, 2, 5, 5))
    y = rng.integers(0, 2, size=2)
    assert check_input_gradient(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_lstm_sequence_gradients(rng):
    model = Sequential(
        [LSTM(3, 4, rng=0, return_sequences=False), Dense(4, 2, rng=1)]
    )
    x = rng.normal(size=(3, 5, 3))
    y = rng.integers(0, 2, size=3)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_stacked_lstm_gradients(rng):
    model = Sequential(
        [
            LSTM(2, 3, rng=0, return_sequences=True),
            LSTM(3, 3, rng=1, return_sequences=False),
            Dense(3, 2, rng=2),
        ]
    )
    x = rng.normal(size=(2, 4, 2))
    y = rng.integers(0, 2, size=2)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_lstm_input_gradient(rng):
    model = Sequential(
        [LSTM(3, 4, rng=0, return_sequences=False), Dense(4, 2, rng=1)]
    )
    x = rng.normal(size=(2, 4, 3))
    y = rng.integers(0, 2, size=2)
    assert check_input_gradient(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_embedding_gradients(rng):
    """Embedding grads checked via the full LM pipeline."""
    from repro.nn.layers.embedding import Embedding as Emb

    emb = Emb(6, 3, rng=0)
    tail = Sequential([LSTM(3, 4, rng=1, return_sequences=False), Dense(4, 6, rng=2)])
    loss = SoftmaxCrossEntropy()
    ids = rng.integers(0, 6, size=(3, 4))
    y = rng.integers(0, 6, size=3)

    emb.zero_grad()
    tail.zero_grad()
    out = tail.forward(emb.forward(ids))
    loss.forward(out, y)
    emb.backward(tail.backward(loss.backward()))
    analytic = emb.weight.grad.copy()

    from repro.nn.gradcheck import max_relative_error, numerical_gradient

    def f():
        return loss.forward(tail.forward(emb.forward(ids)), y)

    numeric = numerical_gradient(f, emb.weight.data)
    assert max_relative_error(analytic, numeric) < TOL


def test_mse_gradients(rng):
    model = Sequential([Dense(3, 2, rng=0)])
    x = rng.normal(size=(4, 3))
    y = rng.normal(size=(4, 2))
    assert check_module_gradients(model, MeanSquaredError(), x, y) < TOL


def test_bce_gradients(rng):
    model = Sequential([Dense(3, 1, rng=0)])
    x = rng.normal(size=(6, 3))
    y = rng.integers(0, 2, size=(6, 1)).astype(float)
    assert check_module_gradients(model, SigmoidBinaryCrossEntropy(), x, y) < TOL


def test_strided_conv_gradients(rng):
    model = Sequential(
        [Conv2D(1, 2, kernel_size=3, stride=2, rng=0), Flatten(),
         Dense(2 * 9, 2, rng=1)]
    )
    x = rng.normal(size=(2, 1, 7, 7))
    y = rng.integers(0, 2, size=2)
    assert check_module_gradients(model, SoftmaxCrossEntropy(), x, y) < TOL


def test_strided_conv_input_gradient(rng):
    model = Sequential(
        [Conv2D(2, 2, kernel_size=3, stride=2, rng=0), Flatten(),
         Dense(2 * 4, 2, rng=1)]
    )
    x = rng.normal(size=(2, 2, 5, 5))
    y = rng.integers(0, 2, size=2)
    assert check_input_gradient(model, SoftmaxCrossEntropy(), x, y) < TOL
