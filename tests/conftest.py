"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data.dataset import Dataset


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_classification(rng):
    """A linearly-structured 3-class dataset small enough for gradchecks."""
    n, d = 30, 6
    x = rng.normal(size=(n, d))
    w = rng.normal(size=(d, 3))
    y = np.argmax(x @ w + 0.1 * rng.normal(size=(n, 3)), axis=1)
    return Dataset(x, y.astype(np.int64))


@pytest.fixture
def tiny_binary(rng):
    n, d = 40, 5
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (x @ w > 0).astype(np.int64)
    return Dataset(x, y)
