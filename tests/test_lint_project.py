"""Unit tests for the phase-1 project model.

Synthetic modules are written under ``<tmp>/repro/`` so that
``package_relative_path`` roots them like real tree files and the
extractor derives proper ``repro.*`` dotted module names.
"""

import json
from pathlib import Path

from repro.lint.callgraph import (
    build_call_graph,
    reachable_from,
    worker_entry_points,
)
from repro.lint.dataflow import compute_tainted_functions
from repro.lint.project import (
    ModuleSummary,
    ProjectAnalyzer,
    ProjectModel,
    extract_summary,
    module_name_for,
)


def _model(sources):
    """{package_path: source} -> ProjectModel (no disk involved)."""
    summaries = []
    for package_path, source in sources.items():
        summary = extract_summary(
            source, Path("/x/repro") / package_path
        )
        assert summary is not None, package_path
        summaries.append(summary)
    return ProjectModel(summaries)


def _write_tree(root, sources):
    for package_path, source in sources.items():
        path = root / "repro" / package_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root / "repro"


RNG_UTIL = (
    "import numpy as np\n"
    "\n"
    "def make_rng(seed):\n"
    "    return np.random.default_rng(seed)\n"
    "\n"
    "def relabel(seed):\n"
    "    gen = make_rng(seed)\n"
    "    return gen\n"
    "\n"
    "def spawn_seed(seed):\n"
    "    return int(seed) + 1\n"
)


def test_module_name_for():
    assert module_name_for("fl/trainer.py") == "repro.fl.trainer"
    assert module_name_for("fl/__init__.py") == "repro.fl"
    assert module_name_for("__init__.py") == "repro"


def test_summary_json_round_trip():
    summary = extract_summary(RNG_UTIL, Path("/x/repro/util.py"))
    payload = json.loads(json.dumps(summary.to_json()))
    again = ModuleSummary.from_json(payload)
    assert again.module == "repro.util"
    assert again.data == summary.data


def test_call_graph_direct_and_aliased_imports():
    model = _model(
        {
            "util.py": RNG_UTIL,
            "app.py": (
                "from repro.util import make_rng as mk\n"
                "import repro.util as u\n"
                "\n"
                "def direct(seed):\n"
                "    return mk(seed)\n"
                "\n"
                "def dotted(seed):\n"
                "    return u.relabel(seed)\n"
            ),
        }
    )
    graph = build_call_graph(model)
    assert graph["repro.app.direct"] == {"repro.util.make_rng"}
    assert graph["repro.app.dotted"] == {"repro.util.relabel"}
    # relabel's own edge resolves within its module.
    assert graph["repro.util.relabel"] == {"repro.util.make_rng"}


def test_call_graph_self_methods_and_cha():
    model = _model(
        {
            "eng.py": (
                "class Base:\n"
                "    def helper(self):\n"
                "        return 1\n"
                "\n"
                "class Engine(Base):\n"
                "    def run(self):\n"
                "        return self.helper()\n"
                "\n"
                "def drive(engine):\n"
                "    return engine.run()\n"
            ),
        }
    )
    graph = build_call_graph(model)
    # self.helper() resolves through the base class.
    assert graph["repro.eng.Engine.run"] == {"repro.eng.Base.helper"}
    # engine.run() on an unknown receiver resolves by method name (CHA).
    assert graph["repro.eng.drive"] == {"repro.eng.Engine.run"}


def test_call_graph_stoplist_blocks_generic_names():
    model = _model(
        {
            "m.py": (
                "class Box:\n"
                "    def append(self, x):\n"
                "        return x\n"
                "\n"
                "def f(items):\n"
                "    items.append(1)\n"
            ),
        }
    )
    graph = build_call_graph(model)
    assert graph["repro.m.f"] == set()


def test_worker_entry_points_submit_and_initializer():
    model = _model(
        {
            "w.py": (
                "def task(x):\n"
                "    return x\n"
                "\n"
                "def init():\n"
                "    pass\n"
                "\n"
                "class Runner:\n"
                "    def go(self, pool, cls):\n"
                "        pool.submit(task, 1)\n"
                "        cls(initializer=init)\n"
                "        pool.submit(self.step)\n"
                "\n"
                "    def step(self):\n"
                "        return 0\n"
            ),
        }
    )
    entries = worker_entry_points(model)
    assert entries == {
        "repro.w.task",
        "repro.w.init",
        "repro.w.Runner.step",
    }
    graph = build_call_graph(model)
    assert "repro.w.task" in reachable_from(graph, sorted(entries))


def test_rng_taint_fixpoint_through_returns():
    model = _model({"util.py": RNG_UTIL})
    tainted = compute_tainted_functions(model)
    # make_rng returns default_rng directly; relabel returns a local
    # assigned from make_rng; spawn_seed launders through int().
    assert "repro.util.make_rng" in tainted
    assert "repro.util.relabel" in tainted
    assert "repro.util.spawn_seed" not in tainted


def test_reverse_import_closure():
    model = _model(
        {
            "a.py": "X = 1\n",
            "b.py": "from repro.a import X\nY = X\n",
            "c.py": "from repro.b import Y\nZ = Y\n",
            "d.py": "W = 2\n",
        }
    )
    closure = model.reverse_import_closure(["a.py"])
    assert closure == {"a.py", "b.py", "c.py"}
    assert model.forward_closure("c.py") == {"a.py", "b.py", "c.py"}


TREE = {
    "util.py": RNG_UTIL,
    "app.py": (
        "from repro.util import spawn_seed\n"
        "\n"
        "def main():\n"
        "    return spawn_seed(3)\n"
    ),
    "other.py": "def standalone():\n    return 7\n",
}


def test_cache_cold_then_warm(tmp_path):
    root = _write_tree(tmp_path, TREE)
    cache_path = tmp_path / "cache.json"
    analyzer = ProjectAnalyzer(cache_path=cache_path)
    cold = analyzer.analyze([str(root)])
    assert cold.stats["cache_misses"] == len(TREE)
    assert cold.stats["cache_hits"] == 0
    assert cold.stats["phase2_ran"] is True
    assert cache_path.exists()

    warm = ProjectAnalyzer(cache_path=cache_path).analyze([str(root)])
    assert warm.stats["cache_hits"] == len(TREE)
    assert warm.stats["cache_misses"] == 0
    assert warm.stats["flow_reused"] == len(TREE)
    assert warm.stats["phase2_ran"] is False
    assert warm.violations == cold.violations


def test_cache_invalidates_edited_file_and_importers(tmp_path):
    root = _write_tree(tmp_path, TREE)
    cache_path = tmp_path / "cache.json"
    ProjectAnalyzer(cache_path=cache_path).analyze([str(root)])

    # Edit util.py: its summary and the flow findings of its importer
    # (app.py) must be recomputed; other.py stays fully cached.
    (root / "util.py").write_text(RNG_UTIL + "\nEXTRA = 1\n")
    after = ProjectAnalyzer(cache_path=cache_path).analyze([str(root)])
    assert after.stats["cache_misses"] == 1
    assert after.stats["cache_hits"] == len(TREE) - 1
    # util.py's flow key changed, and app.py imports util.py, so both
    # dropped out of the flow cache; only other.py was reusable.
    assert after.stats["flow_reused"] == 1
    assert after.stats["phase2_ran"] is True


def test_cache_ignores_corruption(tmp_path):
    root = _write_tree(tmp_path, TREE)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    result = ProjectAnalyzer(cache_path=cache_path).analyze([str(root)])
    assert result.stats["cache_misses"] == len(TREE)
    # ...and the corrupt file is replaced by a valid one.
    json.loads(cache_path.read_text())


def test_file_sources_override_injects_without_disk(tmp_path):
    root = _write_tree(tmp_path, TREE)
    target = root / "other.py"
    analyzer = ProjectAnalyzer(
        rules=(),  # v1 rules off: this test targets the override path
        file_sources={str(target): "def standalone():\n    return 8\n"},
    )
    result = analyzer.analyze([str(root)])
    assert result.violations == []
    summary = extract_summary(
        "def standalone():\n    return 8\n", target
    )
    assert summary.module == "repro.other"


def test_syntax_error_file_is_reported_not_fatal(tmp_path):
    sources = dict(TREE)
    sources["broken.py"] = "def oops(:\n"
    root = _write_tree(tmp_path, sources)
    result = ProjectAnalyzer(rules=()).analyze([str(root)])
    assert [v.rule for v in result.violations] == ["syntax-error"]
    assert result.violations[0].path.endswith("broken.py")


def test_jobs_parallel_matches_serial(tmp_path):
    root = _write_tree(tmp_path, TREE)
    serial = ProjectAnalyzer(jobs=1).analyze([str(root)])
    parallel = ProjectAnalyzer(jobs=4).analyze([str(root)])
    assert parallel.violations == serial.violations
    assert parallel.stats["jobs"] == 4
