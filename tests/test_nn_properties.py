"""Hypothesis property tests for the NN substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import sigmoid, softmax
from repro.nn.initializers import glorot_uniform, he_normal, orthogonal
from repro.nn.layers.dense import Dense
from repro.nn.module import Sequential
from repro.nn.serialization import assign_flat_parameters, flatten_parameters

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(arrays(np.float64, st.integers(1, 40), elements=finite_floats))
def test_sigmoid_bounded(x):
    out = sigmoid(x)
    assert np.all(out >= 0.0) and np.all(out <= 1.0)
    assert np.all(np.isfinite(out))


@given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 8)),
              elements=finite_floats))
def test_softmax_is_distribution(x):
    probs = softmax(x, axis=1)
    assert np.all(probs >= 0.0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-8)


@given(arrays(np.float64, st.integers(1, 40),
              elements=st.floats(-50, 50, allow_nan=False)))
def test_sigmoid_symmetry(x):
    np.testing.assert_allclose(sigmoid(-x), 1.0 - sigmoid(x), atol=1e-12)


@settings(max_examples=25)
@given(st.integers(0, 2**32 - 1), st.integers(2, 10), st.integers(2, 10))
def test_flat_round_trip_is_identity(seed, d_in, d_out):
    model = Sequential([Dense(d_in, d_out, rng=seed)])
    flat = flatten_parameters(model)
    rng = np.random.default_rng(seed)
    new = rng.normal(size=flat.size)
    assign_flat_parameters(model, new)
    np.testing.assert_array_equal(flatten_parameters(model), new)


@settings(max_examples=25)
@given(st.integers(0, 2**32 - 1), st.integers(2, 12))
def test_orthogonal_init_is_orthogonal(seed, n):
    q = orthogonal((n, n), rng=seed)
    np.testing.assert_allclose(q @ q.T, np.eye(n), atol=1e-8)


@settings(max_examples=25)
@given(st.integers(0, 2**32 - 1), st.integers(1, 30), st.integers(1, 30))
def test_glorot_within_limit(seed, fan_in, fan_out):
    w = glorot_uniform((fan_in, fan_out), rng=seed)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    assert np.all(np.abs(w) <= limit)


@settings(max_examples=15)
@given(st.integers(0, 2**32 - 1))
def test_he_normal_scale(seed):
    w = he_normal((400, 10), rng=seed)
    expected_std = np.sqrt(2.0 / 400)
    assert abs(w.std() - expected_std) / expected_std < 0.25
