"""The sharded client-state store: parity, laziness, checkpointing."""

import numpy as np
import pytest

from repro.core.feedback import pack_signs, packed_sign_nbytes, unpack_signs
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.data.partition import dirichlet_partition
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.sampling import UniformSampler
from repro.fl.store import (
    ClientStateStore,
    CyclicPartition,
    ExplicitPartition,
    IndexedPartition,
    StoreClient,
)
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.utils.rng import child_rngs


def _dataset(rows=60, features=4, seed=0):
    rngs = child_rngs(seed, 2)
    w = rngs[0].normal(size=features)
    x = rngs[1].normal(size=(rows, features))
    y = (x @ w > 0).astype(np.int64)
    return Dataset(x, y)


def _clients(n=8, per=12, seed=0):
    rngs = child_rngs(seed, n + 2)
    w = rngs[0].normal(size=4)
    out = []
    for i in range(n):
        x = rngs[1].normal(size=(per, 4))
        y = (x @ w > 0).astype(np.int64)
        out.append(FLClient(i, Dataset(x, y), rng=rngs[2 + i]))
    return out


def _workspace(seed=3, lr=0.5):
    model = make_logistic_regression(4, rng=seed)
    return ModelWorkspace(
        model, SigmoidBinaryCrossEntropy(), SGD(model.parameters(), lr)
    )


def _config(rounds=5, backend="serial"):
    return FLConfig(
        rounds=rounds,
        local_epochs=2,
        batch_size=6,
        lr=ConstantLR(0.3),
        executor=backend,
    )


def _history_digest(trainer):
    from repro.experiments.timing import history_digest

    return history_digest(trainer)


class TestPackedSigns:
    def test_round_trip_equals_sign(self):
        rng = np.random.default_rng(0)
        for n in (1, 7, 8, 9, 64, 1000):
            v = rng.normal(size=n)
            v[rng.random(n) < 0.3] = 0.0
            assert np.array_equal(
                unpack_signs(pack_signs(v), n), np.sign(v)
            )

    def test_parity_with_unpacked_feedback_path(self):
        # The store records packed signs of u_bar; CMFL's relevance uses
        # np.sign(u_bar).  The packed record must reproduce that vector
        # exactly, zeros included.
        rng = np.random.default_rng(1)
        u_bar = rng.normal(size=129)
        u_bar[::7] = 0.0
        unpacked_signs = np.sign(u_bar)
        packed = pack_signs(u_bar)
        assert np.array_equal(unpack_signs(packed, 129), unpacked_signs)

    def test_memory_is_two_bits_per_param(self):
        n = 100_000
        packed = packed_sign_nbytes(n)
        assert packed == 2 * ((n + 7) // 8)
        # ~32x below a float64 sign vector.
        assert packed * 31 < n * 8

    def test_errors(self):
        with pytest.raises(ValueError):
            pack_signs(np.array([]))
        with pytest.raises(ValueError):
            packed_sign_nbytes(0)
        with pytest.raises(ValueError):
            unpack_signs(np.zeros(4, dtype=np.uint8), 100)


class TestPartitions:
    def test_cyclic_no_wrap_is_view(self):
        data = _dataset(rows=50)
        part = CyclicPartition(data, n_clients=1000, samples_per_client=10)
        d0 = part.materialize(0)
        assert np.shares_memory(d0.x, data.x)
        assert np.array_equal(d0.x, data.x[:10])

    def test_cyclic_wraps_around(self):
        data = _dataset(rows=50)
        part = CyclicPartition(data, n_clients=1000, samples_per_client=10)
        # client 4 starts at row 40 and needs 10 rows -> no wrap;
        # client 104 starts at (104*10) % 50 = 40 -> same shard.
        d = part.materialize(4)
        assert np.array_equal(d.x, data.x[40:50])
        part7 = CyclicPartition(
            data, n_clients=1000, samples_per_client=10, stride=7
        )
        d = part7.materialize(7)  # start 49, wraps 9 rows
        assert np.array_equal(
            d.x, np.concatenate([data.x[49:], data.x[:9]])
        )
        assert part7.n_samples(7) == 10

    def test_cyclic_validates(self):
        data = _dataset(rows=50)
        with pytest.raises(ValueError):
            CyclicPartition(data, n_clients=0, samples_per_client=10)
        with pytest.raises(ValueError):
            CyclicPartition(data, n_clients=10, samples_per_client=51)
        with pytest.raises(ValueError):
            CyclicPartition(data, 10, 10, stride=0)

    def test_indexed_matches_subset(self):
        data = _dataset(rows=60)
        parts = dirichlet_partition(
            np.asarray(data.y), n_clients=6, alpha=0.5, rng=7
        )
        ip = IndexedPartition(data, parts)
        assert len(ip) == 6
        for i, p in enumerate(parts):
            assert ip.n_samples(i) == len(p)
            sub = data.subset(p)
            got = ip.materialize(i)
            assert np.array_equal(got.x, sub.x)
            assert np.array_equal(got.y, sub.y)

    def test_indexed_rejects_empty_client(self):
        data = _dataset(rows=10)
        with pytest.raises(ValueError):
            IndexedPartition(
                data, [np.array([0, 1]), np.array([], dtype=np.int64)]
            )

    def test_explicit_serves_given_datasets(self):
        ds = [_dataset(rows=5, seed=s) for s in range(3)]
        ep = ExplicitPartition(ds)
        assert len(ep) == 3
        assert ep.materialize(1) is ds[1]
        assert ep.n_samples(2) == 5


class TestStoreCore:
    def _store(self, population=10_000, shard_size=64, seed=11):
        data = _dataset(rows=60)
        part = CyclicPartition(data, population, samples_per_client=10)
        return ClientStateStore(
            population, part, seed=seed, shard_size=shard_size
        )

    def test_lazy_shards(self):
        store = self._store()
        assert store.materialized_shards == 0
        views = store.checkout([0, 63, 64, 9_999])
        store.writeback(views)
        # rows 0 and 63 share shard 0; 64 is shard 1; 9999 is shard 156.
        assert store.materialized_shards == 3
        assert store.nbytes > 0

    def test_streams_are_pure_functions_of_seed_and_index(self):
        # Touch order must not change any client's draws.
        a = self._store()
        b = self._store()
        va = a.checkout([5])
        a.writeback(va)
        va = a.checkout([5, 7_000])
        vb = b.checkout([7_000])
        assert (
            va[1].rng_state()["state"] == vb[0].rng_state()["state"]
        )
        a.writeback(va)
        b.writeback(vb)

    def test_writeback_resumes_stream_bitwise(self):
        store = self._store()
        ref = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(entropy=(11, 42)))
        )
        for _ in range(3):
            (view,) = store.checkout([42])
            assert view._rng.random() == ref.random()
            store.writeback([view])

    def test_checkout_validates(self):
        store = self._store()
        with pytest.raises(IndexError):
            store.checkout([10_000])
        views = store.checkout([3])
        with pytest.raises(RuntimeError):
            store.checkout([3])  # already out
        store.writeback(views)
        with pytest.raises(RuntimeError):
            store.writeback(views)  # already retired

    def test_retired_view_refuses_compute(self):
        store = self._store()
        (view,) = store.checkout([1])
        store.writeback([view])
        with pytest.raises(RuntimeError):
            view.compute_update(None, np.zeros(5), lr=0.1,
                                local_epochs=1, batch_size=2)

    def test_snapshot_refused_mid_round(self):
        store = self._store()
        views = store.checkout([1])
        with pytest.raises(RuntimeError):
            store.state_arrays()
        with pytest.raises(RuntimeError):
            store.manifest()
        store.writeback(views)
        assert "shards" in store.manifest()

    def test_state_arrays_round_trip(self):
        store = self._store()
        views = store.checkout([2, 700])
        for v in views:
            v._rng.random(5)
        store.writeback(views)
        manifest = store.manifest()
        arrays = {k: v.copy() for k, v in store.state_arrays().items()}
        other = self._store()
        other.load_state(manifest, arrays)
        (a,) = store.checkout([700])
        (b,) = other.checkout([700])
        assert a._rng.random() == b._rng.random()
        store.writeback([a])
        other.writeback([b])

    def test_load_state_validates_identity(self):
        store = self._store()
        views = store.checkout([0])
        store.writeback(views)
        manifest = store.manifest()
        arrays = store.state_arrays()
        with pytest.raises(ValueError):
            self._store(seed=12).load_state(manifest, arrays)
        smaller = ClientStateStore(
            5_000,
            CyclicPartition(_dataset(rows=60), 5_000, 10),
            seed=11,
            shard_size=64,
        )
        with pytest.raises(ValueError):
            smaller.load_state(manifest, arrays)

    def test_from_clients_requires_dense_ids(self):
        clients = _clients(3)
        clients[2] = FLClient(
            9, clients[2].train_data, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            ClientStateStore.from_clients(clients)

    def test_record_round_stats_and_feedback(self):
        data = _dataset(rows=60)
        store = ClientStateStore(
            100,
            CyclicPartition(data, 100, 10),
            track_feedback=True,
            n_params=9,
        )
        u_bar = np.array([0.5, -1.0, 0.0, 2.0, -3.0, 0.0, 1.0, 1.0, -1.0])
        store.record_round(3, [4, 5], [6], feedback_sign=u_bar)
        assert store.participation_stats(4) == {
            "participations": 1, "uploads": 1, "last_round": 3,
        }
        assert store.participation_stats(6) == {
            "participations": 1, "uploads": 0, "last_round": 3,
        }
        assert store.participation_stats(7)["participations"] == 0
        assert np.array_equal(store.feedback_signs(5), np.sign(u_bar))
        # Same shard, never a participant: an all-zero sign row.
        assert not store.feedback_signs(99).any()
        # Untouched shard: no feedback recorded at all.
        sharded = ClientStateStore(
            100,
            CyclicPartition(data, 100, 10),
            shard_size=8,
            track_feedback=True,
            n_params=9,
        )
        sharded.record_round(1, [0], [], feedback_sign=u_bar)
        assert sharded.feedback_signs(99) is None
        plain = ClientStateStore(100, CyclicPartition(data, 100, 10))
        with pytest.raises(ValueError):
            plain.feedback_signs(0)

    def test_constructor_validates(self):
        data = _dataset(rows=60)
        part = CyclicPartition(data, 10, 10)
        with pytest.raises(ValueError):
            ClientStateStore(0, part)
        with pytest.raises(ValueError):
            ClientStateStore(11, part)  # partition too small
        with pytest.raises(ValueError):
            ClientStateStore(10, part, track_feedback=True)  # no n_params


class TestTrainerParity:
    """Store-backed lazy views vs eager FLClient objects: same bits."""

    def _eager_trainer(self, backend="serial", rounds=5):
        trainer = FederatedTrainer(
            _workspace(),
            _clients(),
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            _config(backend=backend),
        )
        trainer.run(rounds)
        return trainer

    def _store_trainer(self, backend="serial", rounds=5, run=True):
        store = ClientStateStore.from_clients(_clients(), shard_size=4)
        trainer = FederatedTrainer(
            _workspace(),
            store,
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            _config(backend=backend),
        )
        if run:
            trainer.run(rounds)
        return trainer

    def test_serial_digest_identical(self):
        assert _history_digest(self._eager_trainer("serial")) == (
            _history_digest(self._store_trainer("serial"))
        )

    def test_batched_digest_identical(self):
        assert _history_digest(self._eager_trainer("serial")) == (
            _history_digest(self._store_trainer("batched"))
        )

    def test_store_with_sampler(self):
        store = ClientStateStore.from_clients(_clients(), shard_size=4)
        trainer = FederatedTrainer(
            _workspace(),
            store,
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            _config(),
            sampler=UniformSampler(0.5, rng=2),
        )
        history = trainer.run(4)
        assert all(r.n_clients == 4 for r in history)
        eager = FederatedTrainer(
            _workspace(),
            _clients(),
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            _config(),
            sampler=UniformSampler(0.5, rng=2),
        )
        eager.run(4)
        assert _history_digest(trainer) == _history_digest(eager)

    def test_process_backend_rejected(self):
        store = ClientStateStore.from_clients(_clients())
        with pytest.raises(ValueError):
            FederatedTrainer(
                _workspace(),
                store,
                CMFLPolicy(InverseSqrtThreshold(0.8)),
                _config(backend="process"),
            )

    def test_store_counters_account_cohorts(self):
        from repro.obs import MemorySink, Tracer

        store = ClientStateStore.from_clients(_clients(), shard_size=4)
        trainer = FederatedTrainer(
            _workspace(),
            store,
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            _config(),
            tracer=Tracer(sinks=[MemorySink()]),
        )
        trainer.run(3)
        # from_clients touched both shards before the trainer bound the
        # metrics registry, so only the checkout traffic is counted.
        assert store.metrics.counter("store.checkouts").value == 8 * 3
        assert store.materialized_shards == 2
        trainer.close()

    def test_stats_reflect_cmfl_decisions(self):
        trainer = self._store_trainer(rounds=5)
        uploads = sum(
            trainer.store.participation_stats(i)["uploads"]
            for i in range(8)
        )
        participations = sum(
            trainer.store.participation_stats(i)["participations"]
            for i in range(8)
        )
        assert participations == 8 * 5
        assert uploads == sum(r.n_uploaded for r in trainer.history)


class TestStoreCheckpoint:
    """Crash/resume with shard state stays bitwise-identical."""

    def _build(self):
        store = ClientStateStore.from_clients(_clients(), shard_size=4)
        return FederatedTrainer(
            _workspace(),
            store,
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            _config(rounds=8),
            sampler=UniformSampler(0.5, rng=5),
        )

    def test_resume_is_bitwise_identical(self, tmp_path):
        reference = self._build()
        reference.run(8)
        expected = _history_digest(reference)

        crashed = self._build()
        crashed.run(4)
        path = crashed.save_checkpoint(tmp_path / "store.ckpt")
        resumed = FederatedTrainer.restore(
            path,
            _workspace(),
            ClientStateStore.from_clients(_clients(), shard_size=4),
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            _config(rounds=8),
            sampler=UniformSampler(0.5, rng=5),
        )
        resumed.run(4)
        assert _history_digest(resumed) == expected
        assert resumed.store.materialized_shards == (
            crashed.store.materialized_shards
        )

    def test_store_checkpoint_mismatch_fails_loudly(self, tmp_path):
        from repro.ckpt.format import CheckpointError

        trainer = self._build()
        trainer.run(2)
        path = trainer.save_checkpoint(tmp_path / "store.ckpt")
        with pytest.raises(CheckpointError):
            FederatedTrainer.restore(
                path,
                _workspace(),
                _clients(),  # eager federation, store-backed checkpoint
                CMFLPolicy(InverseSqrtThreshold(0.8)),
                _config(rounds=8),
                sampler=UniformSampler(0.5, rng=5),
            )
