"""Thresholds, feedback estimator, and the CMFL/baseline policies."""

import numpy as np
import pytest

from repro.baselines.gaia import GaiaPolicy, gaia_significance
from repro.baselines.vanilla import VanillaPolicy
from repro.core.feedback import GlobalUpdateEstimator, normalized_update_difference
from repro.core.policy import CMFLPolicy, PolicyContext
from repro.core.thresholds import (
    ConstantThreshold,
    InverseSqrtThreshold,
    LinearDecayThreshold,
)


def make_ctx(iteration=2, n=4, feedback=None, params=None):
    return PolicyContext(
        iteration=iteration,
        global_params=np.ones(n) if params is None else params,
        global_update_estimate=(
            np.ones(n) if feedback is None else feedback
        ),
    )


class TestThresholds:
    def test_constant(self):
        assert ConstantThreshold(0.8)(100) == 0.8

    def test_inverse_sqrt_decays(self):
        sched = InverseSqrtThreshold(0.8)
        assert sched(1) == 0.8
        assert sched(4) == pytest.approx(0.4)
        assert sched(16) == pytest.approx(0.2)

    def test_linear_decay(self):
        sched = LinearDecayThreshold(0.6, 0.4, horizon=5)
        assert sched(1) == pytest.approx(0.6)
        assert sched(3) == pytest.approx(0.5)
        assert sched(5) == pytest.approx(0.4)
        assert sched(50) == pytest.approx(0.4)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ConstantThreshold(-0.1)
        with pytest.raises(ValueError):
            LinearDecayThreshold(0.4, 0.6, 10)  # final > initial
        with pytest.raises(ValueError):
            InverseSqrtThreshold(0.5)(0)  # 1-based


class TestFeedbackEstimator:
    def test_estimate_zero_before_observations(self):
        est = GlobalUpdateEstimator(3)
        np.testing.assert_array_equal(est.estimate, np.zeros(3))

    def test_estimate_is_previous_update(self):
        est = GlobalUpdateEstimator(2)
        est.observe(np.array([1.0, -1.0]))
        np.testing.assert_array_equal(est.estimate, [1.0, -1.0])
        est.observe(np.array([2.0, 2.0]))
        np.testing.assert_array_equal(est.estimate, [2.0, 2.0])

    def test_staleness(self):
        est = GlobalUpdateEstimator(1, staleness=2)
        est.observe(np.array([1.0]))
        est.observe(np.array([2.0]))
        est.observe(np.array([3.0]))
        np.testing.assert_array_equal(est.estimate, [2.0])

    def test_delta_updates_recorded(self):
        est = GlobalUpdateEstimator(2)
        est.observe(np.array([1.0, 0.0]))
        est.observe(np.array([1.0, 1.0]))
        assert len(est.delta_updates) == 1
        assert est.delta_updates[0] == pytest.approx(1.0)

    def test_wrong_size_rejected(self):
        est = GlobalUpdateEstimator(2)
        with pytest.raises(ValueError):
            est.observe(np.zeros(3))

    def test_normalized_difference(self):
        assert normalized_update_difference(
            np.array([3.0, 4.0]), np.array([3.0, 4.0])
        ) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            normalized_update_difference(np.zeros(2), np.ones(2))


class TestCMFLPolicy:
    def test_uploads_when_aligned(self):
        policy = CMFLPolicy(ConstantThreshold(0.6))
        d = policy.decide(np.ones(4), make_ctx())
        assert d.upload and d.score == 1.0

    def test_filters_when_misaligned(self):
        policy = CMFLPolicy(ConstantThreshold(0.6))
        d = policy.decide(-np.ones(4), make_ctx())
        assert not d.upload and d.score == 0.0

    def test_first_round_always_uploads(self):
        """With zero feedback the relevance is defined as 1."""
        policy = CMFLPolicy(ConstantThreshold(0.99))
        d = policy.decide(-np.ones(4), make_ctx(feedback=np.zeros(4)))
        assert d.upload and d.score == 1.0

    def test_threshold_schedule_applied(self):
        policy = CMFLPolicy(InverseSqrtThreshold(0.8))
        half_aligned = np.array([1.0, 1.0, -1.0, -1.0])
        # t=1: threshold 0.8 > 0.5 -> filtered
        assert not policy.decide(half_aligned, make_ctx(iteration=1)).upload
        # t=4: threshold 0.4 < 0.5 -> uploaded
        assert policy.decide(half_aligned, make_ctx(iteration=4)).upload

    def test_threshold_capped_at_one(self):
        policy = CMFLPolicy(ConstantThreshold(5.0))
        d = policy.decide(np.ones(4), make_ctx())
        assert d.threshold == 1.0
        assert d.upload  # fully aligned meets the capped threshold


class TestVanillaPolicy:
    def test_always_uploads(self):
        policy = VanillaPolicy()
        for u in (np.zeros(3), -np.ones(3)):
            assert policy.decide(u, make_ctx()).upload


class TestGaia:
    def test_significance_norm_ratio(self):
        sig = gaia_significance(np.array([3.0, 4.0]), np.array([5.0, 0.0]))
        assert sig == pytest.approx(1.0)

    def test_significance_scales_with_update(self):
        """Magnitude dependence: the exact weakness the paper exploits."""
        u = np.array([1.0, 1.0])
        x = np.array([2.0, 2.0])
        assert gaia_significance(2 * u, x) == pytest.approx(
            2 * gaia_significance(u, x)
        )

    def test_policy_thresholding(self):
        policy = GaiaPolicy(ConstantThreshold(0.5))
        ctx = make_ctx(params=np.array([1.0, 1.0]))
        assert policy.decide(np.array([1.0, 1.0]), ctx).upload
        assert not policy.decide(np.array([0.1, 0.1]), ctx).upload

    def test_per_parameter_mode(self):
        policy = GaiaPolicy(
            ConstantThreshold(0.5), mode="per_parameter",
            min_significant_fraction=0.5,
        )
        ctx = make_ctx(params=np.array([1.0, 1.0]))
        # one of two parameters individually significant -> fraction 0.5
        d = policy.decide(np.array([1.0, 0.0]), ctx)
        assert d.upload and d.score == pytest.approx(0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            GaiaPolicy(ConstantThreshold(0.5), mode="bogus")

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            gaia_significance(np.ones(2), np.ones(3))
