"""Update compression codecs and the policy/codec composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.vanilla import VanillaPolicy
from repro.compress.codecs import (
    CODEC_HEADER_BYTES,
    IdentityCodec,
    QuantizationCodec,
    RandomSparsifier,
    TopKSparsifier,
)
from repro.compress.pipeline import CompressionPipeline
from repro.core.policy import CMFLPolicy, PolicyContext
from repro.core.thresholds import ConstantThreshold


def ctx(n=8, iteration=2):
    return PolicyContext(
        iteration=iteration,
        global_params=np.ones(n),
        global_update_estimate=np.ones(n),
    )


class TestIdentity:
    def test_lossless(self, rng):
        codec = IdentityCodec()
        vec = rng.normal(size=32)
        out = codec.decode(codec.encode(vec))
        np.testing.assert_array_equal(out, vec)

    def test_wire_size(self):
        c = IdentityCodec().encode(np.ones(100))
        assert c.wire_bytes == CODEC_HEADER_BYTES + 400


class TestQuantization:
    def test_round_trip_error_bounded_by_step(self, rng):
        vec = rng.normal(size=200)
        step = (vec.max() - vec.min()) / 255
        deterministic = QuantizationCodec(bits=8, stochastic=False)
        out = deterministic.decode(deterministic.encode(vec))
        assert np.max(np.abs(out - vec)) <= step / 2 + 1e-12
        stochastic = QuantizationCodec(bits=8, rng=0)
        out = stochastic.decode(stochastic.encode(vec))
        assert np.max(np.abs(out - vec)) <= step + 1e-12

    def test_stochastic_rounding_is_unbiased(self):
        vec = np.full(4000, 0.3)
        vec[0], vec[1] = 0.0, 1.0  # pin the range
        codec = QuantizationCodec(bits=4, rng=1)
        out = codec.decode(codec.encode(vec))
        assert abs(out[2:].mean() - 0.3) < 0.005

    def test_more_bits_less_error(self, rng):
        vec = rng.normal(size=500)
        errors = []
        for bits in (2, 4, 8):
            codec = QuantizationCodec(bits=bits, stochastic=False)
            out = codec.decode(codec.encode(vec))
            errors.append(np.linalg.norm(out - vec))
        assert errors[0] > errors[1] > errors[2]

    def test_constant_vector(self):
        codec = QuantizationCodec(bits=4)
        vec = np.full(10, 3.5)
        out = codec.decode(codec.encode(vec))
        np.testing.assert_allclose(out, vec)

    def test_wire_smaller_than_raw(self):
        compressed = QuantizationCodec(bits=8).encode(np.ones(1000))
        assert compressed.wire_bytes < 4 * 1000

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationCodec(bits=0)


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        codec = TopKSparsifier(fraction=0.25)
        vec = np.array([0.1, -5.0, 0.2, 4.0, 0.0, 0.3, -0.1, 1.0])
        out = codec.decode(codec.encode(vec))
        assert out[1] == -5.0 and out[3] == 4.0
        assert np.count_nonzero(out) == 2

    def test_fraction_one_is_lossless(self, rng):
        codec = TopKSparsifier(fraction=1.0)
        vec = rng.normal(size=16)
        np.testing.assert_allclose(codec.decode(codec.encode(vec)), vec)

    @settings(max_examples=30)
    @given(st.integers(0, 2**31 - 1), st.floats(0.05, 1.0))
    def test_decode_preserves_kept_coordinates(self, seed, fraction):
        vec = np.random.default_rng(seed).normal(size=40)
        codec = TopKSparsifier(fraction=fraction)
        compressed = codec.encode(vec)
        out = codec.decode(compressed)
        np.testing.assert_allclose(out[compressed.indices],
                                   vec[compressed.indices])


class TestRandomSparse:
    def test_unbiased_in_expectation(self):
        vec = np.ones(400)
        sums = []
        for seed in range(30):
            codec = RandomSparsifier(fraction=0.25, rng=seed)
            sums.append(codec.decode(codec.encode(vec)).sum())
        assert np.mean(sums) == pytest.approx(vec.sum(), rel=0.05)

    def test_sparsity(self, rng):
        codec = RandomSparsifier(fraction=0.1, rng=0)
        out = codec.decode(codec.encode(rng.normal(size=100)))
        assert np.count_nonzero(out) == 10


class TestPipeline:
    def test_composes_with_vanilla(self, rng):
        pipeline = CompressionPipeline(VanillaPolicy(), QuantizationCodec(8))
        update = rng.normal(size=64)
        original = update.copy()
        decision = pipeline.decide(update, ctx(64))
        assert decision.upload
        # update mutated to the decoded (lossy) version
        assert not np.array_equal(update, original)
        assert pipeline.stats.compression_ratio > 1.5
        assert pipeline.stats.mean_relative_error < 0.05

    def test_filtered_updates_cost_only_status(self):
        pipeline = CompressionPipeline(
            CMFLPolicy(ConstantThreshold(0.9)), QuantizationCodec(8)
        )
        update = -np.ones(16)  # anti-aligned with the feedback
        decision = pipeline.decide(update, ctx(16))
        assert not decision.upload
        assert pipeline.stats.uploaded_bytes == 0
        assert pipeline.stats.status_bytes > 0

    def test_name_combines(self):
        pipeline = CompressionPipeline(VanillaPolicy(), TopKSparsifier(0.1))
        assert pipeline.name == "vanilla+topk"

    def test_in_full_federation(self):
        """CMFL + quantization runs end-to-end and beats raw bytes."""
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.fl.client import FLClient
        from repro.fl.config import FLConfig
        from repro.fl.trainer import FederatedTrainer
        from repro.fl.workspace import ModelWorkspace
        from repro.models.linear import make_logistic_regression
        from repro.nn.losses import SigmoidBinaryCrossEntropy
        from repro.nn.optimizers import SGD
        from repro.nn.schedules import ConstantLR
        from repro.utils.rng import child_rngs

        rngs = child_rngs(3, 8)
        x = rngs[0].normal(size=(80, 50))
        y = (x @ rngs[1].normal(size=50) > 0).astype(np.int64)
        data = Dataset(x, y)
        model = make_logistic_regression(50, rng=rngs[2])
        workspace = ModelWorkspace(model, SigmoidBinaryCrossEntropy(),
                                   SGD(model.parameters(), 0.5))
        clients = [FLClient(i, data.subset(p), rng=rngs[3 + i])
                   for i, p in enumerate(iid_partition(80, 4, rng=0))]
        pipeline = CompressionPipeline(
            CMFLPolicy(ConstantThreshold(0.5)), QuantizationCodec(8)
        )
        trainer = FederatedTrainer(
            workspace, clients, pipeline,
            FLConfig(rounds=5, local_epochs=1, batch_size=10,
                     lr=ConstantLR(0.5)),
        )
        trainer.run()
        assert pipeline.stats.compression_ratio > 1.0
        assert np.all(np.isfinite(trainer.server.global_params))
