"""The CMFL relevance measure (Eq. 9): unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.relevance import (
    relevance,
    relevance_per_segment,
    sign_agreement_counts,
)

# Subnormals are excluded: multiplying one by a scale in (0, 1) can
# underflow to exactly 0.0, flipping its sign class and (correctly)
# changing the relevance — which would falsify scale invariance for a
# reason that has nothing to do with Eq. (9).
vectors = arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-100, 100, allow_nan=False, allow_subnormal=False),
)


class TestRelevanceUnit:
    def test_identical_vectors_fully_relevant(self):
        u = np.array([1.0, -2.0, 3.0])
        assert relevance(u, u) == 1.0

    def test_opposite_vectors_irrelevant(self):
        u = np.array([1.0, -2.0, 3.0])
        assert relevance(u, -u) == 0.0

    def test_half_agreement(self):
        u = np.array([1.0, 1.0, -1.0, -1.0])
        g = np.array([1.0, -1.0, -1.0, 1.0])
        assert relevance(u, g) == 0.5

    def test_zero_feedback_defined_as_one(self):
        """Round 1 has no global tendency: everything is relevant."""
        assert relevance(np.array([1.0, -1.0]), np.zeros(2)) == 1.0

    def test_zero_entries_count_when_both_zero(self):
        u = np.array([0.0, 1.0])
        g = np.array([0.0, 1.0])
        assert relevance(u, g) == 1.0

    def test_zero_vs_nonzero_disagrees(self):
        u = np.array([0.0, 1.0])
        g = np.array([2.0, 1.0])
        assert relevance(u, g) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            relevance(np.ones(3), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sign_agreement_counts(np.array([]), np.array([]))

    def test_counts(self):
        agree, total = sign_agreement_counts(
            np.array([1.0, -1.0, 1.0]), np.array([1.0, 1.0, 1.0])
        )
        assert (agree, total) == (2, 3)


class TestRelevanceProperties:
    @given(vectors)
    def test_self_relevance_is_one(self, u):
        assert relevance(u, u) == 1.0

    @settings(max_examples=50)
    @given(vectors, st.integers(0, 2**31 - 1))
    def test_bounded(self, u, seed):
        g = np.random.default_rng(seed).normal(size=u.shape)
        assert 0.0 <= relevance(u, g) <= 1.0

    @settings(max_examples=50)
    @given(vectors, st.integers(0, 2**31 - 1))
    def test_symmetric_when_feedback_nonzero(self, u, seed):
        g = np.random.default_rng(seed).normal(size=u.shape)
        # both nonzero with probability 1 -> Eq. (9) is symmetric
        if np.any(g) and np.any(u):
            assert relevance(u, g) == relevance(g, u)

    @settings(max_examples=50)
    @given(vectors, st.integers(0, 2**31 - 1),
           st.floats(0.1, 100, allow_nan=False))
    def test_scale_invariant(self, u, seed, scale):
        """Relevance depends on signs only -- the property that makes it
        robust to learning rates and dataset sizes (unlike Gaia)."""
        g = np.random.default_rng(seed).normal(size=u.shape)
        assert relevance(u, g) == relevance(u * scale, g)
        if np.any(g):
            assert relevance(u, g) == relevance(u, g * scale)

    @settings(max_examples=50)
    @given(st.integers(2, 64), st.integers(0, 2**31 - 1))
    def test_flip_one_sign_changes_by_one_over_n(self, n, seed):
        gen = np.random.default_rng(seed)
        u = gen.normal(size=n)
        g = gen.normal(size=n)
        base = relevance(u, g)
        flipped = u.copy()
        flipped[0] = -flipped[0]
        assert abs(relevance(flipped, g) - base) == pytest.approx(1.0 / n)


class TestPerSegment:
    def test_segments_computed_independently(self):
        u = np.array([1.0, 1.0, -1.0, -1.0])
        g = np.array([1.0, 1.0, 1.0, 1.0])
        out = relevance_per_segment(u, g, [2, 4])
        np.testing.assert_array_equal(out, [1.0, 0.0])

    def test_boundaries_must_cover(self):
        with pytest.raises(ValueError):
            relevance_per_segment(np.ones(4), np.ones(4), [2])

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            relevance_per_segment(np.ones(4), np.ones(4), [2, 2, 4])

    def test_mean_of_segments_matches_whole_for_equal_sizes(self):
        u = np.array([1.0, -1.0, 1.0, -1.0])
        g = np.array([1.0, 1.0, 1.0, 1.0])
        segs = relevance_per_segment(u, g, [2, 4])
        assert segs.mean() == relevance(u, g)
