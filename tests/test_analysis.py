"""Divergence, CDFs, saving and regret analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import empirical_cdf, fraction_below, quantile
from repro.analysis.convergence import RegretTracker, theoretical_bound
from repro.analysis.divergence import divergence_summary, normalized_model_divergence
from repro.analysis.saving import (
    best_reached_accuracy,
    bytes_to_accuracy,
    rounds_to_accuracy,
    saving,
)
from repro.fl.history import RoundRecord, RunHistory


class TestDivergence:
    def test_identical_models_zero_divergence(self):
        g = np.array([1.0, -2.0, 3.0])
        d = normalized_model_divergence([g.copy(), g.copy()], g)
        np.testing.assert_allclose(d, np.zeros(3))

    def test_known_value(self):
        g = np.array([2.0])
        d = normalized_model_divergence([np.array([3.0]), np.array([1.0])], g)
        # (|3-2| + |1-2|) / 2 / |2| = 0.5
        assert d[0] == pytest.approx(0.5)

    def test_eq7_per_client_average(self):
        g = np.array([1.0, 1.0])
        clients = [np.array([2.0, 1.0]), np.array([0.0, 1.0]),
                   np.array([1.0, 3.0])]
        d = normalized_model_divergence(clients, g)
        assert d[0] == pytest.approx(2 / 3)
        assert d[1] == pytest.approx(2 / 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            normalized_model_divergence([np.ones(2)], np.ones(3))

    def test_summary(self):
        s = divergence_summary(np.array([0.5, 1.5, 2.5]))
        assert s["fraction_above_1"] == pytest.approx(2 / 3)
        assert s["max"] == 2.5


class TestCDF:
    def test_empirical_cdf_sorted(self):
        values, probs = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert values.tolist() == [1.0, 2.0, 3.0]
        np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_fraction_below(self):
        assert fraction_below(np.array([1, 2, 3, 4]), 2.5) == 0.5

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            quantile(np.array([1.0]), 1.5)

    @settings(max_examples=30)
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                    max_size=50))
    def test_cdf_is_monotone_and_ends_at_one(self, values):
        v, p = empirical_cdf(np.asarray(values))
        assert np.all(np.diff(v) >= 0)
        assert np.all(np.diff(p) > 0)
        assert p[-1] == pytest.approx(1.0)


def _history(metrics, uploads_per_round=5, bytes_per_round=1000):
    history = RunHistory("x")
    for t, metric in enumerate(metrics, start=1):
        history.append(
            RoundRecord(
                iteration=t, n_clients=uploads_per_round,
                n_uploaded=uploads_per_round,
                accumulated_rounds=uploads_per_round * t,
                total_bytes=bytes_per_round * t, lr=0.1,
                mean_train_loss=1.0, mean_score=0.5, threshold=0.5,
                test_metric=metric,
            )
        )
    return history


class TestSaving:
    def test_rounds_to_accuracy_first_crossing(self):
        history = _history([0.1, 0.5, 0.7, 0.9], uploads_per_round=2)
        # smoothing window 1 -> raw curve
        assert rounds_to_accuracy(history, 0.7, smooth_window=1) == 6

    def test_unreached_target_returns_none(self):
        history = _history([0.1, 0.2])
        assert rounds_to_accuracy(history, 0.9) is None

    def test_smoothing_suppresses_spikes(self):
        history = _history([0.1, 0.95, 0.1, 0.1, 0.1])
        assert rounds_to_accuracy(history, 0.9, smooth_window=3) is None

    def test_saving_ratio(self):
        base = _history([0.2, 0.4, 0.6, 0.8], uploads_per_round=10)
        comp = _history([0.4, 0.8, 0.9, 0.9], uploads_per_round=5)
        s = saving(base, comp, 0.75, smooth_window=1)
        # base reaches at phi=40, comp at phi=10
        assert s == pytest.approx(4.0)

    def test_bytes_to_accuracy(self):
        history = _history([0.1, 0.9], bytes_per_round=500)
        assert bytes_to_accuracy(history, 0.8, smooth_window=1) == 1000

    def test_best_reached(self):
        history = _history([0.3, 0.9, 0.5])
        assert best_reached_accuracy(history, smooth_window=1) == pytest.approx(0.9)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            rounds_to_accuracy(_history([0.5]), 1.5)


class TestRegret:
    def test_time_average_regret(self):
        tracker = RegretTracker(optimal_loss=1.0)
        for loss in (3.0, 2.0, 1.0, 1.0):
            tracker.observe(loss)
        avg = tracker.time_average_regret()
        np.testing.assert_allclose(avg, [2.0, 1.5, 1.0, 0.75])

    def test_is_decaying_on_converging_run(self):
        tracker = RegretTracker(0.0)
        for t in range(1, 50):
            tracker.observe(1.0 / t)
        assert tracker.is_decaying()

    def test_nonfinite_rejected(self):
        tracker = RegretTracker(0.0)
        with pytest.raises(ValueError):
            tracker.observe(float("nan"))

    def test_theoretical_bound_decays_for_sqrt_schedules(self):
        t = np.arange(1, 200)
        etas = 1.0 / np.sqrt(t)
        bound = theoretical_bound(etas, etas)
        assert bound[-1] < bound[10] < bound[0] * 2
        # ~ 1/sqrt(T) shape: quadrupling T should roughly halve it
        assert bound[160] / bound[40] == pytest.approx(0.5, rel=0.25)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            theoretical_bound(np.array([0.1]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            theoretical_bound(np.array([-0.1]), np.array([0.1]))
