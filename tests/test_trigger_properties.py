"""Property-based contracts of the client-side upload triggers.

The async engine's determinism leans on :class:`UploadTrigger.check`
being a **pure** function of ``(update, ctx)`` — same decision on any
backend, across resumes, under any event ordering.  These tests hold
every shipped trigger to that, plus each rule's defining identity
(relevance == Eq. 9, norm == l2).  Degrades to a clean skip when
``hypothesis`` is not installed, like ``test_relevance_properties.py``.
"""

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    from hypothesis.extra.numpy import arrays
except ImportError:
    hypothesis_installed = False
else:
    hypothesis_installed = True

from repro.core import (
    AlwaysUpload,
    CMFLPolicy,
    NormTrigger,
    RelevanceTrigger,
    TriggerPolicy,
)
from repro.core.policy import PolicyContext
from repro.core.relevance import relevance
from repro.core.thresholds import InverseSqrtThreshold

pytestmark = pytest.mark.skipif(
    not hypothesis_installed, reason="package 'hypothesis' not installed"
)

if hypothesis_installed:
    finite_vectors = arrays(
        np.float64,
        st.integers(1, 64),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
    iterations = st.integers(1, 1000)
    seeds = st.integers(0, 2**31 - 1)

    def _ctx(update, iteration, seed, staleness=0):
        gen = np.random.default_rng(seed)
        return PolicyContext(
            iteration=iteration,
            global_params=gen.normal(size=update.shape),
            global_update_estimate=gen.normal(size=update.shape),
            staleness=staleness,
        )

    TRIGGERS = [
        AlwaysUpload(),
        RelevanceTrigger(InverseSqrtThreshold(0.8)),
        NormTrigger(scale=2.0, decay=0.5),
    ]

    @settings(max_examples=50)
    @given(finite_vectors, iterations, seeds, st.integers(0, 8))
    def test_check_is_pure(u, iteration, seed, staleness):
        """Same inputs -> the same decision, every time, for every rule.

        Fresh but equal context objects (separate round caches) must
        not change the outcome either — the engine rebuilds contexts
        per round and per resume.
        """
        for trigger in TRIGGERS:
            first = trigger.check(u, _ctx(u, iteration, seed, staleness))
            again = trigger.check(u, _ctx(u, iteration, seed, staleness))
            assert first == again

    @settings(max_examples=50)
    @given(finite_vectors, iterations, seeds)
    def test_check_does_not_mutate_inputs(u, iteration, seed):
        ctx = _ctx(u, iteration, seed)
        u_before = u.copy()
        feedback_before = ctx.global_update_estimate.copy()
        for trigger in TRIGGERS:
            trigger.check(u, ctx)
        np.testing.assert_array_equal(u, u_before)
        np.testing.assert_array_equal(
            ctx.global_update_estimate, feedback_before
        )

    @settings(max_examples=100)
    @given(finite_vectors, iterations, seeds)
    def test_relevance_trigger_scores_exactly_eq9(u, iteration, seed):
        ctx = _ctx(u, iteration, seed)
        decision = RelevanceTrigger(InverseSqrtThreshold(0.8)).check(u, ctx)
        assert decision.score == relevance(u, ctx.global_update_estimate)
        assert decision.upload == (decision.score >= decision.threshold)

    @settings(max_examples=100)
    @given(finite_vectors, iterations, seeds)
    def test_relevance_trigger_agrees_with_cmfl_policy(u, iteration, seed):
        """The trigger and CMFLPolicy are the same rule, decision for
        decision — the S=0 bitwise equivalence rests on this."""
        schedule = InverseSqrtThreshold(0.8)
        from_trigger = TriggerPolicy(RelevanceTrigger(schedule)).decide(
            u, _ctx(u, iteration, seed)
        )
        from_policy = CMFLPolicy(schedule).decide(
            u, _ctx(u, iteration, seed)
        )
        assert from_trigger == from_policy

    @settings(max_examples=100)
    @given(finite_vectors, iterations, seeds)
    def test_norm_trigger_scores_the_l2_norm(u, iteration, seed):
        trigger = NormTrigger(scale=2.0, decay=0.5)
        decision = trigger.check(u, _ctx(u, iteration, seed))
        assert decision.score == float(np.linalg.norm(u))
        assert decision.threshold == 2.0 / (1.0 + iteration) ** 0.5
        assert decision.upload == (decision.score >= decision.threshold)

    @settings(max_examples=50)
    @given(finite_vectors, iterations, seeds)
    def test_always_upload_always_uploads(u, iteration, seed):
        decision = AlwaysUpload().check(u, _ctx(u, iteration, seed))
        assert decision.upload
        assert decision == AlwaysUpload().check(u, _ctx(u, iteration, seed))

    @settings(max_examples=50)
    @given(iterations)
    def test_norm_band_shrinks_monotonically(iteration):
        """The band is decreasing in t: late small deltas are suppressed
        harder, never softer."""
        trigger = NormTrigger(scale=1.0, decay=0.5)
        u = np.ones(4)
        ctx_now = _ctx(u, iteration, 0)
        ctx_later = _ctx(u, iteration + 1, 0)
        assert (
            trigger.check(u, ctx_later).threshold
            <= trigger.check(u, ctx_now).threshold
        )
