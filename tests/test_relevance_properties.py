"""Property-based contracts of the CMFL relevance measure (Eq. 9).

Complements ``test_core_relevance.py`` with the invariants the lint /
determinism policy leans on, and degrades to a clean skip when
``hypothesis`` is not installed (the library itself only needs numpy).
"""

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    from hypothesis.extra.numpy import arrays
except ImportError:
    hypothesis_installed = False
else:
    hypothesis_installed = True

from repro.core.relevance import relevance, sign_agreement_counts

pytestmark = pytest.mark.skipif(
    not hypothesis_installed, reason="package 'hypothesis' not installed"
)

if hypothesis_installed:
    finite_vectors = arrays(
        np.float64,
        st.integers(1, 128),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
    #: Vectors with no zero entry: every coordinate has a definite sign.
    sign_definite_vectors = arrays(
        np.float64,
        st.integers(1, 128),
        elements=st.one_of(
            st.floats(0.01, 1e6, allow_nan=False),
            st.floats(-1e6, -0.01, allow_nan=False),
        ),
    )
    seeds = st.integers(0, 2**31 - 1)

    @settings(max_examples=100)
    @given(finite_vectors, seeds)
    def test_relevance_is_bounded(u, seed):
        g = np.random.default_rng(seed).normal(size=u.shape)
        assert 0.0 <= relevance(u, g) <= 1.0

    @settings(max_examples=100)
    @given(finite_vectors, seeds)
    def test_permutation_invariance(u, seed):
        """Eq. 9 sums an indicator over coordinates: order cannot matter."""
        gen = np.random.default_rng(seed)
        g = gen.normal(size=u.shape)
        perm = gen.permutation(u.size)
        assert relevance(u[perm], g[perm]) == relevance(u, g)

    @given(sign_definite_vectors)
    def test_sign_definite_self_relevance_is_one(u):
        """Without the zero-feedback shortcut: genuine full agreement."""
        assert np.all(u != 0)
        agree, total = sign_agreement_counts(u, u)
        assert agree == total
        assert relevance(u, u) == 1.0

    @settings(max_examples=100)
    @given(sign_definite_vectors)
    def test_negation_is_fully_irrelevant(u):
        assert relevance(u, -u) == 0.0

    @given(finite_vectors)
    def test_zero_feedback_defines_relevance_one(u):
        """Round 1: no global tendency exists, everything is relevant."""
        assert relevance(u, np.zeros(u.shape, dtype=float)) == 1.0

    @settings(max_examples=100)
    @given(sign_definite_vectors)
    def test_zero_update_against_nonzero_feedback(u):
        """sgn(0) agrees with nothing sign-definite: relevance 0."""
        assert relevance(np.zeros(u.shape, dtype=float), u) == 0.0

    @settings(max_examples=100)
    @given(finite_vectors, seeds)
    def test_matches_counts_ratio(u, seed):
        g = np.random.default_rng(seed).normal(size=u.shape)
        agree, total = sign_agreement_counts(u, g)
        assert relevance(u, g) == agree / total
