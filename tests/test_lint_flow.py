"""Flow-rule tests: each rule family must fire on seeded violations.

Synthetic cases run on in-memory trees; the mutation tests inject a
seeded defect into the *real* ``src/repro`` sources (via the
analyzer's ``file_sources`` override, no disk writes) and assert the
whole-program pass catches exactly it — proving the tier-1 gate would
bite on a real regression.
"""

from pathlib import Path

from repro.lint.project import ProjectAnalyzer
from repro.lint import load_config

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _analyze(tmp_path, sources, config=None):
    for package_path, source in sources.items():
        path = tmp_path / "repro" / package_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    analyzer = ProjectAnalyzer(config=config, rules=())
    return ProjectAnalyzer(config=config, rules=()).analyze(
        [str(tmp_path / "repro")]
    ), analyzer


def _rules(result):
    return sorted({v.rule for v in result.violations})


# -- rng-taint ---------------------------------------------------------------


def test_rng_taint_module_level_assign(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "import numpy as np\n"
                "GEN = np.random.default_rng(0)\n"
            )
        },
    )
    assert _rules(result) == ["rng-taint"]
    assert "module-level name 'GEN'" in result.violations[0].message


def test_rng_taint_propagates_across_modules(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "util.py": (
                "import numpy as np\n"
                "def make_rng(seed):\n"
                "    gen = np.random.default_rng(seed)\n"
                "    return gen\n"
            ),
            "app.py": (
                "from repro.util import make_rng\n"
                "SHARED = make_rng(7)\n"
            ),
        },
    )
    assert _rules(result) == ["rng-taint"]
    assert result.violations[0].path.endswith("app.py")


def test_rng_taint_default_argument(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "import numpy as np\n"
                "def sample(rng=np.random.default_rng(0)):\n"
                "    return rng.normal()\n"
            )
        },
    )
    assert _rules(result) == ["rng-taint"]
    assert "default argument" in result.violations[0].message


def test_rng_taint_boundary_crossing_flagged_outside_executor(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "import numpy as np\n"
                "def fan_out(pool, seed):\n"
                "    gen = np.random.default_rng(seed)\n"
                "    pool.submit(run, gen)\n"
                "def run(gen):\n"
                "    return gen.normal()\n"
            )
        },
    )
    assert "rng-taint" in _rules(result)
    assert any(
        "executor boundary" in v.message for v in result.violations
    )


def test_rng_taint_int_laundering_is_sanctioned(tmp_path):
    # int(...) of a spawned seed is the sanctioned hand-off: taint does
    # not propagate through arbitrary calls.
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "import numpy as np\n"
                "def spawn_seed(gen):\n"
                "    return int(gen.integers(2**31))\n"
                "SEED_KIND = 1\n"
            )
        },
    )
    assert _rules(result) == []


# -- shared-state-race -------------------------------------------------------


RACE_TREE = {
    "eng.py": (
        "STATE = {}\n"
        "\n"
        "def task(global_params, scratch):\n"
        "    scratch[0] = 1.0\n"
        "    return scratch\n"
        "\n"
        "class Engine:\n"
        "    def run(self, pool):\n"
        "        pool.submit(task, [], [])\n"
    ),
}


def test_shared_state_race_clean_tree(tmp_path):
    result, _ = _analyze(tmp_path, RACE_TREE)
    assert _rules(result) == []


def test_shared_state_race_param_write(tmp_path):
    bad = dict(RACE_TREE)
    bad["eng.py"] = bad["eng.py"].replace(
        "    scratch[0] = 1.0\n",
        "    scratch[0] = 1.0\n    global_params[0] = 0.0\n",
    )
    result, _ = _analyze(tmp_path, bad)
    assert _rules(result) == ["shared-state-race"]
    assert "broadcast parameter 'global_params'" in result.violations[0].message


def test_shared_state_race_module_write_in_worker(tmp_path):
    bad = dict(RACE_TREE)
    bad["eng.py"] = bad["eng.py"].replace(
        "    return scratch\n",
        "    STATE['x'] = 1\n    return scratch\n",
    )
    result, _ = _analyze(tmp_path, bad)
    assert _rules(result) == ["shared-state-race"]
    assert "module-level state 'STATE'" in result.violations[0].message


def test_shared_state_race_store_param_write_in_worker(tmp_path):
    # The fl/store boundary: shard arrays are coordinator-owned, so a
    # worker-reachable write through a store-named parameter must fire.
    bad = dict(RACE_TREE)
    bad["eng.py"] = bad["eng.py"].replace(
        "def task(global_params, scratch):\n",
        "def task(global_params, scratch, store):\n",
    ).replace(
        "    scratch[0] = 1.0\n",
        "    scratch[0] = 1.0\n    store[0] = 7\n",
    )
    result, _ = _analyze(tmp_path, bad)
    assert _rules(result) == ["shared-state-race"]
    assert (
        "client-state store parameter 'store'"
        in result.violations[0].message
    )


def test_shared_state_race_shard_array_write_in_worker(tmp_path):
    bad = dict(RACE_TREE)
    bad["eng.py"] = bad["eng.py"].replace(
        "def task(global_params, scratch):\n",
        "def task(global_params, scratch, shard_rng):\n",
    ).replace(
        "    scratch[0] = 1.0\n",
        "    scratch[0] = 1.0\n    shard_rng[3] = 0\n",
    )
    result, _ = _analyze(tmp_path, bad)
    assert _rules(result) == ["shared-state-race"]
    assert "'shard_rng'" in result.violations[0].message


def test_store_read_in_worker_is_not_a_race(tmp_path):
    # Workers may *read* store-backed views; only writes cross the
    # coordinator-ownership line.
    ok = dict(RACE_TREE)
    ok["eng.py"] = ok["eng.py"].replace(
        "def task(global_params, scratch):\n",
        "def task(global_params, scratch, store):\n",
    ).replace(
        "    scratch[0] = 1.0\n",
        "    scratch[0] = store[0]\n",
    )
    result, _ = _analyze(tmp_path, ok)
    assert _rules(result) == []


def test_shared_state_race_transitive_reachability(tmp_path):
    # The write sits one call away from the submitted entry point.
    result, _ = _analyze(
        tmp_path,
        {
            "eng.py": (
                "STATE = {}\n"
                "\n"
                "def task(x):\n"
                "    return helper(x)\n"
                "\n"
                "def helper(x):\n"
                "    STATE['x'] = x\n"
                "    return x\n"
                "\n"
                "def coordinator(pool):\n"
                "    pool.submit(task, 1)\n"
            )
        },
    )
    assert _rules(result) == ["shared-state-race"]
    assert "helper" in result.violations[0].message


def test_coordinator_side_write_is_not_a_race(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "eng.py": (
                "STATE = {}\n"
                "\n"
                "def coordinator():\n"
                "    STATE['x'] = 1\n"
            )
        },
    )
    assert _rules(result) == []


HANDLER_TREE = {
    "ev.py": (
        "STATE = {}\n"
        "\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self.handlers = {}\n"
        "\n"
        "    def register_handler(self, kind, handler):\n"
        "        self.handlers[kind] = handler\n"
        "\n"
        "def on_arrival(event):\n"
        "    return event\n"
        "\n"
        "def wire(engine):\n"
        "    engine.register_handler(0, on_arrival)\n"
    ),
}


def test_handler_reachable_clean_tree(tmp_path):
    result, _ = _analyze(tmp_path, HANDLER_TREE)
    assert _rules(result) == []


def test_shared_state_race_event_handler_module_write(tmp_path):
    # Event-loop handlers run while dispatched rounds are in flight:
    # a module-level write inside one is a race, same as in a worker.
    bad = dict(HANDLER_TREE)
    bad["ev.py"] = bad["ev.py"].replace(
        "def on_arrival(event):\n    return event\n",
        "def on_arrival(event):\n    STATE['x'] = 1\n    return event\n",
    )
    result, _ = _analyze(tmp_path, bad)
    assert _rules(result) == ["shared-state-race"]
    assert "event-handler-reachable" in result.violations[0].message
    assert "module-level state 'STATE'" in result.violations[0].message


def test_shared_state_race_event_handler_transitive_param_write(tmp_path):
    # The store sits one call below the registered handler, through a
    # broadcast-named parameter; handler= keyword registration counts.
    bad = dict(HANDLER_TREE)
    bad["ev.py"] = bad["ev.py"].replace(
        "def on_arrival(event):\n    return event\n",
        "def on_arrival(event):\n"
        "    return scribble(event, [])\n"
        "\n"
        "def scribble(event, global_params):\n"
        "    global_params[0] = 0.0\n"
        "    return event\n",
    ).replace(
        "    engine.register_handler(0, on_arrival)\n",
        "    engine.register_handler(0, handler=on_arrival)\n",
    )
    result, _ = _analyze(tmp_path, bad)
    assert _rules(result) == ["shared-state-race"]
    assert "event-handler-reachable" in result.violations[0].message
    assert "broadcast parameter 'global_params'" in result.violations[0].message


# -- ckpt-state-coverage -----------------------------------------------------


def test_ckpt_coverage_uncaptured_attr(tmp_path):
    config = load_config(REPO_ROOT)
    result, _ = _analyze(
        tmp_path,
        {
            "fl/thing.py": (
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.kept = 1\n"
                "        self.lost = 2\n"
                "        self.skipped = 3  # ckpt: transient - test seed\n"
                "\n"
                "    def state_dict(self):\n"
                "        return {'kept': self.kept}\n"
            )
        },
        config=config,
    )
    assert _rules(result) == ["ckpt-state-coverage"]
    assert "'self.lost'" in result.violations[0].message


def test_ckpt_coverage_capture_closure_through_helpers(tmp_path):
    config = load_config(REPO_ROOT)
    result, _ = _analyze(
        tmp_path,
        {
            "fl/thing.py": (
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.deep = 1\n"
                "\n"
                "    def _pack(self):\n"
                "        return {'deep': self.deep}\n"
                "\n"
                "    def state_dict(self):\n"
                "        return self._pack()\n"
            )
        },
        config=config,
    )
    assert _rules(result) == []


def test_ckpt_coverage_ignores_stateless_classes(tmp_path):
    config = load_config(REPO_ROOT)
    result, _ = _analyze(
        tmp_path,
        {
            "fl/thing.py": (
                "class Plain:\n"
                "    def __init__(self):\n"
                "        self.anything = 1\n"
            )
        },
        config=config,
    )
    assert _rules(result) == []


# -- trace-discipline --------------------------------------------------------


def test_trace_discipline_discarded_span(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "def f(tracer):\n"
                "    tracer.span('x')\n"
            )
        },
    )
    assert _rules(result) == ["trace-discipline"]
    assert "discarded" in result.violations[0].message


def test_trace_discipline_unentered_span(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "def f(tracer):\n"
                "    pending = tracer.span('x')\n"
                "    return 1\n"
            )
        },
    )
    assert _rules(result) == ["trace-discipline"]
    assert "never" in result.violations[0].message


def test_trace_discipline_enter_patterns_accepted(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "def f(tracer):\n"
                "    with tracer.span('a'):\n"
                "        pass\n"
                "    manual = tracer.span('b')\n"
                "    manual.__enter__()\n"
            )
        },
    )
    assert _rules(result) == []


def test_trace_discipline_wallclock_in_attrs(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "from time import monotonic\n"
                "def f(tracer):\n"
                "    t0 = monotonic()\n"
                "    tracer.event('e', attrs={'t': t0})\n"
            )
        },
    )
    assert _rules(result) == ["trace-discipline"]
    assert "wall-clock" in result.violations[0].message


def test_trace_discipline_rt_channel_is_exempt(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "from time import monotonic\n"
                "def f(tracer):\n"
                "    t0 = monotonic()\n"
                "    tracer.event('e', rt=t0)\n"
                "    with tracer.span('s', rt=monotonic()):\n"
                "        pass\n"
            )
        },
    )
    assert _rules(result) == []


# -- suppression comments ----------------------------------------------------


def test_flow_findings_respect_line_suppressions(tmp_path):
    result, _ = _analyze(
        tmp_path,
        {
            "m.py": (
                "import numpy as np\n"
                "GEN = np.random.default_rng(0)"
                "  # repro-lint: disable=rng-taint\n"
            )
        },
    )
    assert _rules(result) == []


# -- real-tree mutations (the acceptance-criteria seeds) ---------------------


def _analyze_real(mutations):
    config = load_config(REPO_ROOT)
    analyzer = ProjectAnalyzer(config=config, file_sources=mutations)
    return analyzer.analyze([str(SRC)])


def test_real_tree_is_clean():
    assert _analyze_real({}).violations == []


def test_mutated_trainer_attr_is_flagged():
    trainer = SRC / "fl" / "trainer.py"
    source = trainer.read_text().replace(
        "        self.history = RunHistory(policy_name=policy.name)\n",
        "        self.history = RunHistory(policy_name=policy.name)\n"
        "        self._foo = 1\n",
    )
    assert "self._foo" in source
    result = _analyze_real({str(trainer): source})
    hits = [v for v in result.violations if v.rule == "ckpt-state-coverage"]
    assert len(hits) == 1
    assert "'self._foo'" in hits[0].message
    assert "FederatedTrainer" in hits[0].message


def test_mutated_worker_param_write_is_flagged():
    client = SRC / "fl" / "client.py"
    source = client.read_text().replace(
        "        update -= global_params\n",
        "        update -= global_params\n"
        "        global_params[0] = 0.0\n",
    )
    assert "global_params[0]" in source
    result = _analyze_real({str(client): source})
    hits = [v for v in result.violations if v.rule == "shared-state-race"]
    assert hits, [v.format() for v in result.violations]
    assert any("global_params" in v.message for v in hits)
