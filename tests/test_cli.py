"""The ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4_table1" in out and "fig7_ec2" in out


def test_help_is_list(capsys):
    assert main(["--help"]) == 0
    assert "usage" in capsys.readouterr().out


def test_unknown_experiment_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_runs_one_experiment_at_test_scale(capsys):
    assert main(["fig2_measures", "test"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out


def test_bad_scale_raises():
    with pytest.raises(ValueError):
        main(["fig2_measures", "enormous"])
