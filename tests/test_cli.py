"""The ``python -m repro`` and ``python -m repro.lint`` entry points."""

import json

import pytest

from repro.__main__ import main
from repro.lint.cli import main as lint_main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4_table1" in out and "fig7_ec2" in out


def test_help_is_list(capsys):
    assert main(["--help"]) == 0
    assert "usage" in capsys.readouterr().out


def test_unknown_experiment_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_runs_one_experiment_at_test_scale(capsys):
    assert main(["fig2_measures", "test"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out


def test_bad_scale_raises():
    with pytest.raises(ValueError):
        main(["fig2_measures", "enormous"])


# -- repro.lint CLI exit-code contract ---------------------------------------
#
# 0 = no error-severity findings, 1 = error findings (or --strict on
# any finding), 2 = engine/config failure with no analysis performed.


def _write(tmp_path, name, source):
    path = tmp_path / "repro" / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


CLEAN = '__all__ = ["f"]\n\n\ndef f():\n    return 1\n'


def test_lint_exit_0_on_clean_file(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    assert lint_main([str(path)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_lint_exit_0_on_warnings_only(tmp_path, capsys):
    path = _write(tmp_path, "w.py", "import numpy as np\n")
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint.all-exports]\nseverity = \"warning\"\n"
    )
    args = [str(path), "--config", str(tmp_path)]
    assert lint_main(args) == 0
    out = capsys.readouterr().out
    assert "warning[all-exports]" in out
    # --strict promotes the same warning to a failure.
    assert lint_main(args + ["--strict"]) == 1
    capsys.readouterr()


def test_lint_exit_1_on_error_finding(tmp_path, capsys):
    path = _write(
        tmp_path,
        "bad.py",
        '__all__ = ["f"]\n'
        "import numpy as np\n\n\n"
        "def f():\n"
        "    return np.random.normal(size=3)\n",
    )
    assert lint_main([str(path)]) == 1
    assert "no-global-rng" in capsys.readouterr().out


def test_lint_exit_1_on_syntax_error(tmp_path, capsys):
    path = _write(tmp_path, "broken.py", "def oops(:\n")
    assert lint_main([str(path)]) == 1
    capsys.readouterr()


def test_lint_exit_2_on_missing_path(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope.txt")]) == 2
    assert "error:" in capsys.readouterr().err


def test_lint_exit_2_on_bad_config(tmp_path, capsys):
    _write(tmp_path, "ok.py", CLEAN)
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint.all-exports]\nseverity = \"fatal\"\n"
    )
    code = lint_main(
        [str(tmp_path / "repro"), "--config", str(tmp_path)]
    )
    assert code == 2
    assert "config error" in capsys.readouterr().err


def test_lint_exit_2_on_bad_baseline(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"schema": "something-else"}')
    assert lint_main([str(path), "--baseline", str(baseline)]) == 2
    assert "config error" in capsys.readouterr().err


def test_lint_baseline_round_trip(tmp_path, capsys):
    path = _write(
        tmp_path,
        "bad.py",
        '__all__ = ["f"]\n'
        "import numpy as np\n\n\n"
        "def f():\n"
        "    return np.random.normal(size=3)\n",
    )
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(path), "--write-baseline", str(baseline)]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["schema"] == "repro-lint-baseline/v1"
    assert payload["findings"]
    capsys.readouterr()
    # Grandfathered finding no longer fails the run...
    assert lint_main([str(path), "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # ...but without the baseline it still does.
    assert lint_main([str(path)]) == 1
    capsys.readouterr()


def test_lint_sarif_output(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    assert lint_main([str(path), "--format", "sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_lint_project_json_reports_analysis_stats(tmp_path, capsys):
    path = _write(tmp_path, "ok.py", CLEAN)
    code = lint_main(
        [str(path), "--project", "--jobs", "2", "--format", "json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["analysis"]["files"] == 1
    assert payload["analysis"]["jobs"] == 2


def test_lint_list_rules_includes_project_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "rng-taint",
        "shared-state-race",
        "ckpt-state-coverage",
        "trace-discipline",
    ):
        assert rule in out
