"""The client-execution engine: backend equivalence, crash handling,
workspace specs and the round-level hot-path fast paths."""

import numpy as np
import pytest

from repro.core.policy import CMFLPolicy, PolicyContext
from repro.core.relevance import relevance, sign_agreement_counts
from repro.core.thresholds import ConstantThreshold, InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.client import FLClient
from repro.fl.config import EXECUTOR_BACKENDS, FLConfig
from repro.fl.executor import (
    BatchedExecutor,
    ClientExecutionError,
    ProcessExecutor,
    RoundPlan,
    SerialExecutor,
    ThreadExecutor,
    WorkspaceSpec,
    make_executor,
    resolve_worker_count,
)
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import SGD, Momentum
from repro.nn.schedules import ConstantLR
from repro.nn.serialization import flatten_gradients, flatten_parameters
from repro.utils.rng import child_rngs


class _ExplodingClient(FLClient):
    """Raises inside local training (module-level: picklable for workers)."""

    def compute_update(self, *args, **kwargs):
        raise RuntimeError("local optimiser exploded")


class _ExplodingOrderClient(FLClient):
    """Raises inside the batched cohort kernel (epoch permutation)."""

    def epoch_order(self):
        raise RuntimeError("shuffle exploded")


def _make_workspace(rng):
    model = make_logistic_regression(5, rng=rng)
    return ModelWorkspace(
        model,
        SigmoidBinaryCrossEntropy(),
        SGD(model.parameters(), 0.5),
        metric=binary_accuracy,
    )


def _federation(policy, backend="serial", n_clients=4, rounds=5, seed=0,
                client_cls=FLClient, **cfg_kw):
    rngs = child_rngs(seed, n_clients + 3)
    w_true = rngs[0].normal(size=5)
    x = rngs[1].normal(size=(80, 5))
    y = (x @ w_true > 0).astype(np.int64)
    data = Dataset(x, y)
    workspace = _make_workspace(rngs[2])
    parts = iid_partition(len(data), n_clients, rng=seed)
    clients = [client_cls(i, data.subset(p), rng=rngs[3 + i])
               for i, p in enumerate(parts)]
    config = FLConfig(rounds=rounds, local_epochs=1, batch_size=10,
                      lr=ConstantLR(0.5), eval_every=1,
                      executor=backend, executor_workers=2, **cfg_kw)
    return FederatedTrainer(
        workspace, clients, policy, config,
        eval_fn=lambda w: w.evaluate(data.x, data.y),
    ), data


def _run_fingerprint(backend):
    with _federation(CMFLPolicy(InverseSqrtThreshold(0.8)),
                     backend=backend)[0] as trainer:
        history = trainer.run()
        return (
            [r.mean_train_loss for r in history],
            [r.mean_score for r in history],
            [r.uploaded_ids for r in history],
            [r.test_loss for r in history],
            trainer.server.global_params.tobytes(),
        )


class TestBackendEquivalence:
    """The engine contract: backends differ only in wall-clock time."""

    def test_all_backends_bitwise_identical(self):
        serial = _run_fingerprint("serial")
        for backend in EXECUTOR_BACKENDS:
            if backend == "serial":
                continue
            losses, scores, uploaded, evals, params = _run_fingerprint(backend)
            assert losses == serial[0], backend
            assert scores == serial[1], backend
            assert uploaded == serial[2], backend
            assert evals == serial[3], backend
            assert params == serial[4], backend

    def test_rng_streams_survive_process_round_trip(self):
        """Parent clients stay the source of randomness truth: a process
        round followed by a serial round matches an all-serial run."""
        mixed, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                               backend="process", rounds=2)
        mixed.run(1)
        mixed.executor.close()
        mixed.executor = SerialExecutor()
        mixed.executor.bind(mixed.workspace, mixed.clients)
        mixed.run(1)

        pure, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                              backend="serial", rounds=2)
        pure.run(2)
        assert (mixed.server.global_params.tobytes()
                == pure.server.global_params.tobytes())


def _hetero_round(backend, client_cls=FLClient, optimizer_cls=SGD):
    """One round over shards of mixed sizes: two 2-client cohorts plus
    a singleton straggler on the batched backend."""
    rngs = child_rngs(11, 8)
    model = make_logistic_regression(5, rng=rngs[0])
    workspace = ModelWorkspace(
        model,
        SigmoidBinaryCrossEntropy(),
        optimizer_cls(model.parameters(), 0.3),
        metric=binary_accuracy,
    )
    clients = []
    for i, n in enumerate([20, 20, 13, 13, 7]):
        x = rngs[1 + i].normal(size=(n, 5))
        y = (x @ np.ones(5) > 0).astype(np.int64)
        cls = client_cls if i == 0 else FLClient
        clients.append(cls(i, Dataset(x, y), rng=np.random.default_rng(90 + i)))
    executor = make_executor(backend)
    executor.bind(workspace, clients)
    plan = RoundPlan(iteration=1, lr=0.3, local_epochs=2, batch_size=8,
                     global_params=workspace.get_flat())
    try:
        updates = executor.run_round(plan, clients)
    finally:
        executor.close()
    return executor, updates


class TestBatchedBackend:
    """Batched-specific contracts: cohort formation, RNG stream
    semantics, fallback paths and failure attribution."""

    def test_mixed_batched_then_serial_matches_pure_serial(self):
        """epoch_order leaves client streams exactly where serial
        epochs would: a batched round then a serial round matches an
        all-serial run bit for bit."""
        mixed, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                               backend="batched", rounds=2)
        mixed.run(1)
        mixed.executor.close()
        mixed.executor = SerialExecutor()
        mixed.executor.bind(mixed.workspace, mixed.clients)
        mixed.run(1)

        pure, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                              backend="serial", rounds=2)
        pure.run(2)
        assert (mixed.server.global_params.tobytes()
                == pure.server.global_params.tobytes())

    def test_heterogeneous_shards_split_into_cohorts(self):
        """Mixed shard sizes still match serial bitwise; only
        multi-client cohorts get a stacked engine."""
        _, serial = _hetero_round("serial")
        executor, batched = _hetero_round("batched")
        for a, b in zip(serial, batched):
            assert a.client_id == b.client_id
            assert a.train_loss == b.train_loss
            np.testing.assert_array_equal(a.update, b.update, strict=True)
        # Two 2-client cohorts share one engine; the singleton has none.
        assert set(executor._engines) == {2}

    def test_stateful_optimizer_falls_back_per_client(self):
        """No batched path for Momentum: every client runs the serial
        reference, results still bitwise-identical."""
        _, serial = _hetero_round("serial", optimizer_cls=Momentum)
        executor, batched = _hetero_round("batched", optimizer_cls=Momentum)
        for a, b in zip(serial, batched):
            assert a.train_loss == b.train_loss
            np.testing.assert_array_equal(a.update, b.update, strict=True)
        assert executor._engines == {}
        assert "Momentum" in executor._unsupported

    def test_cohort_failure_names_client(self):
        with pytest.raises(ClientExecutionError, match="client 0") as exc:
            _hetero_round("batched", client_cls=_ExplodingOrderClient)
        assert exc.value.backend == "batched"
        assert "shuffle exploded" in str(exc.value)

    def test_fallback_failure_names_client(self):
        trainer, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                                 backend="batched")
        with trainer:
            # Shrinking client 2's shard makes it a singleton cohort,
            # which runs through compute_update and explodes there.
            shrunk = trainer.clients[2].train_data.subset(range(7))
            trainer.clients[2] = _ExplodingClient(2, shrunk)
            with pytest.raises(ClientExecutionError, match="client 2"):
                trainer.run(1)

    def test_rebind_drops_stale_engines(self):
        executor, _ = _hetero_round("batched")
        assert executor._engines
        workspace = _make_workspace(np.random.default_rng(0))
        executor.bind(workspace, [])
        assert executor._engines == {}


class TestCrashHandling:
    def test_thread_backend_names_failing_client(self):
        trainer, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                                 backend="thread")
        with trainer:
            trainer.clients[2] = _ExplodingClient(
                2, trainer.clients[2].train_data
            )
            with pytest.raises(ClientExecutionError, match="client 2"):
                trainer.run(1)

    def test_process_backend_names_failing_client(self):
        """A worker-side exception surfaces the client id, no hang."""
        trainer, data = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                                    backend="process", n_clients=3)
        parts = iid_partition(len(data), 3, rng=0)
        clients = [
            FLClient(0, data.subset(parts[0])),
            _ExplodingClient(1, data.subset(parts[1])),
            FLClient(2, data.subset(parts[2])),
        ]
        trainer.clients = clients
        trainer.executor.bind(trainer.workspace, clients)
        with trainer:
            with pytest.raises(ClientExecutionError, match="client 1") as exc:
                trainer.run(1)
            assert exc.value.client_id == 1
            assert "RuntimeError" in str(exc.value)

    def test_process_backend_rejects_swapped_client_objects(self):
        """Workers snapshot client objects at pool start; a swapped-in
        object (same id, different behaviour) must not run silently."""
        trainer, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                                 backend="process")
        with trainer:
            trainer.run(1)
            trainer.clients[2] = _ExplodingClient(
                2, trainer.clients[2].train_data
            )
            with pytest.raises(ClientExecutionError, match="re-bind"):
                trainer.run(1)

    def test_rebind_picks_up_changed_federation(self):
        trainer, _ = _federation(CMFLPolicy(ConstantThreshold(0.0)),
                                 backend="process")
        with trainer:
            trainer.run(1)
            trainer.clients[2] = FLClient(
                2, trainer.clients[2].train_data, rng=123
            )
            trainer.executor.bind(trainer.workspace, trainer.clients)
            trainer.run(1)
            assert len(trainer.history) == 2


class TestWorkspaceSpec:
    def test_from_workspace_builds_equal_replicas(self):
        workspace = _make_workspace(np.random.default_rng(0))
        spec = WorkspaceSpec.from_workspace(workspace)
        replica = spec.build()
        assert replica is not workspace
        np.testing.assert_array_equal(replica.get_flat(), workspace.get_flat())
        # The snapshot is eager: later mutation of the original does not
        # leak into new replicas.
        workspace.load_flat(np.zeros(workspace.n_params, dtype=float))
        replica2 = spec.build()
        assert np.any(replica2.get_flat() != 0.0)

    def test_builder_type_checked(self):
        spec = WorkspaceSpec(builder=dict)
        with pytest.raises(TypeError, match="expected ModelWorkspace"):
            spec.build()


class TestFactoryAndConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("gpu")

    def test_instances_pass_through(self):
        ex = ThreadExecutor(2)
        assert make_executor(ex) is ex

    def test_make_executor_maps_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        assert isinstance(make_executor("batched"), BatchedExecutor)

    def test_resolve_worker_count(self):
        assert resolve_worker_count(3) == 3
        assert resolve_worker_count(0) >= 1
        with pytest.raises(ValueError):
            resolve_worker_count(-1)

    def test_config_validates_executor_fields(self):
        with pytest.raises(ValueError, match="executor"):
            FLConfig(executor="bogus")
        with pytest.raises(ValueError, match="executor_workers"):
            FLConfig(executor_workers=-1)


class TestHotPathFastPaths:
    """The per-round caches and preallocated-buffer paths are exact."""

    def test_policy_context_caches_feedback_sign(self):
        fb = np.array([1.0, -2.0, 0.0, 3.0])
        ctx = PolicyContext(iteration=1, global_params=np.zeros(4),
                            global_update_estimate=fb)
        sign = ctx.feedback_sign
        np.testing.assert_array_equal(sign, np.sign(fb))
        # Per-client views share the round's cache: same array object.
        assert ctx.for_client(7).feedback_sign is sign

    def test_sign_agreement_precomputed_matches(self):
        rng = np.random.default_rng(5)
        u = rng.normal(size=50)
        u_bar = rng.normal(size=50)
        u_bar[::7] = 0.0
        sign = np.sign(u_bar)
        assert (sign_agreement_counts(u, u_bar)
                == sign_agreement_counts(u, u_bar, u_bar_sign=sign))
        assert relevance(u, u_bar) == relevance(u, u_bar, u_bar_sign=sign)

    def test_flatten_out_buffer(self):
        workspace = _make_workspace(np.random.default_rng(1))
        n = workspace.n_params
        buf = np.empty(n, dtype=float)
        out = flatten_parameters(workspace.model, out=buf)
        assert out is buf
        np.testing.assert_array_equal(buf, flatten_parameters(workspace.model))
        grad_buf = np.empty(n, dtype=float)
        assert flatten_gradients(workspace.model, out=grad_buf) is grad_buf
        np.testing.assert_array_equal(
            grad_buf, flatten_gradients(workspace.model)
        )

    def test_flatten_out_buffer_validated(self):
        workspace = _make_workspace(np.random.default_rng(1))
        with pytest.raises(ValueError, match="float64 vector"):
            flatten_parameters(
                workspace.model,
                out=np.empty(workspace.n_params + 1, dtype=float),
            )
        with pytest.raises(ValueError, match="float64 vector"):
            flatten_parameters(
                workspace.model,
                out=np.empty(workspace.n_params, dtype=np.float32),
            )
