"""The straggler/staleness sweep experiment and its diurnal sampler,
end to end through `python -m repro.obs export`."""

import json

import numpy as np
import pytest

from repro.fl.sampling import AvailabilitySampler, diurnal_trace
from repro.obs.__main__ import main as obs_main


def test_diurnal_trace_shape():
    trace = diurnal_trace(period=24, low=0.2, high=0.9)
    assert len(trace) == 24
    assert min(trace) == pytest.approx(0.2)
    assert max(trace) == pytest.approx(0.9)
    # One full cycle: down from the trough back up to the peak and
    # around again — strictly within (0, 1], usable as-is by the sampler.
    assert all(0.0 < f <= 1.0 for f in trace)
    assert trace == diurnal_trace(period=24, low=0.2, high=0.9)


def test_diurnal_trace_validation():
    with pytest.raises(ValueError):
        diurnal_trace(period=0)
    with pytest.raises(ValueError):
        diurnal_trace(low=0.0)
    with pytest.raises(ValueError):
        diurnal_trace(low=0.8, high=0.4)


def test_diurnal_trace_drives_availability_windows():
    sampler = AvailabilitySampler(
        count=4, trace=diurnal_trace(period=6, low=0.25, high=1.0),
        rng=np.random.default_rng(0),
    )
    windows = [sampler.available(t, 100) for t in range(1, 7)]
    assert min(windows) == 25
    assert max(windows) == 100
    for t in range(1, 7):
        cohort = sampler.select_indices(t, 100)
        assert len(cohort) == 4


class TestStragglerSweep:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        from repro.experiments.straggler import run

        trace = tmp_path_factory.mktemp("straggler") / "s2.jsonl"
        res = run(bounds=(0, 2), rounds=4, trace_path=str(trace))
        return res, trace

    def test_sweep_shape(self, result):
        res, _ = result
        bounds = [p.staleness_bound for p in res.points]
        assert bounds == [0, 2]
        for point in res.points:
            assert point.rounds == 4
            assert point.staleness_max <= point.staleness_bound
            assert point.virtual_finish_s > 0.0
        # The synchronous barrier serializes the timeline: relaxing it
        # must never make the virtual finish later.
        assert (
            res.points[1].virtual_finish_s <= res.points[0].virtual_finish_s
        )

    def test_report_and_json(self, result):
        res, _ = result
        report = res.report()
        assert "Straggler sweep" in report
        assert "faster than the synchronous barrier" in report
        payload = json.loads(json.dumps(res.to_dict()))
        assert [p["staleness_bound"] for p in payload["points"]] == [0, 2]

    def test_async_metrics_export(self, result, tmp_path, capsys):
        """The traced S=2 run's async.* instruments survive the full
        pipeline: trace file -> `python -m repro.obs export`."""
        _, trace = result
        assert obs_main(["export", str(trace)]) == 0
        text = capsys.readouterr().out
        assert "# TYPE async_dispatches counter" in text
        assert "async_closes_total 4" in text
        assert "async_staleness" in text
        out = tmp_path / "snap.jsonl"
        assert obs_main(
            ["export", str(trace), "--format", "jsonl", "--out", str(out)]
        ) == 0
        names = {
            json.loads(line)["name"]
            for line in out.read_text().splitlines()
            if json.loads(line).get("name")
        }
        assert {"async.dispatches", "async.closes", "async.staleness"} <= names
