"""The repro.obs observability layer: span nesting, sinks, metrics,
and the cross-backend trace-determinism contract."""

import json

import pytest

from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.fl.config import EXECUTOR_BACKENDS, FLConfig
from repro.fl.executor import ClientExecutionError
from repro.fl.history import HISTORY_SCHEMA, RoundRecord, RunHistory
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NULL_TRACER,
    NullMetricsRegistry,
    NullTracer,
    SummarySink,
    TRACE_SCHEMA,
    Tracer,
    comm_totals,
    deterministic_view,
    diff_traces,
    load_trace,
    phase_summary,
    trace_digest,
    validate_trace,
)
from tests.test_executor import _ExplodingClient, _federation


def _memory_tracer():
    sink = MemorySink()
    return Tracer(sinks=[sink]), sink


class TestSpans:
    def test_header_is_first_and_schema_tagged(self):
        tracer, sink = _memory_tracer()
        tracer.close()
        head = sink.events[0]
        assert head["kind"] == "header"
        assert head["attrs"]["schema"] == TRACE_SCHEMA

    def test_nesting_children_emit_before_parents(self):
        tracer, sink = _memory_tracer()
        with tracer.span("outer", label="a"):
            with tracer.span("inner"):
                pass
        tracer.close()
        spans = [e for e in sink.events if e["kind"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"label": "a"}

    def test_seq_strictly_increasing_and_durations_nonnegative(self):
        tracer, sink = _memory_tracer()
        with tracer.span("a"):
            tracer.event("tick")
        with tracer.span("b"):
            pass
        tracer.close()
        seqs = [e["seq"] for e in sink.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert all(
            e["rt"]["dur"] >= 0 for e in sink.events if e["kind"] == "span"
        )
        assert validate_trace(sink.events) == []

    def test_record_span_parents_to_open_span(self):
        tracer, sink = _memory_tracer()
        with tracer.span("round"):
            tracer.record_span(
                "client_compute", attrs={"client_id": 3}, rt={"dur": 0.25}
            )
        tracer.close()
        recorded = next(
            e for e in sink.events if e["name"] == "client_compute"
        )
        owner = next(e for e in sink.events if e["name"] == "round")
        assert recorded["parent"] == owner["id"]
        assert recorded["rt"]["dur"] == 0.25

    def test_exception_inside_span_sets_error_attr(self):
        tracer, sink = _memory_tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert sink.events[-1]["attrs"]["error"] == "ValueError"

    def test_close_is_idempotent_and_snapshots_metrics(self):
        tracer, sink = _memory_tracer()
        tracer.metrics.counter("comm.uploads").inc(4)
        tracer.metrics.counter("runtime.executor.pool_starts").inc()
        tracer.close()
        tracer.close()
        snapshots = [
            e for e in sink.events if e["name"] == "metrics_snapshot"
        ]
        assert len(snapshots) == 1
        assert snapshots[0]["attrs"]["metrics"]["comm.uploads"]["value"] == 4
        assert "runtime.executor.pool_starts" in snapshots[0]["rt"]["metrics"]


class TestSinks:
    def test_jsonl_roundtrip_preserves_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path), MemorySink()])
        with tracer.span("round", iteration=1):
            tracer.event("tick", attrs={"n": 2})
        tracer.metrics.counter("comm.uploads").inc(3)
        tracer.close()
        assert load_trace(path) == tracer.memory_events()

    def test_jsonl_sink_is_lazy(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_load_trace_names_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            load_trace(path)

    def test_summary_sink_renders_phase_table(self):
        import io

        out = io.StringIO()
        tracer = Tracer(sinks=[SummarySink(stream=out)])
        with tracer.span("round", iteration=1):
            pass
        tracer.metrics.counter("comm.uploads").inc(5)
        tracer.close()
        text = out.getvalue()
        assert "round" in text
        assert "comm.uploads" in text


class TestMetrics:
    def test_counter_gauge_histogram_math(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        hist = registry.histogram("h")
        for v in (1.0, 3.0, 8.0):
            hist.observe(v)
        snap = registry.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["g"]["value"] == 2.5
        assert snap["h"]["count"] == 3
        assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 8.0
        assert hist.mean == pytest.approx(4.0)

    def test_counter_rejects_negative_and_type_conflicts(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)
        registry.counter("dual")
        with pytest.raises(TypeError):
            registry.gauge("dual")

    def test_runtime_namespace_split(self):
        registry = MetricsRegistry()
        registry.counter("comm.uploads").inc()
        registry.counter("runtime.executor.pool_starts").inc()
        assert set(registry.snapshot(runtime=False)) == {"comm.uploads"}
        assert set(registry.snapshot(runtime=True)) == {
            "runtime.executor.pool_starts"
        }

    def test_null_registry_is_inert(self):
        registry = NullMetricsRegistry()
        registry.counter("x").inc(10)
        registry.histogram("y").observe(1.0)
        assert registry.snapshot() == {}
        assert len(registry) == 0


class TestNullTracer:
    def test_null_tracer_is_shared_and_inert(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", key=1) as span:
            span.set_attr("a", 1)
            span.set_rt("b", 2)
        NULL_TRACER.record_span("x")
        NULL_TRACER.event("y")
        NULL_TRACER.metrics.counter("z").inc()
        assert NULL_TRACER.memory_events() is None

    def test_trainer_defaults_to_null_tracer(self):
        trainer, _ = _federation(CMFLPolicy(InverseSqrtThreshold(0.8)))
        assert trainer.tracer is NULL_TRACER

    def test_config_knobs(self):
        assert not FLConfig().trace_enabled
        assert FLConfig(trace=True).trace_enabled
        assert FLConfig(trace_path="/tmp/t.jsonl").trace_enabled
        with pytest.raises(ValueError, match="trace_path"):
            FLConfig(trace_path="")


def _traced_events(backend, **cfg_kw):
    trainer, _ = _federation(
        CMFLPolicy(InverseSqrtThreshold(0.8)), backend=backend,
        rounds=3, trace=True, **cfg_kw,
    )
    with trainer:
        trainer.run()
    trainer.tracer.close()
    return trainer, list(trainer.tracer.memory_events())


class TestDeterminismContract:
    def test_backends_produce_identical_deterministic_views(self):
        views, digests = {}, {}
        for backend in EXECUTOR_BACKENDS:
            trainer, events = _traced_events(backend)
            assert validate_trace(events) == []
            views[backend] = deterministic_view(events)
            digests[backend] = trace_digest(events)
        for backend in EXECUTOR_BACKENDS:
            assert views[backend] == views["serial"], backend
        assert len(set(digests.values())) == 1
        assert diff_traces(
            views["serial"], views["thread"]
        ) == []

    def test_deterministic_view_masks_rt_and_runtime_metrics(self):
        _, events = _traced_events("thread")
        view = deterministic_view(events)
        assert all("rt" not in e and "seq" not in e for e in view)
        assert all(
            not e["name"].startswith("runtime.") for e in view
        )
        # The raw trace does carry runtime metrics (queue waits).
        assert any(
            e["name"].startswith("runtime.") for e in events
        )

    def test_trace_reproduces_history_and_ledger(self):
        trainer, events = _traced_events("serial")
        totals = comm_totals(events)
        assert totals["comm.uploads"] == trainer.ledger.accumulated_rounds
        assert (
            totals["comm.uploaded_bytes"] + totals["comm.status_bytes"]
            == trainer.ledger.total_bytes
        )
        checks = [
            e for e in events if e["kind"] == "span"
            and e["name"] == "relevance_check"
        ]
        uploaded = {}
        for check in checks:
            uploads = uploaded.setdefault(check["attrs"]["iteration"], [])
            if check["attrs"]["upload"]:
                uploads.append(check["attrs"]["client_id"])
        for record in trainer.history:
            forced = set(record.uploaded_ids) - set(uploaded[record.iteration])
            # force_best rescues appear as explicit force_best events.
            for client_id in forced:
                assert any(
                    e["name"] == "force_best"
                    and e["attrs"]["client_id"] == client_id
                    and e["attrs"]["iteration"] == record.iteration
                    for e in events
                )
            assert len(record.uploaded_ids) == record.n_uploaded

    def test_phase_summary_counts_every_round(self):
        trainer, events = _traced_events("serial")
        phases = phase_summary(events)
        n_rounds = len(trainer.history)
        n_clients = len(trainer.clients)
        assert phases["round"]["count"] == n_rounds
        assert phases["client_compute"]["count"] == n_rounds * n_clients
        assert phases["relevance_check"]["count"] == n_rounds * n_clients
        assert phases["run"]["count"] == 1


class TestSampledTracing:
    """Head sampling must thin spans without touching determinism."""

    def test_sampling_drops_spans_but_keeps_exact_rollups(self):
        trainer, full = _traced_events("serial")
        sampled_trainer, sampled = _traced_events("serial", trace_sample=0.25)
        n_rounds = len(trainer.history)
        n_clients = len(trainer.clients)

        def compute_spans(events):
            return [
                e for e in events
                if e["kind"] == "span" and e["name"] == "client_compute"
            ]

        assert len(compute_spans(full)) == n_rounds * n_clients
        assert len(compute_spans(sampled)) < n_rounds * n_clients
        rollups = [e for e in sampled if e["name"] == "round_rollup"]
        assert len(rollups) == n_rounds
        # The rollup is exact over ALL participants, sampled or not.
        for event in rollups:
            assert event["attrs"]["n_participants"] == n_clients
            assert event["attrs"]["score"]["count"] == n_clients
            assert event["rt"]["compute_s"]["count"] == n_clients
        # Rollups are identical whether spans were sampled or not.
        full_rollups = [e for e in full if e["name"] == "round_rollup"]
        assert [e["attrs"] for e in rollups] == [
            e["attrs"] for e in full_rollups
        ]

    def test_sampled_digests_identical_across_backends(self):
        digests = set()
        for backend in EXECUTOR_BACKENDS:
            trainer, events = _traced_events(backend, trace_sample=0.5)
            assert validate_trace(events) == []
            digests.add(trace_digest(events))
        assert len(digests) == 1

    def test_store_backed_sampled_digests_match(self):
        from repro.experiments.scale import make_scale_trainer

        digests = set()
        for backend in ("serial", "thread", "batched"):
            trainer = make_scale_trainer(
                500, 20, backend=backend, trace=True, trace_sample=0.5
            )
            with trainer:
                trainer.run(2)
            trainer.tracer.close()
            events = trainer.tracer.memory_events()
            assert validate_trace(events) == []
            digests.add(trace_digest(events))
        assert len(digests) == 1

    def test_tracing_never_changes_the_run(self):
        from repro.experiments.scale import make_scale_trainer
        from repro.experiments.timing import history_digest

        digests = set()
        for trace, sample in ((False, 1.0), (True, 0.01), (True, 1.0)):
            trainer = make_scale_trainer(
                500, 20, trace=trace, trace_sample=sample
            )
            with trainer:
                trainer.run(2)
            digests.add(history_digest(trainer))
        assert len(digests) == 1

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError, match="trace_sample"):
            FLConfig(trace_sample=1.5)
        with pytest.raises(ValueError, match="trace_sample"):
            FLConfig(trace_sample=-0.1)


class TestClientExecutionError:
    def test_structured_context_attributes(self):
        trainer, _ = _federation(
            CMFLPolicy(InverseSqrtThreshold(0.8)), backend="thread",
            client_cls=_ExplodingClient, trace=True,
        )
        with trainer:
            with pytest.raises(ClientExecutionError) as exc:
                trainer.run(1)
        error = exc.value
        assert error.client_id == 0
        assert error.iteration == 1
        assert error.backend == "thread"
        assert error.cause_type == "RuntimeError"
        assert error.elapsed_s is not None and error.elapsed_s >= 0
        assert error.context()["client_id"] == 0

    def test_failure_emits_client_error_trace_event(self):
        trainer, _ = _federation(
            CMFLPolicy(InverseSqrtThreshold(0.8)), backend="serial",
            client_cls=_ExplodingClient, trace=True,
        )
        with trainer:
            with pytest.raises(ClientExecutionError):
                trainer.run(1)
        events = trainer.tracer.memory_events()
        failures = [e for e in events if e["name"] == "client_error"]
        assert len(failures) == 1
        assert failures[0]["attrs"] == {
            "client_id": 0, "iteration": 1, "error": "RuntimeError",
        }
        assert failures[0]["rt"]["backend"] == "serial"


class TestRunHistoryJsonl:
    def _history(self):
        history = RunHistory(policy_name="cmfl")
        history.append(RoundRecord(
            iteration=1, n_clients=4, n_uploaded=3, accumulated_rounds=3,
            total_bytes=1200, lr=0.5, mean_train_loss=0.7, mean_score=0.9,
            threshold=0.8, uploaded_ids=[0, 1, 3],
        ))
        history.append(RoundRecord(
            iteration=2, n_clients=4, n_uploaded=2, accumulated_rounds=5,
            total_bytes=2100, lr=0.45, mean_train_loss=0.6, mean_score=0.85,
            threshold=0.75, test_loss=0.55, test_metric=0.8,
            uploaded_ids=[1, 2],
        ))
        return history

    def test_text_roundtrip_is_exact(self):
        history = self._history()
        text = history.to_jsonl()
        rebuilt = RunHistory.from_jsonl(text)
        assert rebuilt.policy_name == history.policy_name
        assert [vars(r) for r in rebuilt] == [vars(r) for r in history]

    def test_file_roundtrip_and_schema_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        history = self._history()
        history.to_jsonl(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == HISTORY_SCHEMA
        rebuilt = RunHistory.from_jsonl(path)
        assert [vars(r) for r in rebuilt] == [vars(r) for r in history]

    def test_from_jsonl_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            RunHistory.from_jsonl('{"schema": "bogus/v1", "policy_name": "x"}')

    def test_trained_history_roundtrips(self, tmp_path):
        trainer, _ = _federation(CMFLPolicy(InverseSqrtThreshold(0.8)))
        with trainer:
            trainer.run(2)
        path = tmp_path / "run.jsonl"
        trainer.history.to_jsonl(path)
        rebuilt = RunHistory.from_jsonl(path)
        assert [vars(r) for r in rebuilt] == [vars(r) for r in trainer.history]
