"""Losses, optimizers, schedules, metrics and serialization."""

import numpy as np
import pytest

from repro.nn.losses import (
    MeanSquaredError,
    SigmoidBinaryCrossEntropy,
    SoftmaxCrossEntropy,
)
from repro.nn.layers.dense import Dense
from repro.nn.metrics import accuracy, binary_accuracy, perplexity
from repro.nn.module import Sequential
from repro.nn.optimizers import SGD, Adam, Momentum
from repro.nn.parameter import Parameter
from repro.nn.schedules import ConstantLR, InverseSqrtLR, StepLR
from repro.nn.serialization import (
    STATUS_MESSAGE_BYTES,
    assign_flat_parameters,
    flatten_gradients,
    flatten_parameters,
    parameter_count,
    update_nbytes,
)


class TestLosses:
    def test_softmax_ce_uniform_logits(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert value == pytest.approx(np.log(10))

    def test_softmax_ce_perfect_prediction_near_zero(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((2, 3), -50.0)
        logits[:, 1] = 50.0
        assert loss.forward(logits, np.array([1, 1])) < 1e-6

    def test_softmax_ce_rejects_float_targets(self):
        with pytest.raises(TypeError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.zeros(2))

    def test_softmax_ce_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_bce_matches_manual(self):
        loss = SigmoidBinaryCrossEntropy()
        logits = np.array([0.0, 2.0])
        y = np.array([1.0, 0.0])
        expected = np.mean(
            [-np.log(0.5), -np.log(1 - 1 / (1 + np.exp(-2.0)))]
        )
        assert loss.forward(logits, y) == pytest.approx(expected)

    def test_bce_extreme_logits_finite(self):
        loss = SigmoidBinaryCrossEntropy()
        value = loss.forward(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(value) and value < 1e-6

    def test_mse_value_and_grad(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert loss.forward(pred, target) == pytest.approx(2.5)
        np.testing.assert_allclose(loss.backward(), [[1.0, 2.0]])

    def test_backward_before_forward_raises(self):
        for loss in (SoftmaxCrossEntropy(), SigmoidBinaryCrossEntropy(),
                     MeanSquaredError()):
            with pytest.raises(RuntimeError):
                loss.backward()


class TestOptimizers:
    def _param(self, value=1.0, grad=0.5):
        p = Parameter(np.array([value]))
        p.grad[...] = grad
        return p

    def test_sgd_step(self):
        p = self._param()
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(1.0 - 0.05)

    def test_sgd_lr_override(self):
        p = self._param()
        SGD([p], lr=0.1).step(lr=1.0)
        assert p.data[0] == pytest.approx(0.5)

    def test_sgd_weight_decay(self):
        p = self._param(value=2.0, grad=0.0)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_momentum_accelerates(self):
        p1, p2 = self._param(), self._param()
        plain = SGD([p1], lr=0.1)
        heavy = Momentum([p2], lr=0.1, momentum=0.9)
        for _ in range(3):
            plain.step()
            heavy.step()
        # with a constant gradient, momentum moves strictly further
        assert p2.data[0] < p1.data[0]

    def test_adam_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            p.zero_grad()
            p.grad[...] = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_zero_grad(self):
        p = self._param()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad[0] == 0.0

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([self._param()], lr=0.0)


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.3)(10) == 0.3

    def test_inverse_sqrt(self):
        sched = InverseSqrtLR(1.0)
        assert sched(1) == 1.0
        assert sched(4) == pytest.approx(0.5)

    def test_step_lr(self):
        sched = StepLR(1.0, step_size=2, gamma=0.5)
        assert sched(1) == 1.0
        assert sched(2) == 1.0
        assert sched(3) == 0.5
        assert sched(5) == 0.25

    def test_one_based_indexing_enforced(self):
        with pytest.raises(ValueError):
            ConstantLR(0.1)(0)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 0.0], [0.0, 3.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_binary_accuracy(self):
        logits = np.array([1.0, -2.0, 0.5])
        assert binary_accuracy(logits, np.array([1, 0, 0])) == pytest.approx(2 / 3)

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_perplexity(self):
        assert perplexity(np.log(50.0)) == pytest.approx(50.0)


class TestSerialization:
    def test_round_trip(self):
        model = Sequential([Dense(3, 4, rng=0), Dense(4, 2, rng=1)])
        flat = flatten_parameters(model)
        assert flat.size == parameter_count(model) == 3 * 4 + 4 + 4 * 2 + 2
        assign_flat_parameters(model, flat * 2.0)
        np.testing.assert_allclose(flatten_parameters(model), flat * 2.0)

    def test_wrong_length_rejected(self):
        model = Sequential([Dense(3, 4, rng=0)])
        with pytest.raises(ValueError):
            assign_flat_parameters(model, np.zeros(5))

    def test_flatten_gradients(self):
        model = Sequential([Dense(2, 2, rng=0)])
        model.forward(np.ones((1, 2)))
        model.backward(np.ones((1, 2)))
        grads = flatten_gradients(model)
        assert grads.shape == (6,)
        assert np.any(grads != 0)

    def test_update_nbytes(self):
        assert update_nbytes(100) == 400
        assert STATUS_MESSAGE_BYTES < update_nbytes(100)
        with pytest.raises(ValueError):
            update_nbytes(-1)
