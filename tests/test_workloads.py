"""The shared experiment workload builders."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaPolicy
from repro.experiments.workloads import (
    SCALES,
    DigitsWorkload,
    NWPWorkload,
    resolve_scale,
)
from repro.nn.serialization import flatten_parameters


class TestScaleResolution:
    def test_known_scales(self):
        assert set(SCALES) == {"test", "bench", "paper"}

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            resolve_scale("gigantic")


class TestDigitsWorkload:
    def test_partition_covers_everything(self):
        workload = DigitsWorkload(scale="test")
        allidx = np.concatenate(workload.partition)
        assert sorted(allidx.tolist()) == list(range(len(workload.train)))

    def test_trainers_share_data_and_init(self):
        """Different policies must start from identical conditions."""
        workload = DigitsWorkload(scale="test")
        t1 = workload.make_trainer(VanillaPolicy())
        t2 = workload.make_trainer(VanillaPolicy())
        np.testing.assert_array_equal(
            flatten_parameters(t1.workspace.model),
            flatten_parameters(t2.workspace.model),
        )
        np.testing.assert_array_equal(
            t1.clients[0].train_data.y, t2.clients[0].train_data.y
        )

    def test_config_overrides(self):
        workload = DigitsWorkload(scale="test")
        trainer = workload.make_trainer(VanillaPolicy(), rounds=2,
                                        local_epochs=3)
        assert trainer.config.rounds == 2
        assert trainer.config.local_epochs == 3

    def test_distinct_seeds_give_distinct_data(self):
        a = DigitsWorkload(scale="test", seed=1)
        b = DigitsWorkload(scale="test", seed=2)
        assert not np.array_equal(a.train.x, b.train.x)


class TestNWPWorkload:
    def test_one_client_per_role(self):
        workload = NWPWorkload(scale="test")
        assert len(workload.train_indices_by_role) == workload.params.n_clients

    def test_vocab_consistent_with_model(self):
        workload = NWPWorkload(scale="test")
        trainer = workload.make_trainer(VanillaPolicy(), rounds=1)
        out = trainer.workspace.model.forward(workload.test.x[:2])
        assert out.shape == (2, workload.vocab_size)
