"""Streaming rollups: P² quantiles, the span sampler, and RoundRollup."""

import numpy as np
import pytest

from repro.obs import P2Quantile, RoundRollup, SpanSampler, StreamingHistogram


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        for p in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="quantile"):
                P2Quantile(p)

    def test_empty_returns_none(self):
        assert P2Quantile(0.5).value() is None

    def test_exact_for_small_samples(self):
        est = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            est.observe(v)
        assert est.value() == 3.0
        est.observe(2.0)
        est.observe(4.0)
        # Five observations: still the exact sample median.
        assert est.value() == 3.0

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_tracks_uniform_quantiles_closely(self, p):
        rng = np.random.default_rng(7)
        est = P2Quantile(p)
        values = rng.uniform(size=10_000)
        for v in values:
            est.observe(v)
        assert est.count == len(values)
        assert abs(est.value() - np.quantile(values, p)) < 0.02

    def test_state_roundtrip_is_exact(self):
        rng = np.random.default_rng(11)
        values = rng.normal(size=500)
        whole = P2Quantile(0.9)
        for v in values:
            whole.observe(v)
        # Feed half, checkpoint, restore into a fresh estimator, feed
        # the rest: must land bitwise where the uninterrupted one did.
        first = P2Quantile(0.9)
        for v in values[:250]:
            first.observe(v)
        resumed = P2Quantile(0.9)
        resumed.load_state_dict(first.state_dict())
        for v in values[250:]:
            resumed.observe(v)
        assert resumed.value() == whole.value()
        assert resumed.state_dict() == whole.state_dict()

    def test_state_rejects_other_quantile(self):
        est = P2Quantile(0.5)
        with pytest.raises(ValueError, match="p=0.5"):
            est.load_state_dict(P2Quantile(0.9).state_dict())


class TestStreamingHistogram:
    def test_moments_are_exact(self):
        hist = StreamingHistogram()
        for v in (2.0, -1.0, 4.0, 3.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 8.0
        assert hist.min == -1.0 and hist.max == 4.0
        assert hist.mean == 2.0

    def test_summary_shape_and_empty(self):
        empty = StreamingHistogram().summary()
        assert empty == {
            "count": 0, "total": 0.0, "min": None, "max": None,
            "mean": None, "p50": None, "p90": None, "p99": None,
        }
        hist = StreamingHistogram()
        for v in range(100):
            hist.observe(float(v))
        summary = hist.summary()
        assert set(summary) == set(empty)
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_exact_while_buffered(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=200)
        hist = StreamingHistogram()
        for v in values:
            hist.observe(v)
        # Below the spill bound quantiles are exact (linear-interp).
        assert hist.quantile(0.5) == pytest.approx(
            np.quantile(values, 0.5), abs=1e-12
        )

    def test_spill_state_matches_always_streaming(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(size=StreamingHistogram.SPILL_AT + 100)
        hist = StreamingHistogram()
        streamed = P2Quantile(0.9)
        for v in values:
            hist.observe(v)
            streamed.observe(v)
        # The buffer spilled in arrival order, so the estimator landed
        # bitwise where an always-streaming P² would have.
        assert hist.quantile(0.9) == streamed.value()
        assert hist.state_dict()["buffer"] is None

    def test_state_roundtrip_validates_quantile_set(self):
        hist = StreamingHistogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        restored = StreamingHistogram()
        restored.load_state_dict(hist.state_dict())
        assert restored.summary() == hist.summary()
        other = StreamingHistogram(quantiles=(0.5,))
        with pytest.raises(ValueError, match="quantiles"):
            other.load_state_dict(hist.state_dict())

    def test_state_roundtrip_across_the_spill_boundary(self):
        rng = np.random.default_rng(9)
        values = rng.normal(size=StreamingHistogram.SPILL_AT + 50)
        cut = StreamingHistogram.SPILL_AT - 10  # checkpoint pre-spill
        whole = StreamingHistogram()
        for v in values:
            whole.observe(v)
        first = StreamingHistogram()
        for v in values[:cut]:
            first.observe(v)
        resumed = StreamingHistogram()
        resumed.load_state_dict(first.state_dict())
        for v in values[cut:]:
            resumed.observe(v)
        assert resumed.state_dict() == whole.state_dict()


class TestSpanSampler:
    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            SpanSampler(0, 1.5)
        with pytest.raises(ValueError, match="rate"):
            SpanSampler(0, -0.1)

    def test_extreme_rates(self):
        keep_all = SpanSampler(3, 1.0)
        keep_none = SpanSampler(3, 0.0)
        assert all(keep_all.sampled(t, c) for t in range(5) for c in range(5))
        assert not any(
            keep_none.sampled(t, c) for t in range(5) for c in range(5)
        )

    def test_decision_is_a_pure_function(self):
        a = SpanSampler(42, 0.3)
        b = SpanSampler(42, 0.3)
        decisions = [
            a.sampled(t, c) for t in range(10) for c in range(100)
        ]
        assert decisions == [
            b.sampled(t, c) for t in range(10) for c in range(100)
        ]
        # A different seed samples a different subset.
        c = SpanSampler(43, 0.3)
        assert decisions != [
            c.sampled(t, k) for t in range(10) for k in range(100)
        ]

    def test_rate_is_respected_in_aggregate(self):
        sampler = SpanSampler(0, 0.01)
        kept = sum(
            sampler.sampled(1, client) for client in range(100_000)
        )
        assert 700 < kept < 1300


class TestRoundRollup:
    def _fed_rollup(self):
        rollup = RoundRollup(iteration=4)
        for i in range(10):
            rollup.observe_decision(
                score=0.1 * i, train_loss=1.0 - 0.05 * i, uploaded=i % 2 == 0
            )
            rollup.observe_task_rt(i, dur=0.01 * (i + 1), queue_wait=0.001)
        rollup.uploaded_bytes = 5_000
        rollup.status_bytes = 50
        return rollup

    def test_attrs_payload(self):
        attrs = self._fed_rollup().attrs()
        assert attrs["iteration"] == 4
        assert attrs["n_participants"] == 10
        assert attrs["n_uploaded"] == 5
        assert attrs["n_forced"] == 0
        assert attrs["uploaded_bytes"] == 5_000
        assert attrs["score"]["count"] == 10
        assert attrs["train_loss"]["min"] == pytest.approx(0.55)
        assert "layer_sign_agreement" not in attrs

    def test_rt_payload_tracks_slowest(self):
        rt = self._fed_rollup().rt()
        assert rt["compute_s"]["count"] == 10
        assert rt["compute_s"]["max"] == pytest.approx(0.10)
        # Top-K slowest, slowest first, as [client_index, dur] pairs.
        assert [pair[0] for pair in rt["slowest"]] == [9, 8, 7]
        assert len(rt["slowest"]) == RoundRollup.SLOWEST_K

    def test_layer_sign_agreement_and_extra_ride_in_attrs(self):
        rollup = RoundRollup(iteration=1)
        rollup.layer_sign_agreement = [0.9, 0.7]
        rollup.extra["store"] = {"population": 1000}
        attrs = rollup.attrs()
        assert attrs["layer_sign_agreement"] == [0.9, 0.7]
        assert attrs["store"] == {"population": 1000}
