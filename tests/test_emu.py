"""The cluster emulation substrate."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import ConstantThreshold
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.emu.cluster import ClusterEmulator
from repro.emu.messages import HEADER_BYTES, MessageKind, message_size
from repro.emu.network import MOBILE_LINK, LinkModel, NodeComputeModel
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.nn.serialization import STATUS_MESSAGE_BYTES, update_nbytes
from repro.utils.rng import child_rngs


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(bandwidth_bps=8e6, latency_s=0.01)
        # 1 MB over 8 Mbit/s = 1 s, plus latency
        assert link.transfer_time(1_000_000) == pytest.approx(1.01)

    def test_zero_bytes_costs_latency(self):
        link = LinkModel(latency_s=0.05)
        assert link.transfer_time(0) == pytest.approx(0.05)

    def test_mobile_slower_than_default(self):
        assert MOBILE_LINK.transfer_time(10_000) > LinkModel().transfer_time(10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkModel().transfer_time(-1)


class TestComputeModel:
    def test_training_time_scales(self):
        node = NodeComputeModel(train_seconds_per_sample=0.01)
        assert node.local_training_time(10, 2) == pytest.approx(0.2)

    def test_relevance_check_time(self):
        node = NodeComputeModel(relevance_seconds_per_param=1e-9)
        assert node.relevance_check_time(1000) == pytest.approx(1e-6)


class TestMessages:
    def test_update_size(self):
        assert message_size(MessageKind.UPDATE, 100) == HEADER_BYTES + update_nbytes(100)

    def test_status_is_tiny(self):
        status = message_size(MessageKind.STATUS, 100_000)
        update = message_size(MessageKind.UPDATE, 100_000)
        assert status == HEADER_BYTES + STATUS_MESSAGE_BYTES
        assert status < update / 100

    def test_broadcast_with_feedback_doubles_payload(self):
        with_fb = message_size(MessageKind.MODEL_BROADCAST, 100, True)
        without = message_size(MessageKind.MODEL_BROADCAST, 100, False)
        assert with_fb - HEADER_BYTES == 2 * (without - HEADER_BYTES)


def _emulated(policy, rounds=3, n_clients=4, seed=0):
    rngs = child_rngs(seed, n_clients + 3)
    x = rngs[0].normal(size=(60, 4))
    y = (x @ rngs[1].normal(size=4) > 0).astype(np.int64)
    data = Dataset(x, y)
    model = make_logistic_regression(4, rng=rngs[2])
    workspace = ModelWorkspace(model, SigmoidBinaryCrossEntropy(),
                               SGD(model.parameters(), 0.5))
    parts = iid_partition(len(data), n_clients, rng=seed)
    clients = [FLClient(i, data.subset(p), rng=rngs[3 + i])
               for i, p in enumerate(parts)]
    config = FLConfig(rounds=rounds, local_epochs=1, batch_size=10,
                      lr=ConstantLR(0.5))
    trainer = FederatedTrainer(workspace, clients, policy, config)
    return ClusterEmulator(trainer)


class TestClusterEmulator:
    def test_vanilla_byte_accounting_is_exact(self):
        emulator = _emulated(VanillaPolicy(), rounds=3, n_clients=4)
        report = emulator.run(3)
        n_params = report.n_params
        expected_updates = 3 * 4 * message_size(MessageKind.UPDATE, n_params)
        assert report.bytes_by_kind[MessageKind.UPDATE.value] == expected_updates
        expected_bcast = 3 * 4 * message_size(
            MessageKind.MODEL_BROADCAST, n_params
        )
        assert report.bytes_by_kind[MessageKind.MODEL_BROADCAST.value] == expected_bcast
        assert MessageKind.STATUS.value not in report.bytes_by_kind

    def test_filtered_clients_send_status(self):
        emulator = _emulated(CMFLPolicy(ConstantThreshold(0.9)), rounds=4)
        report = emulator.run(4)
        assert report.bytes_by_kind.get(MessageKind.STATUS.value, 0) > 0
        vanilla = _emulated(VanillaPolicy(), rounds=4).run(4)
        assert report.uploaded_megabytes < vanilla.uploaded_megabytes

    def test_simulated_time_accumulates(self):
        emulator = _emulated(VanillaPolicy(), rounds=2)
        report = emulator.run(2)
        assert report.simulated_seconds > 0
        assert len(report.timings) == 2
        assert report.simulated_seconds == pytest.approx(
            sum(t.total for t in report.timings)
        )

    def test_relevance_overhead_is_small(self):
        emulator = _emulated(VanillaPolicy(), rounds=2)
        report = emulator.run(2)
        assert report.relevance_overhead_fraction() < 0.01

    def test_round_timing_total(self):
        emulator = _emulated(VanillaPolicy(), rounds=1)
        report = emulator.run(1)
        t = report.timings[0]
        assert t.total == pytest.approx(
            t.broadcast_time + t.slowest_compute_time + t.slowest_upload_time
        )

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            _emulated(VanillaPolicy()).run(0)


class TestLinkSensitivity:
    def test_mobile_uplink_dominates_round_time(self):
        """On a phone-grade link the upload leg dwarfs the broadcast-
        plus-compute budget of an EC2-grade link."""
        fast = _emulated(VanillaPolicy(), rounds=2)
        fast_report = fast.run(2)
        slow = _emulated(VanillaPolicy(), rounds=2)
        slow.link = MOBILE_LINK
        slow_report = slow.run(2)
        assert slow_report.simulated_seconds > fast_report.simulated_seconds
        # byte totals are link-independent
        assert slow_report.uploaded_megabytes == fast_report.uploaded_megabytes

    def test_feedback_broadcast_costs_downstream_not_upstream(self):
        with_fb = _emulated(VanillaPolicy(), rounds=2)
        with_fb.feedback_in_broadcast = True
        r1 = with_fb.run(2)
        without = _emulated(VanillaPolicy(), rounds=2)
        without.feedback_in_broadcast = False
        r2 = without.run(2)
        assert (r1.bytes_by_kind[MessageKind.MODEL_BROADCAST.value]
                > r2.bytes_by_kind[MessageKind.MODEL_BROADCAST.value])
        assert r1.uploaded_megabytes == r2.uploaded_megabytes
