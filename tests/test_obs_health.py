"""The run health monitor: finding logic, injection end-to-end, and
the ASCII dashboard."""

import time

import pytest

from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.fl.client import FLClient
from repro.obs import (
    HealthMonitor,
    deterministic_view,
    health_events,
    health_summary,
    render_dashboard,
)
from repro.obs.health import sparkline
from tests.test_executor import _federation


def _round_attrs(iteration=1, participants=4, uploaded=2, forced=0):
    return {
        "iteration": iteration,
        "n_participants": participants,
        "n_uploaded": uploaded,
        "n_forced": forced,
    }


def _straggler_rt(count=10, p50=0.01, worst=0.2):
    return {
        "compute_s": {"count": count, "p50": p50, "max": worst},
        "slowest": [[3, worst]],
    }


class TestHealthMonitor:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="stall_patience"):
            HealthMonitor(stall_patience=0)
        with pytest.raises(ValueError, match="straggler_factor"):
            HealthMonitor(straggler_factor=1.0)

    def test_healthy_round_yields_nothing(self):
        monitor = HealthMonitor()
        assert monitor.observe_round(
            _round_attrs(),
            test_metric=0.8,
            ledger_total_bytes=100,
            counter_total_bytes=100,
        ) == []

    def test_dead_cohort_counts_only_organic_uploads(self):
        monitor = HealthMonitor()
        findings = monitor.observe_round(
            _round_attrs(uploaded=1, forced=1)
        )
        assert [name for name, _, _ in findings] == ["health.dead_cohort"]
        name, attrs, rt = findings[0]
        assert attrs["n_forced"] == 1 and rt is None
        # One organic upload keeps the cohort alive.
        assert monitor.observe_round(_round_attrs(uploaded=2, forced=1)) == []
        # An empty round (no participants) is not a dead cohort.
        assert monitor.observe_round(
            _round_attrs(participants=0, uploaded=0)
        ) == []

    def test_non_finite_fields_are_named(self):
        findings = HealthMonitor().observe_round(
            _round_attrs(),
            test_loss=float("nan"),
            mean_train_loss=float("inf"),
            test_metric=0.5,
        )
        assert [name for name, _, _ in findings] == ["health.non_finite"]
        fields = findings[0][1]["fields"]
        assert set(fields) == {"test_loss", "mean_train_loss"}

    def test_stall_fires_after_patience_and_resets_on_improvement(self):
        monitor = HealthMonitor(stall_patience=2, stall_min_delta=0.01)
        assert monitor.observe_round(_round_attrs(1), test_metric=0.5) == []
        assert monitor.observe_round(_round_attrs(2), test_metric=0.5) == []
        findings = monitor.observe_round(_round_attrs(3), test_metric=0.505)
        assert [name for name, _, _ in findings] == ["health.stall"]
        assert findings[0][1]["rounds_since_improvement"] == 2
        # A real improvement resets the cursor.
        assert monitor.observe_round(_round_attrs(4), test_metric=0.6) == []
        assert monitor.rounds_since_improvement == 0
        # Rounds without an eval leave the cursor untouched.
        assert monitor.observe_round(_round_attrs(5)) == []
        assert monitor.evals_seen == 4

    def test_comm_drift_requires_both_totals(self):
        monitor = HealthMonitor()
        findings = monitor.observe_round(
            _round_attrs(), ledger_total_bytes=100, counter_total_bytes=96
        )
        assert [name for name, _, _ in findings] == ["health.comm_drift"]
        assert monitor.observe_round(
            _round_attrs(), ledger_total_bytes=100, counter_total_bytes=None
        ) == []

    def test_straggler_is_a_runtime_finding(self):
        monitor = HealthMonitor(straggler_factor=4.0, straggler_min_clients=8)
        findings = monitor.observe_round(_round_attrs(), _straggler_rt())
        assert [name for name, _, _ in findings] == [
            "runtime.health.straggler"
        ]
        name, attrs, rt = findings[0]
        # The wall-clock payload lives in rt; attrs only anchor a round.
        assert set(attrs) == {"iteration"}
        assert rt["factor"] == pytest.approx(20.0)
        assert rt["slowest"] == [[3, 0.2]]
        # Small cohorts are never straggler-flagged (too noisy).
        assert monitor.observe_round(
            _round_attrs(), _straggler_rt(count=4)
        ) == []
        assert monitor.observe_round(
            _round_attrs(), _straggler_rt(worst=0.03)
        ) == []

    def test_findings_come_in_fixed_order(self):
        monitor = HealthMonitor(stall_patience=1, straggler_min_clients=1)
        monitor.observe_round(_round_attrs(1), test_metric=0.5)
        findings = monitor.observe_round(
            _round_attrs(2, uploaded=0),
            _straggler_rt(count=9),
            test_metric=0.5,
            test_loss=float("nan"),
            ledger_total_bytes=1,
            counter_total_bytes=2,
        )
        assert [name for name, _, _ in findings] == [
            "health.dead_cohort",
            "health.non_finite",
            "health.stall",
            "health.comm_drift",
            "runtime.health.straggler",
        ]

    def test_stall_cursor_roundtrips_through_state(self):
        monitor = HealthMonitor(stall_patience=3)
        monitor.observe_round(_round_attrs(1), test_metric=0.7)
        monitor.observe_round(_round_attrs(2), test_metric=0.7)
        resumed = HealthMonitor(stall_patience=3)
        resumed.load_state_dict(monitor.state_dict())
        assert resumed.best_metric == 0.7
        assert resumed.rounds_since_improvement == 1
        # Two more flat evals trip the same verdict the uninterrupted
        # monitor would reach.
        assert resumed.observe_round(_round_attrs(3), test_metric=0.7) == []
        findings = resumed.observe_round(_round_attrs(4), test_metric=0.7)
        assert [name for name, _, _ in findings] == ["health.stall"]


class _SleepyClient(FLClient):
    """Client 0 stalls long enough to dominate the round's compute."""

    def compute_update(self, *args, **kwargs):
        if self.client_id == 0:
            time.sleep(0.05)
        return super().compute_update(*args, **kwargs)


class TestInjectedFaults:
    def _traced_run(self, monitor, client_cls=FLClient, rounds=3):
        trainer, _ = _federation(
            CMFLPolicy(InverseSqrtThreshold(0.8)),
            rounds=rounds,
            trace=True,
            client_cls=client_cls,
        )
        trainer.health = monitor
        with trainer:
            trainer.run()
        trainer.tracer.close()
        return trainer, list(trainer.tracer.memory_events())

    def test_injected_straggler_fires_and_stays_runtime(self):
        monitor = HealthMonitor(
            straggler_factor=2.0, straggler_min_clients=4
        )
        _, events = self._traced_run(monitor, client_cls=_SleepyClient)
        stragglers = [
            e for e in events if e["name"] == "runtime.health.straggler"
        ]
        assert stragglers
        slowest = stragglers[0]["rt"]["slowest"]
        assert slowest[0][0] == 0  # client 0 is the injected straggler
        # Wall-clock findings are masked from the deterministic view.
        assert health_events(deterministic_view(events)) == []

    def test_injected_stall_fires_deterministically(self):
        # min_delta so large no improvement ever counts: the second
        # eval starts the stall and it fires every round after.
        monitor = HealthMonitor(stall_patience=1, stall_min_delta=100.0)
        _, events = self._traced_run(monitor, rounds=4)
        stalls = [e for e in events if e["name"] == "health.stall"]
        assert len(stalls) == 3
        # Deterministic findings survive the deterministic view.
        assert health_events(deterministic_view(events))
        assert health_summary(events)["health.stall"] == 3


class TestDashboard:
    def test_sparkline_handles_gaps_and_flats(self):
        assert sparkline([]) == ""
        assert sparkline([None, 1.0, None]) == "?=?"
        assert sparkline([2.0, 2.0, 2.0]) == "==="
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == " " and line[-1] == "@"

    def test_dashboard_renders_rollups_and_findings(self):
        monitor = HealthMonitor(stall_patience=1, stall_min_delta=100.0)
        trainer, _ = _federation(
            CMFLPolicy(InverseSqrtThreshold(0.8)), rounds=3, trace=True
        )
        trainer.health = monitor
        with trainer:
            trainer.run()
        trainer.tracer.close()
        screen = render_dashboard(trainer.tracer.memory_events())
        assert "round rollups" in screen
        assert "health findings" in screen
        assert "health.stall" in screen
        assert "trend  loss_p50" in screen

    def test_dashboard_survives_an_empty_trace(self):
        screen = render_dashboard([])
        assert "no round_rollup events yet" in screen
        assert "health: no findings" in screen
