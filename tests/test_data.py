"""Datasets, partitioners and generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset, train_test_split
from repro.data.har import make_har_tasks, stack_tests
from repro.data.partition import (
    dirichlet_partition,
    group_partition,
    iid_partition,
    label_shard_partition,
)
from repro.data.semeion import make_semeion_tasks
from repro.data.shakespeare import make_dialogue_corpus
from repro.data.synthetic_digits import (
    N_CLASSES,
    binarize_images,
    make_digit_dataset,
    render_digit,
)
from repro.data.vocab import Vocabulary


class TestDataset:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((0, 2)), np.zeros(0))

    def test_batches_cover_everything_once(self):
        ds = Dataset(np.arange(10)[:, None], np.arange(10))
        seen = np.concatenate([y for _, y in ds.batches(3, rng=0)])
        assert sorted(seen.tolist()) == list(range(10))

    def test_batches_deterministic_under_seed(self):
        ds = Dataset(np.arange(10)[:, None], np.arange(10))
        a = [y.tolist() for _, y in ds.batches(4, rng=5)]
        b = [y.tolist() for _, y in ds.batches(4, rng=5)]
        assert a == b

    def test_subset(self):
        ds = Dataset(np.arange(10)[:, None], np.arange(10))
        sub = ds.subset([2, 5])
        assert sub.y.tolist() == [2, 5]

    def test_train_test_split_disjoint(self):
        ds = Dataset(np.arange(20)[:, None], np.arange(20))
        train, test = train_test_split(ds, 0.25, rng=0)
        assert len(train) == 15 and len(test) == 5
        assert not set(train.y.tolist()) & set(test.y.tolist())


class TestPartitioners:
    @settings(max_examples=25)
    @given(st.integers(10, 200), st.integers(1, 10), st.integers(0, 1000))
    def test_iid_partition_is_exact_cover(self, n, k, seed):
        parts = iid_partition(n, k, rng=seed)
        allidx = np.concatenate(parts)
        assert sorted(allidx.tolist()) == list(range(n))

    @settings(max_examples=25)
    @given(st.integers(2, 8), st.integers(1, 3), st.integers(0, 1000))
    def test_label_shard_partition_is_exact_cover(self, k, spc, seed):
        gen = np.random.default_rng(seed)
        labels = gen.integers(0, 5, size=k * spc * 7)
        parts = label_shard_partition(labels, k, shards_per_client=spc, rng=seed)
        allidx = np.concatenate(parts)
        assert sorted(allidx.tolist()) == list(range(labels.size))

    def test_label_shard_partition_concentrates_labels(self):
        labels = np.repeat(np.arange(10), 60)
        parts = label_shard_partition(labels, 10, shards_per_client=1, rng=0)
        for part in parts:
            assert len(np.unique(labels[part])) <= 2

    @settings(max_examples=15)
    @given(st.integers(3, 6), st.integers(0, 500))
    def test_dirichlet_partition_exact_cover(self, k, seed):
        gen = np.random.default_rng(seed)
        labels = gen.integers(0, 4, size=200)
        parts = dirichlet_partition(labels, k, alpha=0.5, rng=seed)
        allidx = np.concatenate(parts)
        assert sorted(allidx.tolist()) == list(range(200))
        assert all(len(p) >= 1 for p in parts)

    def test_group_partition(self):
        groups = np.array([0, 1, 0, 2, 1])
        parts = group_partition(groups)
        assert [p.tolist() for p in parts] == [[0, 2], [1, 4], [3]]

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            iid_partition(3, 5)


class TestDigits:
    def test_render_shape_and_range(self):
        img = render_digit(7, rng=0)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            render_digit(10)

    def test_dataset_shapes(self):
        ds = make_digit_dataset(30, rng=0, image_size=20)
        assert ds.x.shape == (30, 1, 20, 20)
        assert set(np.unique(ds.y)) <= set(range(N_CLASSES))

    def test_flat_option(self):
        ds = make_digit_dataset(10, rng=0, image_size=16, flat=True)
        assert ds.x.shape == (10, 256)

    def test_class_balance(self):
        ds = make_digit_dataset(100, rng=0)
        counts = np.bincount(ds.y, minlength=10)
        assert counts.max() - counts.min() <= 1

    def test_determinism(self):
        a = make_digit_dataset(5, rng=3).x
        b = make_digit_dataset(5, rng=3).x
        np.testing.assert_array_equal(a, b)

    def test_same_digit_varies_between_samples(self):
        imgs = [render_digit(3, rng=np.random.default_rng(i)) for i in range(2)]
        assert not np.array_equal(imgs[0], imgs[1])

    def test_binarize(self):
        out = binarize_images(np.array([[0.2, 0.8]]))
        np.testing.assert_array_equal(out, [[0.0, 1.0]])


class TestShakespeare:
    def test_corpus_structure(self):
        corpus = make_dialogue_corpus(n_roles=5, words_per_role=60, rng=0)
        assert corpus.sequences.shape[1] == 10
        assert corpus.next_words.shape[0] == corpus.sequences.shape[0]
        assert corpus.n_roles == 5

    def test_every_role_has_samples(self):
        corpus = make_dialogue_corpus(n_roles=8, words_per_role=40, rng=1)
        assert set(np.unique(corpus.roles)) == set(range(8))

    def test_token_ids_within_vocab(self):
        corpus = make_dialogue_corpus(n_roles=3, words_per_role=50, rng=2)
        assert corpus.sequences.max() < len(corpus.vocab)
        assert corpus.next_words.max() < len(corpus.vocab)

    def test_role_dataset(self):
        corpus = make_dialogue_corpus(n_roles=3, words_per_role=50, rng=2)
        ds = corpus.role_dataset(1)
        assert len(ds) == np.count_nonzero(corpus.roles == 1)

    def test_roles_have_distinct_word_distributions(self):
        """The non-IID property the paper's NWP workload relies on."""
        corpus = make_dialogue_corpus(
            n_roles=2, words_per_role=400, topic_alpha=0.1, rng=3
        )
        v = len(corpus.vocab)
        hists = []
        for role in (0, 1):
            tokens = corpus.sequences[corpus.roles == role].reshape(-1)
            hists.append(np.bincount(tokens, minlength=v) / tokens.size)
        overlap = np.minimum(hists[0], hists[1]).sum()
        assert overlap < 0.8  # far from identical distributions

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_dialogue_corpus(n_roles=2, words_per_role=5, seq_len=10)
        with pytest.raises(ValueError):
            make_dialogue_corpus(bigram_strength=1.5)


class TestVocabulary:
    def test_round_trip(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids = vocab.encode(["b", "a", "zzz"])
        assert ids.tolist() == [2, 1, 0]
        assert vocab.decode([2, 1, 0]) == ["b", "a", "<unk>"]

    def test_duplicates_collapse(self):
        vocab = Vocabulary(["a", "a", "b"])
        assert len(vocab) == 3  # <unk>, a, b

    def test_out_of_range_decode(self):
        with pytest.raises(ValueError):
            Vocabulary(["a"]).decode([5])


class TestHAR:
    def test_task_count_and_flags(self):
        tasks = make_har_tasks(n_clients=20, n_features=30,
                               outlier_fraction=0.25, rng=0)
        assert len(tasks) == 20
        assert sum(t.is_outlier for t in tasks) == 5

    def test_sample_ranges(self):
        tasks = make_har_tasks(n_clients=10, n_features=20,
                               min_samples=10, max_samples=30, rng=1)
        for t in tasks:
            assert 10 <= len(t.train) <= 30
            assert len(t.test) >= 2

    def test_outliers_have_noisy_train_labels(self):
        """Outlier train labels should be near-uncorrelated with the
        optimal direction; clean clients' labels should be predictable."""
        tasks = make_har_tasks(n_clients=30, n_features=50, noise_std=0.1,
                               label_flip_fraction=0.5, rng=2)
        clean_acc, outl_acc = [], []
        for t in tasks:
            if len(np.unique(t.test.y)) < 2:
                continue
            # direction from the (clean) test data
            mu1 = t.test.x[t.test.y == 1].mean(axis=0)
            mu0 = t.test.x[t.test.y == 0].mean(axis=0)
            w = mu1 - mu0
            pred = (t.train.x @ w > 0).astype(int)
            acc = np.mean(pred == t.train.y)
            (outl_acc if t.is_outlier else clean_acc).append(acc)
        assert np.mean(clean_acc) > 0.9
        assert np.mean(outl_acc) < 0.75

    def test_stack_tests(self):
        tasks = make_har_tasks(n_clients=5, n_features=10, rng=3)
        x, y = stack_tests(tasks)
        assert len(x) == len(y) == sum(len(t.test) for t in tasks)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            make_har_tasks(n_clients=1)
        with pytest.raises(ValueError):
            make_har_tasks(outlier_fraction=1.0)


class TestSemeion:
    def test_binary_features(self):
        tasks = make_semeion_tasks(n_clients=4, total_samples=120, rng=0)
        for t in tasks:
            assert set(np.unique(t.train.x)) <= {0.0, 1.0}
            assert t.train.x.shape[1] == 256

    def test_outlier_flags_present(self):
        tasks = make_semeion_tasks(n_clients=10, total_samples=300,
                                   outlier_fraction=0.3, rng=1)
        assert sum(t.is_outlier for t in tasks) == 3

    def test_labels_binary(self):
        tasks = make_semeion_tasks(n_clients=3, total_samples=90, rng=2)
        for t in tasks:
            assert set(np.unique(t.train.y)) <= {0, 1}
