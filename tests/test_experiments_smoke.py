"""Smoke tests: every paper experiment runs end-to-end at test scale."""

import numpy as np
import pytest

from repro.experiments import resolve_scale
from repro.experiments import workloads as wl


def test_resolve_scale_priority(monkeypatch):
    monkeypatch.delenv(wl.SCALE_ENV_VAR, raising=False)
    assert resolve_scale(None) == "bench"
    monkeypatch.setenv(wl.SCALE_ENV_VAR, "test")
    assert resolve_scale(None) == "test"
    assert resolve_scale("paper") == "paper"
    with pytest.raises(ValueError):
        resolve_scale("huge")


def test_fig1_divergence_smoke():
    from repro.experiments import fig1_divergence

    result = fig1_divergence.run("test")
    for model in ("digits_cnn", "nwp_lstm"):
        d = result.divergences[model]
        assert d.size > 100
        assert np.all(d >= 0)
        stats = result.stats(model)
        assert 0.0 <= stats["fraction_above_100pct"] <= 1.0
    assert "Fig 1" in result.report()


def test_fig2_measures_smoke():
    from repro.experiments import fig2_measures

    result = fig2_measures.run("test")
    assert result.significance.size == 4
    assert result.relevance.size == 4
    assert np.all(result.relevance >= 0) and np.all(result.relevance <= 1)
    assert np.all(result.significance > 0)
    assert "Fig 2" in result.report()


def test_fig3_delta_update_smoke():
    from repro.experiments import fig3_delta_update

    result = fig3_delta_update.run("test")
    for model in ("digits_cnn", "nwp_lstm"):
        assert result.deltas[model].size >= 1
        assert np.all(result.deltas[model] >= 0)
    assert "Fig 3" in result.report()


def test_fig4_digits_only_smoke():
    from repro.experiments import fig4_table1

    result = fig4_table1.run("test", workloads=["digits_cnn"])
    comparison = result.comparisons["digits_cnn"]
    assert "vanilla" in comparison.histories
    assert any(name.startswith("cmfl") for name in comparison.histories)
    comm, acc = comparison.curve("vanilla")
    assert comm.size == acc.size > 0
    assert "Table I" in comparison.report()


def test_fig5_table2_smoke():
    from repro.experiments import fig5_table2

    result = fig5_table2.run("test")
    for name in ("har", "semeion"):
        comparison = result.comparisons[name]
        assert comparison.accuracy_ratio() > 0
        assert comparison.cmfl.final.accumulated_rounds <= (
            comparison.vanilla.final.accumulated_rounds
        )
    assert "Table II" in result.report()


def test_fig6_outliers_smoke():
    from repro.experiments import fig6_outliers

    result = fig6_outliers.run("test")
    assert result.elimination_counts.size == result.truth_outlier.size
    assert 0.0 <= result.elimination_share_of_outliers <= 1.0
    precision, recall = result.detection_precision_recall()
    assert 0.0 <= precision <= 1.0 and 0.0 <= recall <= 1.0
    assert "Fig 6" in result.report()


def test_fig7_ec2_smoke():
    from repro.experiments import fig7_ec2

    result = fig7_ec2.run("test")
    assert set(result.histories) == {"vanilla", "gaia", "cmfl"}
    vanilla_mb = result.reports["vanilla"].uploaded_megabytes
    cmfl_mb = result.reports["cmfl"].uploaded_megabytes
    assert cmfl_mb <= vanilla_mb
    assert "Fig 7" in result.report()


def test_micro_overhead_smoke():
    from repro.experiments import micro_overhead

    result = micro_overhead.run("test")
    assert result.relevance_check_seconds > 0
    assert result.local_iteration_seconds > 0
    # the headline claim, generously bounded for slow CI machines
    assert result.overhead_fraction < 0.05
    assert "overhead" in result.report()


def test_convergence_check_smoke():
    from repro.experiments import convergence_check

    result = convergence_check.run("test")
    assert result.time_average_regret.size == 12
    assert np.all(np.isfinite(result.time_average_regret))
    assert "Theorem 1" in result.report()


def test_ablations_smoke():
    from repro.experiments import ablations

    result = ablations.run("test")
    assert len(result.schedule_runs) == 3
    assert len(result.staleness_runs) == 2
    assert len(result.gaia_runs) == 2
    assert result.layer_relevance
    assert "Ablation" in result.report()
