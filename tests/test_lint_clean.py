"""Tier-1 gate: the shipped tree must be lint-clean.

Runs the full default rule set (with the repo's ``[tool.repro-lint]``
configuration) over ``src/repro`` exactly like
``python -m repro.lint src/repro`` would, and fails listing every
diagnostic if anything regressed.  A companion test seeds a violation
to prove the gate actually bites.  The whole-program gate additionally
runs the flow rules (``--project --jobs 2``) and requires zero
findings beyond the committed ``lint_baseline.json``.
"""

import json
from pathlib import Path

from repro.lint import ProjectAnalyzer, Linter, format_text, load_config, run_lint
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint_baseline.json"


def test_source_tree_is_lint_clean():
    config = load_config(REPO_ROOT)
    violations = Linter(config=config).lint_paths([str(SRC)])
    assert violations == [], "\n" + format_text(violations)


def test_whole_program_pass_is_clean():
    """The flow rules (rng-taint, shared-state-race,
    ckpt-state-coverage, trace-discipline) hold on the shipped tree,
    modulo the committed baseline, with the parallel per-file path."""
    config = load_config(REPO_ROOT)
    result = ProjectAnalyzer(config=config, jobs=2).analyze([str(SRC)])
    baseline = json.loads(BASELINE.read_text())
    assert baseline["schema"] == "repro-lint-baseline/v1"
    grandfathered = {
        (f["rule"], f["message"]) for f in baseline["findings"]
    }
    fresh = [
        v
        for v in result.violations
        if (v.rule, v.message) not in grandfathered
    ]
    assert fresh == [], "\n" + format_text(fresh)
    assert result.stats["files"] > 0
    assert result.stats["jobs"] == 2


def test_whole_program_cli_gate_exits_zero(capsys):
    code = main(
        [
            str(SRC),
            "--project",
            "--jobs",
            "2",
            "--baseline",
            str(BASELINE),
        ]
    )
    assert code == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_seeded_violation_is_caught(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\n"
        "__all__ = [\"draw\"]\n\n\n"
        "def draw():\n"
        "    buf = np.zeros(3)\n"
        "    return np.random.normal(size=3)\n"
    )
    violations = run_lint([str(bad)])
    assert {v.rule for v in violations} == {"no-global-rng", "explicit-dtype"}
    assert all(v.line in (7, 8) for v in violations)
    # ...and the CLI turns that into a non-zero exit with file:line output.
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:8" in out


def test_cli_clean_tree_exits_zero(capsys):
    assert main([str(SRC)]) == 0
    assert "0 error(s)" in capsys.readouterr().out
