"""Tier-1 gate: the shipped tree must be lint-clean.

Runs the full default rule set (with the repo's ``[tool.repro-lint]``
configuration) over ``src/repro`` exactly like
``python -m repro.lint src/repro`` would, and fails listing every
diagnostic if anything regressed.  A companion test seeds a violation
to prove the gate actually bites.
"""

from pathlib import Path

from repro.lint import Linter, format_text, load_config, run_lint
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_source_tree_is_lint_clean():
    config = load_config(REPO_ROOT)
    violations = Linter(config=config).lint_paths([str(SRC)])
    assert violations == [], "\n" + format_text(violations)


def test_seeded_violation_is_caught(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\n"
        "__all__ = [\"draw\"]\n\n\n"
        "def draw():\n"
        "    buf = np.zeros(3)\n"
        "    return np.random.normal(size=3)\n"
    )
    violations = run_lint([str(bad)])
    assert {v.rule for v in violations} == {"no-global-rng", "explicit-dtype"}
    assert all(v.line in (7, 8) for v in violations)
    # ...and the CLI turns that into a non-zero exit with file:line output.
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:8" in out


def test_cli_clean_tree_exits_zero(capsys):
    assert main([str(SRC)]) == 0
    assert "0 error(s)" in capsys.readouterr().out
