"""Cross-module integration tests: full federated runs on every workload."""

import numpy as np
import pytest

from repro.analysis.saving import rounds_to_accuracy
from repro.baselines.gaia import GaiaPolicy
from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy
from repro.core.relevance import relevance
from repro.core.thresholds import ConstantThreshold
from repro.emu.cluster import ClusterEmulator
from repro.experiments.workloads import DigitsWorkload, NWPWorkload


@pytest.fixture(scope="module")
def digits():
    return DigitsWorkload(scale="test")


@pytest.fixture(scope="module")
def nwp():
    return NWPWorkload(scale="test")


class TestDigitsFederation:
    def test_vanilla_runs_and_learns_something(self, digits):
        history = digits.make_trainer(VanillaPolicy(), rounds=6).run()
        assert len(history) == 6
        losses = history.train_losses()
        assert losses[-1] < losses[0]

    def test_cmfl_reduces_phi_vs_vanilla(self, digits):
        vanilla = digits.make_trainer(VanillaPolicy(), rounds=6).run()
        cmfl = digits.make_trainer(
            CMFLPolicy(ConstantThreshold(0.55)), rounds=6
        ).run()
        assert cmfl.final.accumulated_rounds < vanilla.final.accumulated_rounds

    def test_same_policy_same_history(self, digits):
        h1 = digits.make_trainer(VanillaPolicy(), rounds=3).run()
        h2 = digits.make_trainer(VanillaPolicy(), rounds=3).run()
        np.testing.assert_allclose(h1.train_losses(), h2.train_losses())

    def test_gaia_runs(self, digits):
        history = digits.make_trainer(
            GaiaPolicy(ConstantThreshold(0.05)), rounds=4
        ).run()
        assert len(history) == 4

    def test_recorded_scores_are_valid_relevances(self, digits):
        trainer = digits.make_trainer(
            CMFLPolicy(ConstantThreshold(0.5)), rounds=4
        )
        seen = []
        trainer.on_decision = lambda res, dec: seen.append(dec.score)
        trainer.run()
        assert all(0.0 <= s <= 1.0 for s in seen)


class TestNWPFederation:
    def test_vanilla_loss_decreases(self, nwp):
        history = nwp.make_trainer(VanillaPolicy(), rounds=5).run()
        losses = history.train_losses()
        assert losses[-1] < losses[0]

    def test_feedback_matches_manual_relevance(self, nwp):
        """The score the policy computes equals Eq. (9) evaluated
        against the server's broadcast feedback."""
        trainer = nwp.make_trainer(CMFLPolicy(ConstantThreshold(0.0)), rounds=3)
        checks = []

        def hook(result, decision):
            expected = relevance(result.update, trainer.server.feedback)
            checks.append(expected == decision.score)

        trainer.on_decision = hook
        trainer.run()
        assert checks and all(checks)

    def test_emulated_run_matches_trainer_history(self, nwp):
        trainer = nwp.make_trainer(VanillaPolicy(), rounds=3)
        emulator = ClusterEmulator(trainer)
        report = emulator.run(3)
        assert len(trainer.history) == 3
        assert report.uploaded_megabytes > 0


class TestAccountingConsistency:
    def test_history_and_ledger_agree(self, digits):
        trainer = digits.make_trainer(
            CMFLPolicy(ConstantThreshold(0.55)), rounds=5
        )
        history = trainer.run()
        assert (
            history.final.accumulated_rounds
            == trainer.ledger.accumulated_rounds
        )
        per_round = [r.n_uploaded for r in history]
        assert per_round == trainer.ledger.rounds_per_iteration

    def test_skips_plus_uploads_cover_all_clients(self, digits):
        trainer = digits.make_trainer(
            CMFLPolicy(ConstantThreshold(0.6)), rounds=4
        )
        trainer.run()
        n = len(trainer.clients)
        total = sum(trainer.ledger.uploads_per_client.get(c, 0)
                    + trainer.ledger.skips_per_client.get(c, 0)
                    for c in range(n))
        assert total == n * 4

    def test_rounds_to_accuracy_consistent_with_curve(self, digits):
        history = digits.make_trainer(VanillaPolicy(), rounds=6).run()
        _, comm, acc = history.evaluated_points()
        if acc.size and acc.max() >= 0.2:
            phi = rounds_to_accuracy(history, 0.2, smooth_window=1)
            assert phi in comm.astype(int).tolist()
