"""RNG plumbing, tables, smoothing."""

import numpy as np
import pytest

from repro.utils.rng import child_rngs, ensure_rng, spawn_seed
from repro.utils.smoothing import moving_average, running_max
from repro.utils.tables import format_table


class TestRng:
    def test_ensure_rng_from_int_deterministic(self):
        a = ensure_rng(5).normal(size=3)
        b = ensure_rng(5).normal(size=3)
        np.testing.assert_array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_children_are_independent_and_deterministic(self):
        a = [g.normal(size=2) for g in child_rngs(7, 3)]
        b = [g.normal(size=2) for g in child_rngs(7, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
        assert not np.array_equal(a[0], a[1])

    def test_child_count_validation(self):
        with pytest.raises(ValueError):
            child_rngs(0, -1)

    def test_spawn_seed_range(self):
        s = spawn_seed(3)
        assert 0 <= s < 2**63


class TestSmoothing:
    def test_moving_average_warmup(self):
        out = moving_average([1.0, 3.0, 5.0], window=2)
        np.testing.assert_allclose(out, [1.0, 2.0, 4.0])

    def test_window_one_is_identity(self):
        values = [3.0, 1.0, 2.0]
        np.testing.assert_allclose(moving_average(values, 1), values)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_running_max(self):
        np.testing.assert_allclose(
            running_max([1.0, 3.0, 2.0]), [1.0, 3.0, 3.0]
        )


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_cell_count_validated(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_columns_align(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3].rstrip()) or True
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1
