"""Checkpoint/resume of the async engine: a run killed mid-timeline
(in-flight rounds, queued events, advanced virtual clock) and resumed
from its last checkpoint is bitwise-identical to an uninterrupted one —
history, parameters and trace digest."""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt import checkpoint_paths, latest_checkpoint, read_checkpoint
from repro.ckpt.__main__ import main as ckpt_cli
from repro.experiments.ckpt_smoke import federation_parts
from repro.experiments.events_smoke import async_config
from repro.fl.events import AsyncFederatedTrainer
from repro.fl.trainer import FederatedTrainer
from repro.obs import load_trace, trace_digest

REPO_ROOT = Path(__file__).resolve().parent.parent

ROUNDS = 6
CRASH_ROUND = 5


class _Abort(RuntimeError):
    """Simulated crash raised from inside the decide phase."""


def _kwargs(tmp_path, tag):
    return dict(
        rounds=ROUNDS,
        ckpt_dir=str(tmp_path / f"{tag}-ckpt"),
        trace_path=str(tmp_path / f"{tag}-trace.jsonl"),
    )


def _build_engine(kwargs):
    return AsyncFederatedTrainer(
        FederatedTrainer(**federation_parts(**kwargs)),
        async_config=async_config(),
    )


def _run_uninterrupted(kwargs):
    engine = _build_engine(kwargs)
    with engine:
        engine.run(ROUNDS)
    return engine


def _run_crashed_then_resumed(kwargs):
    engine = _build_engine(kwargs)
    trainer = engine.trainer
    seen = {"count": 0}

    def hook(result, decision):
        del result, decision
        # Crash mid-decide of CRASH_ROUND's close — later rounds are
        # already dispatched and in flight, the clock has advanced, and
        # arrival events sit in the queue.
        if len(trainer.history) + 1 == CRASH_ROUND:
            seen["count"] += 1
            if seen["count"] >= 2:
                raise _Abort("simulated crash")

    trainer.on_decision = hook
    with pytest.raises(_Abort):
        with engine:
            engine.run(ROUNDS)

    path = latest_checkpoint(kwargs["ckpt_dir"])
    assert path is not None
    # Several rounds can close inside one arrival event (checkpoints
    # fire between events), so the last saved round may trail the
    # crashed one by more than 1.
    resumed = AsyncFederatedTrainer.restore(
        path, async_config=async_config(), **federation_parts(**kwargs)
    )
    assert 0 < len(resumed.history) < CRASH_ROUND
    with resumed:
        resumed.run(ROUNDS - len(resumed.history))
    return resumed


def _assert_verify_ok(*directories):
    paths = [str(p) for d in directories for p in checkpoint_paths(d)]
    assert paths
    assert ckpt_cli(["verify", *paths]) == 0


def test_crash_resume_is_bitwise_identical(tmp_path):
    full_kw = _kwargs(tmp_path, "full")
    part_kw = _kwargs(tmp_path, "part")
    full = _run_uninterrupted(full_kw)
    resumed = _run_crashed_then_resumed(part_kw)

    assert len(resumed.history) == ROUNDS
    assert resumed.history.to_jsonl() == full.history.to_jsonl()
    assert (
        resumed.trainer.server.global_params.tobytes()
        == full.trainer.server.global_params.tobytes()
    )
    assert trace_digest(load_trace(part_kw["trace_path"])) == trace_digest(
        load_trace(full_kw["trace_path"])
    )
    _assert_verify_ok(full_kw["ckpt_dir"], part_kw["ckpt_dir"])


def test_checkpoint_captures_inflight_rounds(tmp_path):
    """A mid-timeline checkpoint carries the clock, queue and the
    in-flight rounds' computed results."""
    kw = _kwargs(tmp_path, "cap")
    _run_uninterrupted(kw)
    seen_inflight = 0
    for path in checkpoint_paths(kw["ckpt_dir"]):
        ckpt = read_checkpoint(path)
        async_state = ckpt.manifest["async"]
        assert async_state["clock"]["now"] > 0.0
        assert async_state["closes_done"] == len(
            [l for l in ckpt.texts["history.jsonl"].splitlines() if l] ) - 1
        for entry in async_state["inflight"]:
            seen_inflight += 1
            t = entry["iteration"]
            assert t > async_state["closes_done"]
            assert f"async/{t}/global_params" in ckpt.arrays
            assert f"async/{t}/feedback" in ckpt.arrays
            for cid in entry["participants"]:
                assert f"async/{t}/update/{cid}" in ckpt.arrays
    # The smoke config spaces dispatches so rounds overlap checkpoint
    # boundaries: at least one snapshot must carry an in-flight round.
    assert seen_inflight > 0


def test_restore_rejects_staleness_bound_mismatch(tmp_path):
    kw = _kwargs(tmp_path, "mis")
    _run_uninterrupted(kw)
    path = latest_checkpoint(kw["ckpt_dir"])
    with pytest.raises(ValueError, match="staleness_bound"):
        AsyncFederatedTrainer.restore(
            path,
            async_config=async_config(staleness_bound=7),
            **federation_parts(**kw),
        )


def test_sync_checkpoint_refused_by_async_restore(tmp_path):
    kw = dict(rounds=2, ckpt_dir=str(tmp_path / "ckpt"))
    trainer = FederatedTrainer(**federation_parts(**kw))
    with trainer:
        trainer.run(2)
    path = latest_checkpoint(kw["ckpt_dir"])
    with pytest.raises(ValueError, match="no async-engine state"):
        AsyncFederatedTrainer.restore(
            path, async_config=async_config(), **federation_parts(**kw)
        )


def test_sigkill_resume_matches_uninterrupted(tmp_path):
    """A process killed with SIGKILL mid-timeline resumes to the same run."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    kill_kw = _kwargs(tmp_path, "kill")
    cmd = [
        sys.executable, "-m", "repro.experiments.events_smoke",
        "--rounds", str(ROUNDS),
        "--ckpt-dir", kill_kw["ckpt_dir"],
        "--trace", kill_kw["trace_path"],
    ]
    killed = subprocess.run(
        cmd + ["--kill-at", "4"], env=env, cwd=REPO_ROOT, capture_output=True
    )
    assert killed.returncode == -signal.SIGKILL
    latest = latest_checkpoint(kill_kw["ckpt_dir"])
    assert latest is not None and latest.name < "ckpt-00000004.ckpt"

    resumed = subprocess.run(
        cmd + ["--resume"], env=env, cwd=REPO_ROOT,
        capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resuming from" in resumed.stdout

    full_kw = _kwargs(tmp_path, "full")
    full = _run_uninterrupted(full_kw)

    final = read_checkpoint(
        Path(kill_kw["ckpt_dir"]) / f"ckpt-{ROUNDS:08d}.ckpt"
    )
    assert final.texts["history.jsonl"] == full.history.to_jsonl()
    np.testing.assert_array_equal(
        final.arrays["global_params"], full.trainer.server.global_params
    )
    assert trace_digest(load_trace(kill_kw["trace_path"])) == trace_digest(
        load_trace(full_kw["trace_path"])
    )
    _assert_verify_ok(kill_kw["ckpt_dir"], full_kw["ckpt_dir"])
