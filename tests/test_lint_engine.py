"""The repro.lint engine: suppression, config, scoping, CLI plumbing."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    Linter,
    NoGlobalRngRule,
    format_json,
    format_text,
    load_config,
    run_lint,
)
from repro.lint.cli import main
from repro.lint.engine import package_relative_path, parse_suppressions
from repro.lint.rules import ExplicitDtypeRule, UnusedPureResultRule


def lint_str(source, relpath="core/mod.py", rules=None, config=None):
    linter = Linter(config=config or LintConfig(), rules=rules)
    return linter.lint_source(
        textwrap.dedent(source), Path("src/repro") / relpath
    )


BAD_RNG = """\
    import numpy as np

    def draw():
        return np.random.normal(size=3)
"""


class TestEngineBasics:
    def test_violation_format_has_location(self):
        (v,) = lint_str(BAD_RNG, rules=[NoGlobalRngRule])
        assert v.rule == "no-global-rng"
        assert v.line == 4
        assert "core/mod.py" in v.path
        assert f"{v.path}:{v.line}:" in v.format()

    def test_syntax_error_reported_not_raised(self):
        (v,) = lint_str("def broken(:\n", rules=[NoGlobalRngRule])
        assert v.rule == "syntax-error"

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            Linter(rules=[NoGlobalRngRule, NoGlobalRngRule])

    def test_package_relative_path(self):
        assert (
            package_relative_path(Path("/x/src/repro/core/relevance.py"))
            == "core/relevance.py"
        )
        assert package_relative_path(Path("scratch.py")) == "scratch.py"


class TestSuppression:
    def test_line_suppression_by_rule_name(self):
        source = """\
            import numpy as np

            def draw():
                return np.random.normal(size=3)  # repro-lint: disable=no-global-rng
        """
        assert lint_str(source, rules=[NoGlobalRngRule]) == []

    def test_bare_disable_silences_all_rules(self):
        source = """\
            import numpy as np

            def draw():
                return np.random.normal(np.zeros(3))  # repro-lint: disable
        """
        assert (
            lint_str(source, rules=[NoGlobalRngRule, ExplicitDtypeRule]) == []
        )

    def test_other_rule_suppression_does_not_apply(self):
        source = """\
            import numpy as np

            def draw():
                return np.random.normal(size=3)  # repro-lint: disable=explicit-dtype
        """
        assert len(lint_str(source, rules=[NoGlobalRngRule])) == 1

    def test_file_level_directive(self):
        source = """\
            # repro-lint: disable-file=no-global-rng
            import numpy as np

            def draw():
                return np.random.normal(size=3)
        """
        assert lint_str(source, rules=[NoGlobalRngRule]) == []

    def test_file_level_directive_ignored_after_header(self):
        lines = ["import numpy as np"] + ["x = 1"] * 12 + [
            "# repro-lint: disable-file=no-global-rng",
            "y = np.random.normal()",
        ]
        assert len(lint_str("\n".join(lines), rules=[NoGlobalRngRule])) == 1

    def test_parse_suppressions_merges_lists(self):
        per_line, per_file = parse_suppressions(
            ["x = 1  # repro-lint: disable=a, b", "# repro-lint: disable-file=c"]
        )
        assert per_line == {1: {"a", "b"}}
        assert per_file == {"c": 2}


class TestConfig:
    def test_severity_override(self):
        config = LintConfig(rules={"no-global-rng": {"severity": "warning"}})
        (v,) = lint_str(BAD_RNG, rules=[NoGlobalRngRule], config=config)
        assert v.severity == "warning"

    def test_disable_rule(self):
        config = LintConfig(rules={"no-global-rng": {"enabled": False}})
        assert lint_str(BAD_RNG, rules=[NoGlobalRngRule], config=config) == []

    def test_invalid_severity_rejected(self):
        config = LintConfig(rules={"no-global-rng": {"severity": "fatal"}})
        with pytest.raises(ValueError):
            lint_str(BAD_RNG, rules=[NoGlobalRngRule], config=config)

    def test_path_scoping(self):
        source = """\
            import numpy as np
            x = np.zeros(3)
        """
        assert len(lint_str(source, "core/a.py", rules=[ExplicitDtypeRule])) == 1
        assert lint_str(source, "data/a.py", rules=[ExplicitDtypeRule]) == []

    def test_paths_override_widens_scope(self):
        source = """\
            import numpy as np
            x = np.zeros(3)
        """
        config = LintConfig(rules={"explicit-dtype": {"paths": []}})
        assert (
            len(
                lint_str(
                    source, "data/a.py", rules=[ExplicitDtypeRule], config=config
                )
            )
            == 1
        )

    def test_rule_options_flow_through(self):
        source = "frobnicate(1)\n"
        config = LintConfig(
            rules={"unused-pure-result": {"functions": ["frobnicate"]}}
        )
        (v,) = lint_str(source, rules=[UnusedPureResultRule], config=config)
        assert "frobnicate" in v.message

    def test_load_config_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """\
                [tool.repro-lint]
                exclude = ["testdata"]

                [tool.repro-lint.no-global-rng]
                severity = "warning"
                """
            )
        )
        config = load_config(tmp_path)
        assert config.exclude == ("testdata",)
        settings = config.rule_settings("no-global-rng")
        assert settings.severity == "warning"
        assert config.is_excluded(Path("pkg/testdata/x.py"))

    def test_load_config_defaults_when_missing(self, tmp_path):
        config = load_config(tmp_path)
        assert config.rules == {}


class TestTreeWalkAndCli:
    @pytest.fixture
    def bad_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import numpy as np\n\n"
            "__all__ = []\n\n"
            "seed = np.random.randint(0, 10)\n"
        )
        (pkg / "clean.py").write_text("__all__ = []\nVALUE = 1\n")
        return tmp_path

    def test_run_lint_over_directory(self, bad_tree):
        violations = run_lint([str(bad_tree)])
        assert [v.rule for v in violations] == ["no-global-rng"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["does/not/exist"])

    def test_cli_exit_codes_and_text(self, bad_tree, capsys):
        assert main([str(bad_tree)]) == 1
        out = capsys.readouterr().out
        assert "no-global-rng" in out and "1 error(s)" in out
        clean = bad_tree / "repro" / "core" / "clean.py"
        assert main([str(clean)]) == 0

    def test_cli_json_format(self, bad_tree, capsys):
        assert main([str(bad_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_rule"] == {"no-global-rng": 1}
        assert payload["violations"][0]["line"] == 5

    def test_cli_warning_severity_passes_unless_strict(self, bad_tree, capsys):
        (bad_tree / "pyproject.toml").write_text(
            "[tool.repro-lint.no-global-rng]\nseverity = \"warning\"\n"
        )
        assert main([str(bad_tree)]) == 0
        assert main([str(bad_tree), "--strict"]) == 1
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "no-global-rng",
            "explicit-dtype",
            "no-param-mutation",
            "no-wallclock-seed",
            "unused-pure-result",
            "all-exports",
        ):
            assert name in out

    def test_text_formatter_summary_line(self):
        violations = lint_str(BAD_RNG, rules=[NoGlobalRngRule])
        text = format_text(violations)
        assert text.endswith("1 violation(s): 1 error(s), 0 warning(s)")
        assert json.loads(format_json([]))["summary"]["total"] == 0
