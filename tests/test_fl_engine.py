"""The federated engine: accounting, history, aggregation, server, trainer."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import ConstantThreshold
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.accounting import CommunicationLedger
from repro.fl.aggregation import mean_aggregate, weighted_mean_aggregate
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.config import FLConfig
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.server import FLServer
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.nn.serialization import STATUS_MESSAGE_BYTES, update_nbytes
from repro.utils.rng import child_rngs


def _make_update(cid, vec, n=10):
    return ClientUpdate(client_id=cid, update=np.asarray(vec, dtype=float),
                        n_samples=n, train_loss=0.1)


class TestAggregation:
    def test_mean(self):
        agg = mean_aggregate([_make_update(0, [1.0, 0.0]),
                              _make_update(1, [3.0, 2.0])])
        np.testing.assert_allclose(agg, [2.0, 1.0])

    def test_weighted_mean(self):
        agg = weighted_mean_aggregate(
            [_make_update(0, [0.0], n=1), _make_update(1, [4.0], n=3)]
        )
        np.testing.assert_allclose(agg, [3.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_aggregate([])


class TestLedger:
    def test_round_accounting(self):
        ledger = CommunicationLedger(n_params=100)
        ledger.record_round([0, 1, 2], [3, 4])
        assert ledger.accumulated_rounds == 3
        assert ledger.uploaded_bytes == 3 * update_nbytes(100)
        assert ledger.status_bytes == 2 * STATUS_MESSAGE_BYTES
        assert ledger.rounds_per_iteration == [3]

    def test_elimination_counts(self):
        ledger = CommunicationLedger(n_params=10)
        ledger.record_round([0], [1, 2])
        ledger.record_round([0, 1], [2])
        assert ledger.elimination_counts(3) == [0, 1, 2]

    def test_phi_matches_paper_definition(self):
        """Phi = sum_t |S_t| (Eq. 4)."""
        ledger = CommunicationLedger(n_params=10)
        sizes = [3, 0, 5, 2]
        for r in sizes:
            ledger.record_round(list(range(r)), [])
        assert ledger.accumulated_rounds == sum(sizes)


class TestHistory:
    def _record(self, t, metric=None):
        return RoundRecord(
            iteration=t, n_clients=4, n_uploaded=2,
            accumulated_rounds=2 * t, total_bytes=100 * t, lr=0.1,
            mean_train_loss=1.0, mean_score=0.5, threshold=0.5,
            test_metric=metric,
        )

    def test_increasing_iterations_enforced(self):
        history = RunHistory("x")
        history.append(self._record(1))
        with pytest.raises(ValueError):
            history.append(self._record(1))

    def test_evaluated_points_filters_none(self):
        history = RunHistory("x")
        history.append(self._record(1))
        history.append(self._record(2, metric=0.5))
        its, comm, acc = history.evaluated_points()
        assert its.tolist() == [2.0]
        assert acc.tolist() == [0.5]

    def test_upload_fraction(self):
        assert self._record(1).upload_fraction == 0.5

    def test_final_of_empty_raises(self):
        with pytest.raises(ValueError):
            RunHistory("x").final


class TestServer:
    def test_apply_round_moves_model(self):
        server = FLServer(np.zeros(2))
        agg = server.apply_round([_make_update(0, [2.0, 0.0]),
                                  _make_update(1, [0.0, 2.0])])
        np.testing.assert_allclose(agg, [1.0, 1.0])
        np.testing.assert_allclose(server.global_params, [1.0, 1.0])
        np.testing.assert_allclose(server.feedback, [1.0, 1.0])

    def test_empty_round_is_noop(self):
        server = FLServer(np.ones(2))
        assert server.apply_round([]) is None
        np.testing.assert_allclose(server.global_params, [1.0, 1.0])

    def test_shape_mismatch_rejected(self):
        server = FLServer(np.zeros(2))
        with pytest.raises(ValueError):
            server.apply_round([_make_update(0, [1.0, 2.0, 3.0])])

    def test_weighted_server(self):
        server = FLServer(np.zeros(1), weighted=True)
        server.apply_round([_make_update(0, [0.0], n=1),
                            _make_update(1, [4.0], n=3)])
        np.testing.assert_allclose(server.global_params, [3.0])


class _RejectAfterFirstRound(CMFLPolicy):
    """Rejects every update after round 1 (forces empty rounds)."""

    def __init__(self):
        super().__init__(ConstantThreshold(0.0))

    def decide(self, update, ctx):
        d = super().decide(update, ctx)
        if ctx.iteration == 1:
            return d
        return type(d)(upload=False, score=d.score, threshold=1.0)


def _binary_federation(policy, n_clients=4, rounds=6, seed=0, **cfg_kw):
    rngs = child_rngs(seed, n_clients + 3)
    w_true = rngs[0].normal(size=5)
    x = rngs[1].normal(size=(80, 5))
    y = (x @ w_true > 0).astype(np.int64)
    data = Dataset(x, y)
    model = make_logistic_regression(5, rng=rngs[2])
    workspace = ModelWorkspace(
        model, SigmoidBinaryCrossEntropy(), SGD(model.parameters(), 0.5),
        metric=binary_accuracy,
    )
    parts = iid_partition(len(data), n_clients, rng=seed)
    clients = [FLClient(i, data.subset(p), rng=rngs[3 + i])
               for i, p in enumerate(parts)]
    config = FLConfig(rounds=rounds, local_epochs=1, batch_size=10,
                      lr=ConstantLR(0.5), eval_every=1, **cfg_kw)
    return FederatedTrainer(
        workspace, clients, policy, config,
        eval_fn=lambda w: w.evaluate(data.x, data.y),
    ), data


class TestTrainer:
    def test_vanilla_uploads_everyone(self):
        trainer, _ = _binary_federation(VanillaPolicy())
        history = trainer.run()
        assert all(r.n_uploaded == 4 for r in history)
        assert history.final.accumulated_rounds == 4 * 6

    def test_learning_happens(self):
        trainer, _ = _binary_federation(VanillaPolicy(), rounds=10)
        history = trainer.run()
        assert history.final.test_metric > 0.85

    def test_cmfl_threshold_zero_equals_vanilla(self):
        """With v_t = 0 every update passes: CMFL degenerates to vanilla."""
        t1, _ = _binary_federation(VanillaPolicy(), seed=3)
        t2, _ = _binary_federation(CMFLPolicy(ConstantThreshold(0.0)), seed=3)
        h1, h2 = t1.run(), t2.run()
        np.testing.assert_allclose(
            t1.server.global_params, t2.server.global_params
        )
        assert h1.final.accumulated_rounds == h2.final.accumulated_rounds

    def test_cmfl_filters_some_updates(self):
        trainer, _ = _binary_federation(
            CMFLPolicy(ConstantThreshold(0.75)), rounds=8
        )
        history = trainer.run()
        vanilla_phi = 4 * 8
        assert history.final.accumulated_rounds < vanilla_phi

    def test_force_best_keeps_progress_on_empty_rounds(self):
        trainer, _ = _binary_federation(
            _RejectAfterFirstRound(), rounds=5, on_empty_round="force_best",
        )
        history = trainer.run()
        # every round after the first uploads exactly the forced best
        assert [r.n_uploaded for r in history][1:] == [1] * 4

    def test_keep_mode_stalls_model(self):
        trainer, _ = _binary_federation(
            _RejectAfterFirstRound(), rounds=4, on_empty_round="keep",
        )
        trainer.run()
        params_after_round1 = trainer.server.global_params.copy()
        # rounds 2+ upload nothing and the model must stay frozen
        assert trainer.history.records[1].n_uploaded == 0
        assert trainer.history.records[2].n_uploaded == 0
        trainer.run(2)
        np.testing.assert_array_equal(
            trainer.server.global_params, params_after_round1
        )

    def test_reproducible_under_seed(self):
        t1, _ = _binary_federation(VanillaPolicy(), seed=9)
        t2, _ = _binary_federation(VanillaPolicy(), seed=9)
        t1.run()
        t2.run()
        np.testing.assert_array_equal(
            t1.server.global_params, t2.server.global_params
        )

    def test_duplicate_client_ids_rejected(self):
        trainer, data = _binary_federation(VanillaPolicy())
        clients = trainer.clients
        clients[1] = FLClient(0, clients[1].train_data)
        with pytest.raises(ValueError):
            FederatedTrainer(trainer.workspace, clients, VanillaPolicy(),
                             trainer.config)

    def test_on_decision_hook_sees_every_client(self):
        trainer, _ = _binary_federation(VanillaPolicy(), rounds=2)
        calls = []
        trainer.on_decision = lambda res, dec: calls.append(res.client_id)
        trainer.run()
        assert len(calls) == 4 * 2

    def test_run_continues_from_previous_round(self):
        trainer, _ = _binary_federation(VanillaPolicy(), rounds=2)
        trainer.run(2)
        trainer.run(3)
        assert [r.iteration for r in trainer.history] == [1, 2, 3, 4, 5]


class TestClientAndWorkspace:
    def test_update_is_parameter_drift(self):
        trainer, _ = _binary_federation(VanillaPolicy())
        client = trainer.clients[0]
        start = trainer.server.global_params.copy()
        result = client.compute_update(
            trainer.workspace, start, lr=0.5, local_epochs=1, batch_size=10
        )
        np.testing.assert_allclose(
            start + result.update, trainer.workspace.get_flat()
        )
        assert result.n_samples == client.n_samples
        assert np.isfinite(result.train_loss)

    def test_negative_lr_rejected(self):
        trainer, _ = _binary_federation(VanillaPolicy())
        with pytest.raises(ValueError):
            trainer.clients[0].compute_update(
                trainer.workspace, trainer.server.global_params,
                lr=-0.1, local_epochs=1, batch_size=4,
            )

    def test_workspace_evaluate(self):
        trainer, data = _binary_federation(VanillaPolicy())
        loss, metric = trainer.workspace.evaluate(data.x, data.y)
        assert np.isfinite(loss)
        assert 0.0 <= metric <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(rounds=0)
        with pytest.raises(ValueError):
            FLConfig(on_empty_round="bogus")


class TestLedgerProperties:
    """Hypothesis checks on the communication ledger's conservation laws."""

    def test_bytes_are_linear_in_uploads(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.nn.serialization import STATUS_MESSAGE_BYTES, update_nbytes

        @settings(max_examples=40)
        @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)),
                        min_size=1, max_size=20),
               st.integers(1, 10_000))
        def check(rounds, n_params):
            ledger = CommunicationLedger(n_params=n_params)
            total_up, total_skip = 0, 0
            next_id = 0
            for ups, skips in rounds:
                up_ids = list(range(next_id, next_id + ups))
                skip_ids = list(range(next_id + ups, next_id + ups + skips))
                next_id += ups + skips
                ledger.record_round(up_ids, skip_ids)
                total_up += ups
                total_skip += skips
            assert ledger.accumulated_rounds == total_up
            assert ledger.uploaded_bytes == total_up * update_nbytes(n_params)
            assert ledger.status_bytes == total_skip * STATUS_MESSAGE_BYTES
            assert sum(ledger.rounds_per_iteration) == total_up

        check()


class _PoisonedClient(FLClient):
    """Returns a NaN-poisoned update from ``poison_round`` onwards."""

    def __init__(self, *args, poison_round=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.poison_round = poison_round
        self._round = 0

    def compute_update(self, *args, **kwargs):
        result = super().compute_update(*args, **kwargs)
        self._round += 1
        if self._round >= self.poison_round:
            result.update[0] = np.nan
        return result


class TestCheckFinite:
    """The FLConfig.check_finite runtime sanitizer."""

    def test_clean_run_passes_with_guard_on(self):
        trainer, _ = _binary_federation(VanillaPolicy(), check_finite=True)
        history = trainer.run()
        assert len(history) == 6

    def test_poisoned_client_named_in_error(self):
        trainer, _ = _binary_federation(VanillaPolicy(), check_finite=True)
        bad = trainer.clients[2]
        trainer.clients[2] = _PoisonedClient(
            bad.client_id, bad.train_data, rng=0
        )
        with pytest.raises(FloatingPointError, match=r"client 2 in round 2"):
            trainer.run()
        # round 1 completed before the poison hit
        assert len(trainer.history) == 1

    def test_guard_off_by_default(self):
        trainer, _ = _binary_federation(VanillaPolicy(), rounds=3)
        bad = trainer.clients[2]
        trainer.clients[2] = _PoisonedClient(
            bad.client_id, bad.train_data, rng=0
        )
        trainer.run()  # silently propagates NaN -- the guard exists for this
        assert np.isnan(trainer.server.global_params).any()
