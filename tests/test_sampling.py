"""Client sampling and failure injection."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaPolicy
from repro.data.dataset import Dataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.sampling import (
    FullParticipation,
    UniformSampler,
    UnreliableParticipation,
)
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.utils.rng import child_rngs


def _clients(n=10, per=12, seed=0):
    rngs = child_rngs(seed, n + 2)
    w = rngs[0].normal(size=4)
    out = []
    for i in range(n):
        x = rngs[1].normal(size=(per, 4))
        y = (x @ w > 0).astype(np.int64)
        out.append(FLClient(i, Dataset(x, y), rng=rngs[2 + i]))
    return out


class TestSamplers:
    def test_full_participation(self):
        clients = _clients(5)
        assert FullParticipation().select(1, clients) == clients

    def test_uniform_fraction_size(self):
        clients = _clients(10)
        sampler = UniformSampler(0.3, rng=0)
        selected = sampler.select(1, clients)
        assert len(selected) == 3
        assert len({c.client_id for c in selected}) == 3

    def test_uniform_changes_across_rounds(self):
        clients = _clients(10)
        sampler = UniformSampler(0.5, rng=1)
        a = {c.client_id for c in sampler.select(1, clients)}
        b = {c.client_id for c in sampler.select(2, clients)}
        c = {c.client_id for c in sampler.select(3, clients)}
        assert len({frozenset(a), frozenset(b), frozenset(c)}) > 1

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            UniformSampler(0.0)
        with pytest.raises(ValueError):
            UniformSampler(1.5)

    def test_tiny_fraction_selects_at_least_one(self):
        clients = _clients(10)
        assert len(UniformSampler(0.01, rng=0).select(1, clients)) == 1

    def test_unreliable_drops_some(self):
        clients = _clients(20)
        sampler = UnreliableParticipation(FullParticipation(), 0.5, rng=0)
        sizes = [len(sampler.select(t, clients)) for t in range(5)]
        assert all(1 <= s <= 20 for s in sizes)
        assert min(sizes) < 20

    def test_unreliable_never_empty(self):
        clients = _clients(3)
        sampler = UnreliableParticipation(FullParticipation(), 0.99, rng=0)
        for t in range(20):
            assert len(sampler.select(t, clients)) >= 1

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            UnreliableParticipation(FullParticipation(), 1.0)


class TestTrainerIntegration:
    def _trainer(self, sampler, rounds=4):
        clients = _clients(8)
        model = make_logistic_regression(4, rng=3)
        workspace = ModelWorkspace(model, SigmoidBinaryCrossEntropy(),
                                   SGD(model.parameters(), 0.5))
        config = FLConfig(rounds=rounds, local_epochs=1, batch_size=6,
                          lr=ConstantLR(0.3))
        return FederatedTrainer(workspace, clients, VanillaPolicy(), config,
                                sampler=sampler)

    def test_sampled_round_uploads_only_participants(self):
        trainer = self._trainer(UniformSampler(0.25, rng=0))
        history = trainer.run()
        assert all(r.n_clients == 2 for r in history)
        assert all(r.n_uploaded == 2 for r in history)
        assert history.final.accumulated_rounds == 2 * 4

    def test_default_is_full_participation(self):
        trainer = self._trainer(None)
        history = trainer.run()
        assert all(r.n_clients == 8 for r in history)

    def test_learning_still_happens_with_sampling(self):
        trainer = self._trainer(UniformSampler(0.5, rng=2), rounds=8)
        history = trainer.run()
        losses = history.train_losses()
        assert losses[-1] < losses[0]

    def test_failure_injection_run_completes(self):
        sampler = UnreliableParticipation(UniformSampler(0.8, rng=1), 0.3,
                                          rng=2)
        trainer = self._trainer(sampler, rounds=6)
        history = trainer.run()
        assert len(history) == 6
        assert np.all(np.isfinite(trainer.server.global_params))
