"""Client sampling and failure injection."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaPolicy
from repro.data.dataset import Dataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.sampling import (
    AvailabilitySampler,
    FullParticipation,
    UniformSampler,
    UnreliableParticipation,
)
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.utils.rng import child_rngs


def _clients(n=10, per=12, seed=0):
    rngs = child_rngs(seed, n + 2)
    w = rngs[0].normal(size=4)
    out = []
    for i in range(n):
        x = rngs[1].normal(size=(per, 4))
        y = (x @ w > 0).astype(np.int64)
        out.append(FLClient(i, Dataset(x, y), rng=rngs[2 + i]))
    return out


class TestSamplers:
    def test_full_participation(self):
        clients = _clients(5)
        assert FullParticipation().select(1, clients) == clients

    def test_uniform_fraction_size(self):
        clients = _clients(10)
        sampler = UniformSampler(0.3, rng=0)
        selected = sampler.select(1, clients)
        assert len(selected) == 3
        assert len({c.client_id for c in selected}) == 3

    def test_uniform_changes_across_rounds(self):
        clients = _clients(10)
        sampler = UniformSampler(0.5, rng=1)
        a = {c.client_id for c in sampler.select(1, clients)}
        b = {c.client_id for c in sampler.select(2, clients)}
        c = {c.client_id for c in sampler.select(3, clients)}
        assert len({frozenset(a), frozenset(b), frozenset(c)}) > 1

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            UniformSampler(0.0)
        with pytest.raises(ValueError):
            UniformSampler(1.5)

    def test_tiny_fraction_selects_at_least_one(self):
        clients = _clients(10)
        assert len(UniformSampler(0.01, rng=0).select(1, clients)) == 1

    def test_unreliable_drops_some(self):
        clients = _clients(20)
        sampler = UnreliableParticipation(FullParticipation(), 0.5, rng=0)
        sizes = [len(sampler.select(t, clients)) for t in range(5)]
        assert all(1 <= s <= 20 for s in sizes)
        assert min(sizes) < 20

    def test_unreliable_never_empty(self):
        clients = _clients(3)
        sampler = UnreliableParticipation(FullParticipation(), 0.99, rng=0)
        for t in range(20):
            assert len(sampler.select(t, clients)) >= 1

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            UnreliableParticipation(FullParticipation(), 1.0)


class TestIndexSpace:
    """select_indices is the primary form; select derives from it."""

    def test_select_matches_select_indices(self):
        clients = _clients(10)
        a = UniformSampler(0.4, rng=3)
        b = UniformSampler(0.4, rng=3)
        selected = a.select(1, clients)
        indices = b.select_indices(1, 10)
        assert [c.client_id for c in selected] == [int(i) for i in indices]

    def test_uniform_draws_unchanged_by_index_rewrite(self):
        # The exact RNG consumption of the pre-index-space sampler:
        # one choice(n, k, replace=False) then an index sort.  Existing
        # run digests depend on it.
        rng = np.random.default_rng(7)
        expected = sorted(rng.choice(10, size=4, replace=False))
        got = UniformSampler(0.4, rng=7).select_indices(5, 10)
        assert [int(i) for i in got] == [int(i) for i in expected]

    def test_unreliable_draws_unchanged_by_vectorization(self):
        # One rng.random(k) consumes the PCG64 stream exactly like k
        # scalar rng.random() calls, so survivors are bit-identical to
        # the old per-client dropout loop.
        rng_choice = np.random.default_rng(9)
        rng_drop = np.random.default_rng(11)
        base = sorted(rng_choice.choice(20, size=8, replace=False))
        draws = [rng_drop.random() for _ in base]
        expected = [i for i, d in zip(base, draws) if d >= 0.4]
        if not expected:
            expected = [base[rng_drop.integers(0, len(base))]]
        got = UnreliableParticipation(
            UniformSampler(0.4, rng=np.random.default_rng(9)),
            0.4,
            rng=np.random.default_rng(11),
        ).select_indices(1, 20)
        assert [int(i) for i in got] == [int(i) for i in expected]

    def test_full_participation_indices(self):
        idx = FullParticipation().select_indices(3, 7)
        assert idx.tolist() == list(range(7))

    def test_uniform_count_mode(self):
        sampler = UniformSampler(count=5, rng=0)
        idx = sampler.select_indices(1, 1_000_000)
        assert len(idx) == 5
        assert len(set(idx.tolist())) == 5
        assert all(0 <= i < 1_000_000 for i in idx)
        with pytest.raises(ValueError):
            UniformSampler(count=50, rng=0).select_indices(1, 10)

    def test_exactly_one_of_fraction_and_count(self):
        with pytest.raises(ValueError):
            UniformSampler()
        with pytest.raises(ValueError):
            UniformSampler(0.5, count=3)
        with pytest.raises(ValueError):
            UniformSampler(count=0)

    def test_state_dict_round_trips_count_sampler(self):
        a = UniformSampler(count=4, rng=5)
        a.select_indices(1, 100)
        state = a.state_dict()
        b = UniformSampler(count=4, rng=0)
        b.load_state_dict(state)
        assert a.select_indices(2, 100).tolist() == (
            b.select_indices(2, 100).tolist()
        )


class TestAvailabilitySampler:
    def test_cohort_size_and_bounds(self):
        sampler = AvailabilitySampler(10, [0.1, 0.5, 1.0], rng=0)
        for t in range(1, 8):
            idx = sampler.select_indices(t, 1_000)
            assert len(idx) == 10
            assert len(set(idx.tolist())) == 10
            assert all(0 <= i < 1_000 for i in idx)

    def test_window_is_pure_function_of_iteration(self):
        # Same round, fresh RNG with the same seed: same window, same
        # cohort.  The trace position depends on t alone, never on how
        # many rounds ran before.
        a = AvailabilitySampler(5, [0.2], rng=3)
        b = AvailabilitySampler(5, [0.2], rng=3)
        a.select_indices(1, 500)  # advance a's RNG one round
        state = a.state_dict()
        b.load_state_dict(state)
        assert a.select_indices(2, 500).tolist() == (
            b.select_indices(2, 500).tolist()
        )

    def test_trace_cycles(self):
        sampler = AvailabilitySampler(2, [0.01, 1.0], rng=1)
        assert sampler.available(1, 1_000) == 10
        assert sampler.available(2, 1_000) == 1_000
        assert sampler.available(3, 1_000) == 10

    def test_availability_floor_is_cohort(self):
        sampler = AvailabilitySampler(50, [0.001], rng=1)
        assert sampler.available(1, 1_000) == 50
        idx = sampler.select_indices(1, 1_000)
        assert len(idx) == 50

    def test_validates(self):
        with pytest.raises(ValueError):
            AvailabilitySampler(0, [0.5])
        with pytest.raises(ValueError):
            AvailabilitySampler(5, [])
        with pytest.raises(ValueError):
            AvailabilitySampler(5, [0.0])
        with pytest.raises(ValueError):
            AvailabilitySampler(5, [0.5]).select_indices(1, 3)


class TestTrainerIntegration:
    def _trainer(self, sampler, rounds=4):
        clients = _clients(8)
        model = make_logistic_regression(4, rng=3)
        workspace = ModelWorkspace(model, SigmoidBinaryCrossEntropy(),
                                   SGD(model.parameters(), 0.5))
        config = FLConfig(rounds=rounds, local_epochs=1, batch_size=6,
                          lr=ConstantLR(0.3))
        return FederatedTrainer(workspace, clients, VanillaPolicy(), config,
                                sampler=sampler)

    def test_sampled_round_uploads_only_participants(self):
        trainer = self._trainer(UniformSampler(0.25, rng=0))
        history = trainer.run()
        assert all(r.n_clients == 2 for r in history)
        assert all(r.n_uploaded == 2 for r in history)
        assert history.final.accumulated_rounds == 2 * 4

    def test_default_is_full_participation(self):
        trainer = self._trainer(None)
        history = trainer.run()
        assert all(r.n_clients == 8 for r in history)

    def test_learning_still_happens_with_sampling(self):
        trainer = self._trainer(UniformSampler(0.5, rng=2), rounds=8)
        history = trainer.run()
        losses = history.train_losses()
        assert losses[-1] < losses[0]

    def test_failure_injection_run_completes(self):
        sampler = UnreliableParticipation(UniformSampler(0.8, rng=1), 0.3,
                                          rng=2)
        trainer = self._trainer(sampler, rounds=6)
        history = trainer.run()
        assert len(history) == 6
        assert np.all(np.isfinite(trainer.server.global_params))
