"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import LinearDecayThreshold
from repro.data.dataset import Dataset
from repro.data.vocab import Vocabulary
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.utils.rng import child_rngs
from repro.utils.smoothing import moving_average


def _trainer(policy, client_sizes, rounds=3, seed=0, **cfg_kw):
    rngs = child_rngs(seed, len(client_sizes) + 3)
    w = rngs[0].normal(size=4)
    clients = []
    for i, size in enumerate(client_sizes):
        x = rngs[1].normal(size=(size, 4))
        y = (x @ w > 0).astype(np.int64)
        clients.append(FLClient(i, Dataset(x, y), rng=rngs[3 + i]))
    model = make_logistic_regression(4, rng=rngs[2])
    workspace = ModelWorkspace(
        model, SigmoidBinaryCrossEntropy(), SGD(model.parameters(), 0.5),
        metric=binary_accuracy,
    )
    config = FLConfig(rounds=rounds, local_epochs=1, batch_size=8,
                      lr=ConstantLR(0.3), **cfg_kw)
    return FederatedTrainer(workspace, clients, policy, config)


class TestTinyClients:
    def test_single_sample_client_works(self):
        trainer = _trainer(VanillaPolicy(), [1, 10, 10])
        history = trainer.run()
        assert len(history) == 3
        assert all(np.isfinite(r.mean_train_loss) for r in history)

    def test_wildly_unbalanced_clients(self):
        trainer = _trainer(VanillaPolicy(), [1, 100])
        trainer.run()
        assert np.all(np.isfinite(trainer.server.global_params))

    def test_weighted_aggregation_path(self):
        trainer = _trainer(VanillaPolicy(), [2, 50],
                           weighted_aggregation=True)
        trainer.run()
        assert np.all(np.isfinite(trainer.server.global_params))


class TestSchedulesInTrainer:
    def test_linear_decay_threshold_in_trainer(self):
        trainer = _trainer(
            CMFLPolicy(LinearDecayThreshold(0.8, 0.2, 3)), [10, 10], rounds=4
        )
        history = trainer.run()
        thresholds = [r.threshold for r in history]
        assert thresholds[0] == pytest.approx(0.8)
        assert thresholds[-1] == pytest.approx(0.2)

    def test_no_eval_fn_leaves_metrics_none(self):
        trainer = _trainer(VanillaPolicy(), [10, 10])
        history = trainer.run()
        assert all(r.test_metric is None for r in history)
        its, comm, acc = history.evaluated_points()
        assert its.size == 0

    def test_feedback_staleness_in_trainer(self):
        trainer = _trainer(VanillaPolicy(), [10, 10], rounds=5)
        trainer.server.estimator.staleness = 3
        trainer.run()
        assert len(trainer.history) == 5


class TestNumericalEdges:
    def test_moving_average_window_larger_than_series(self):
        out = moving_average([1.0, 2.0], window=10)
        np.testing.assert_allclose(out, [1.0, 1.5])

    def test_vocab_empty_encode(self):
        vocab = Vocabulary(["a"])
        assert vocab.encode([]).size == 0

    def test_ledger_total_megabytes(self):
        trainer = _trainer(VanillaPolicy(), [5, 5], rounds=2)
        trainer.run()
        assert trainer.ledger.total_megabytes() == pytest.approx(
            trainer.ledger.total_bytes / 1e6
        )

    def test_history_scores_and_iterations_views(self):
        trainer = _trainer(VanillaPolicy(), [5, 5], rounds=3)
        history = trainer.run()
        assert history.iterations().tolist() == [1, 2, 3]
        assert history.scores().shape == (3,)
        assert history.total_bytes().tolist() == sorted(
            history.total_bytes().tolist()
        )

    def test_batch_larger_than_dataset(self):
        ds = Dataset(np.arange(4)[:, None].astype(float), np.arange(4))
        batches = list(ds.batches(100, rng=0))
        assert len(batches) == 1
        assert len(batches[0][1]) == 4
