"""Model factories: shapes, parameter counts, trainability."""

import numpy as np
import pytest

from repro.models.digits_cnn import make_digits_cnn
from repro.models.linear import make_logistic_regression
from repro.models.nwp_lstm import make_nwp_lstm
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.serialization import parameter_count


class TestDigitsCNN:
    def test_forward_shape(self):
        model = make_digits_cnn(image_size=20, channels=(2, 4), hidden=8, rng=0)
        out = model.forward(np.zeros((3, 1, 20, 20)))
        assert out.shape == (3, 10)

    def test_28px_paper_geometry(self):
        model = make_digits_cnn(image_size=28, channels=(2, 4), hidden=8, rng=0)
        out = model.forward(np.zeros((1, 1, 28, 28)))
        assert out.shape == (1, 10)

    def test_bad_image_size_rejected(self):
        with pytest.raises(ValueError):
            make_digits_cnn(image_size=17)

    def test_deterministic(self):
        a = make_digits_cnn(rng=4)
        b = make_digits_cnn(rng=4)
        from repro.nn.serialization import flatten_parameters

        np.testing.assert_array_equal(
            flatten_parameters(a), flatten_parameters(b)
        )

    def test_learns_a_tiny_problem(self, rng):
        from repro.data.synthetic_digits import make_digit_dataset

        ds = make_digit_dataset(100, rng=0, image_size=20)
        model = make_digits_cnn(image_size=20, channels=(4, 8), hidden=16, rng=1)
        loss = SoftmaxCrossEntropy()
        opt = SGD(model.parameters(), 0.1)
        epoch_losses = []
        for epoch in range(14):
            values = []
            for xb, yb in ds.batches(10, rng=rng):
                model.zero_grad()
                values.append(loss.forward(model.forward(xb, training=True), yb))
                model.backward(loss.backward())
                opt.step()
            epoch_losses.append(np.mean(values))
        assert epoch_losses[-1] < epoch_losses[0] * 0.8


class TestNWPLSTM:
    def test_forward_shape(self):
        model = make_nwp_lstm(50, embedding_dim=8, hidden=12, rng=0)
        ids = np.zeros((4, 10), dtype=np.int64)
        out = model.forward(ids)
        assert out.shape == (4, 50)

    def test_single_layer_variant(self):
        model = make_nwp_lstm(50, embedding_dim=8, hidden=12, n_layers=1, rng=0)
        out = model.forward(np.zeros((2, 5), dtype=np.int64))
        assert out.shape == (2, 50)

    def test_layer_count_validated(self):
        with pytest.raises(ValueError):
            make_nwp_lstm(50, n_layers=0)

    def test_parameter_count_grows_with_hidden(self):
        small = parameter_count(make_nwp_lstm(50, hidden=8, rng=0))
        large = parameter_count(make_nwp_lstm(50, hidden=32, rng=0))
        assert large > small


class TestLogReg:
    def test_zero_init(self):
        model = make_logistic_regression(5, zero_init=True)
        out = model.forward(np.ones((3, 5)))
        np.testing.assert_array_equal(out, np.zeros((3, 1)))

    def test_shape(self):
        model = make_logistic_regression(5, rng=0)
        assert model.forward(np.ones((3, 5))).shape == (3, 1)
