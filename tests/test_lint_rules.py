"""Each repro.lint rule: firing and suppression paths."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, Linter
from repro.lint.rules import (
    AllExportsRule,
    ExplicitDtypeRule,
    MetricNameRegistryRule,
    NoGlobalRngRule,
    NoParamMutationRule,
    NoPrintInLibraryRule,
    NoSequentialClientLoopRule,
    NoWallclockSeedRule,
    UnusedPureResultRule,
)


def lint(source, rule, relpath="core/mod.py", config=None):
    linter = Linter(config=config or LintConfig(), rules=[rule])
    return linter.lint_source(
        textwrap.dedent(source), Path("src/repro") / relpath
    )


def rules_fired(source, rule, **kwargs):
    return [v.rule for v in lint(source, rule, **kwargs)]


class TestNoGlobalRng:
    def test_legacy_numpy_call_fires(self):
        source = """\
            import numpy as np
            x = np.random.normal(size=3)
        """
        assert rules_fired(source, NoGlobalRngRule) == ["no-global-rng"]

    def test_aliased_import_cannot_dodge(self):
        source = """\
            import numpy.random as npr
            x = npr.rand(3)
        """
        assert rules_fired(source, NoGlobalRngRule) == ["no-global-rng"]

    def test_from_numpy_import_random(self):
        source = """\
            from numpy import random as nr
            x = nr.shuffle([1, 2])
        """
        assert rules_fired(source, NoGlobalRngRule) == ["no-global-rng"]

    def test_stdlib_random_import_fires(self):
        assert rules_fired("import random\n", NoGlobalRngRule) == [
            "no-global-rng"
        ]
        assert rules_fired(
            "from random import choice\n", NoGlobalRngRule
        ) == ["no-global-rng"]

    def test_from_numpy_random_import_legacy_fn(self):
        assert rules_fired(
            "from numpy.random import rand\n", NoGlobalRngRule
        ) == ["no-global-rng"]

    def test_generator_api_allowed(self):
        source = """\
            import numpy as np
            from numpy.random import default_rng

            gen = np.random.default_rng(0)
            seq = np.random.SeedSequence(1)
            kind = np.random.Generator
            other = default_rng(2)
            y = gen.normal(size=3)
        """
        assert rules_fired(source, NoGlobalRngRule) == []

    def test_unrelated_attribute_chains_ignored(self):
        source = """\
            class Box:
                random = 1

            b = Box()
            x = b.random
        """
        assert rules_fired(source, NoGlobalRngRule) == []

    def test_suppression(self):
        source = """\
            import numpy as np
            x = np.random.normal()  # repro-lint: disable=no-global-rng
        """
        assert rules_fired(source, NoGlobalRngRule) == []


class TestExplicitDtype:
    def test_dtype_less_constructors_fire(self):
        source = """\
            import numpy as np
            a = np.zeros(3)
            b = np.ones((2, 2))
            c = np.empty(4)
            d = np.full((2, 2), 7)
        """
        assert rules_fired(source, ExplicitDtypeRule) == ["explicit-dtype"] * 4

    def test_dtype_keyword_ok(self):
        source = """\
            import numpy as np
            a = np.zeros(3, dtype=float)
            b = np.full((2, 2), 7, dtype=np.float32)
        """
        assert rules_fired(source, ExplicitDtypeRule) == []

    def test_positional_dtype_ok(self):
        source = """\
            import numpy as np
            a = np.zeros(3, float)
            b = np.full((2, 2), 7.0, float)
        """
        assert rules_fired(source, ExplicitDtypeRule) == []

    def test_outside_hot_paths_not_flagged(self):
        source = """\
            import numpy as np
            a = np.zeros(3)
        """
        assert rules_fired(source, ExplicitDtypeRule, relpath="data/a.py") == []

    def test_zeros_like_not_flagged(self):
        source = """\
            import numpy as np
            a = np.zeros_like([1.0, 2.0])
        """
        assert rules_fired(source, ExplicitDtypeRule) == []

    def test_suppression(self):
        source = """\
            import numpy as np
            a = np.zeros(3)  # repro-lint: disable=explicit-dtype
        """
        assert rules_fired(source, ExplicitDtypeRule) == []


class TestNoParamMutation:
    def test_augmented_assignment_fires(self):
        source = """\
            def f(u):
                u += 1
                return u
        """
        assert rules_fired(source, NoParamMutationRule) == ["no-param-mutation"]

    def test_subscript_assignment_fires(self):
        source = """\
            def f(u):
                u[0] = 3.0
                return u
        """
        assert rules_fired(source, NoParamMutationRule) == ["no-param-mutation"]

    def test_slice_augassign_fires(self):
        source = """\
            def f(u):
                u[1:] *= 2.0
        """
        assert rules_fired(source, NoParamMutationRule) == ["no-param-mutation"]

    def test_mutating_method_fires(self):
        source = """\
            def f(u):
                u.sort()
        """
        assert rules_fired(source, NoParamMutationRule) == ["no-param-mutation"]

    def test_rebound_parameter_not_flagged(self):
        source = """\
            def f(u):
                u = u.copy()
                u += 1
                return u
        """
        assert rules_fired(source, NoParamMutationRule) == []

    def test_locals_and_self_not_flagged(self):
        source = """\
            class A:
                def f(self, n):
                    self.total += n
                    buf = [0] * n
                    buf[0] = 1
                    buf.sort()
                    return buf
        """
        assert rules_fired(source, NoParamMutationRule) == []

    def test_nested_function_sees_outer_params(self):
        source = """\
            def outer(u):
                def inner():
                    u[0] = 1.0
                return inner
        """
        assert rules_fired(source, NoParamMutationRule) == ["no-param-mutation"]

    def test_out_of_scope_path_not_flagged(self):
        source = """\
            def f(u):
                u += 1
        """
        assert (
            rules_fired(source, NoParamMutationRule, relpath="fl/trainer.py")
            == []
        )

    def test_suppression(self):
        source = """\
            def f(u):
                u += 1  # repro-lint: disable=no-param-mutation
        """
        assert rules_fired(source, NoParamMutationRule) == []


class TestNoWallclockSeed:
    def test_seed_assignment_fires(self):
        source = """\
            import time
            seed = int(time.time())
        """
        assert rules_fired(source, NoWallclockSeedRule) == ["no-wallclock-seed"]

    def test_default_rng_argument_fires(self):
        source = """\
            import time
            import numpy as np
            gen = np.random.default_rng(int(time.time()))
        """
        assert rules_fired(source, NoWallclockSeedRule) == ["no-wallclock-seed"]

    def test_seed_keyword_fires(self):
        source = """\
            import time

            def run(seed=None):
                pass

            run(seed=time.time_ns())
        """
        assert rules_fired(source, NoWallclockSeedRule) == ["no-wallclock-seed"]

    def test_datetime_experiment_id_fires(self):
        source = """\
            from datetime import datetime
            run_id = datetime.now().strftime("%s")
        """
        assert rules_fired(source, NoWallclockSeedRule) == ["no-wallclock-seed"]

    def test_benign_timing_not_flagged(self):
        source = """\
            import time
            start = time.time()
            elapsed = time.time() - start
        """
        assert rules_fired(source, NoWallclockSeedRule) == []

    def test_perf_counter_not_flagged(self):
        source = """\
            import time
            seed_timer = time.perf_counter()
        """
        assert rules_fired(source, NoWallclockSeedRule) == []

    def test_suppression(self):
        source = """\
            import time
            seed = int(time.time())  # repro-lint: disable=no-wallclock-seed
        """
        assert rules_fired(source, NoWallclockSeedRule) == []


class TestUnusedPureResult:
    def test_bare_call_statement_fires(self):
        source = """\
            from repro.core.relevance import relevance
            relevance([1.0], [1.0])
        """
        assert rules_fired(source, UnusedPureResultRule) == [
            "unused-pure-result"
        ]

    def test_method_call_fires(self):
        source = """\
            codec.encode(update)
        """
        assert rules_fired(source, UnusedPureResultRule) == [
            "unused-pure-result"
        ]

    def test_used_result_not_flagged(self):
        source = """\
            from repro.core.relevance import relevance
            score = relevance([1.0], [1.0])
            scores = [relevance([1.0], [x]) for x in (1.0, -1.0)]
        """
        assert rules_fired(source, UnusedPureResultRule) == []

    def test_impure_call_statement_not_flagged(self):
        source = """\
            print("hello")
            items.append(3)
        """
        assert rules_fired(source, UnusedPureResultRule) == []

    def test_suppression(self):
        source = """\
            from repro.core.relevance import relevance
            relevance([1.0], [1.0])  # repro-lint: disable=unused-pure-result
        """
        assert rules_fired(source, UnusedPureResultRule) == []


class TestAllExports:
    def test_missing_all_fires(self):
        source = """\
            def public():
                return 1
        """
        assert rules_fired(source, AllExportsRule) == ["all-exports"]

    def test_complete_all_passes(self):
        source = """\
            __all__ = ["CONST", "Public", "public"]

            CONST = 3

            def public():
                return 1

            class Public:
                pass

            def _private():
                return 2
        """
        assert rules_fired(source, AllExportsRule) == []

    def test_public_def_missing_from_all_fires(self):
        source = """\
            __all__ = ["a"]

            def a():
                pass

            def b():
                pass
        """
        (v,) = lint(source, AllExportsRule)
        assert "'b'" in v.message

    def test_undefined_export_fires(self):
        source = """\
            __all__ = ["ghost"]
        """
        (v,) = lint(source, AllExportsRule)
        assert "ghost" in v.message

    def test_duplicate_entry_fires(self):
        source = """\
            __all__ = ["a", "a"]

            def a():
                pass
        """
        (v,) = lint(source, AllExportsRule)
        assert "duplicate" in v.message

    def test_non_literal_all_fires(self):
        source = """\
            names = ["a"]
            __all__ = names
        """
        (v,) = lint(source, AllExportsRule)
        assert "literal" in v.message

    def test_dynamic_extension_skips_completeness(self):
        source = """\
            __all__ = ["a"]
            __all__ += extra_names

            def a():
                pass

            def b():
                pass
        """
        assert rules_fired(source, AllExportsRule) == []

    def test_private_module_skipped(self):
        assert (
            rules_fired("def f():\n    pass\n", AllExportsRule,
                        relpath="core/_private.py")
            == []
        )

    def test_conditional_bindings_count(self):
        source = """\
            __all__ = ["tomllib"]

            try:
                import tomllib
            except ImportError:
                tomllib = None
        """
        assert rules_fired(source, AllExportsRule) == []

    def test_file_level_suppression(self):
        source = """\
            # repro-lint: disable-file=all-exports
            def public():
                pass
        """
        assert rules_fired(source, AllExportsRule) == []



class TestNoSequentialClientLoop:
    def test_for_loop_fires(self):
        source = """\
            def run_round(clients, workspace, global_params):
                results = []
                for client in clients:
                    results.append(client.compute_update(workspace, global_params))
                return results
        """
        assert rules_fired(
            source, NoSequentialClientLoopRule, relpath="fl/trainer.py"
        ) == ["no-sequential-client-loop"]

    def test_comprehension_fires(self):
        source = """\
            def run_round(clients, workspace, global_params):
                return [client.compute_update(workspace, global_params)
                        for client in clients]
        """
        assert rules_fired(
            source, NoSequentialClientLoopRule, relpath="experiments/probe.py"
        ) == ["no-sequential-client-loop"]

    def test_while_loop_fires(self):
        source = """\
            def drain(queue, workspace, gp):
                while queue:
                    queue.pop().compute_update(workspace, gp)
        """
        assert rules_fired(
            source, NoSequentialClientLoopRule, relpath="fl/probe.py"
        ) == ["no-sequential-client-loop"]

    def test_nested_loops_report_once(self):
        source = """\
            def run(rounds, clients, workspace, gp):
                for _ in range(rounds):
                    for client in clients:
                        client.compute_update(workspace, gp)
        """
        fired = rules_fired(
            source, NoSequentialClientLoopRule, relpath="fl/probe.py"
        )
        assert fired == ["no-sequential-client-loop"]

    def test_executor_module_is_the_engine(self):
        source = """\
            def run_round(self, plan, participants):
                return [client.compute_update(self._workspace, plan.global_params)
                        for client in participants]
        """
        assert rules_fired(
            source, NoSequentialClientLoopRule, relpath="fl/executor.py"
        ) == []

    def test_allow_in_option(self):
        source = """\
            def run(clients, ws, gp):
                for client in clients:
                    client.compute_update(ws, gp)
        """
        config = LintConfig(
            rules={"no-sequential-client-loop": {"allow_in": ["custom/engine.py"]}}
        )
        assert rules_fired(
            source, NoSequentialClientLoopRule,
            relpath="custom/engine.py", config=config,
        ) == []
        assert rules_fired(
            source, NoSequentialClientLoopRule,
            relpath="fl/other.py", config=config,
        ) == ["no-sequential-client-loop"]

    def test_non_client_loops_ignored(self):
        source = """\
            def run(clients, ws, gp):
                updates = [client.compute_update(ws, gp) for client in clients]
                for u in updates:
                    u.normalize()
                return updates
        """
        fired = rules_fired(
            source, NoSequentialClientLoopRule, relpath="fl/probe.py"
        )
        # Only the compute_update comprehension fires, not the second loop.
        assert fired == ["no-sequential-client-loop"]

    def test_suppression(self):
        source = """\
            def run(clients, ws, gp):
                for client in clients:
                    client.compute_update(ws, gp)  # repro-lint: disable=no-sequential-client-loop
        """
        assert rules_fired(
            source, NoSequentialClientLoopRule, relpath="fl/probe.py"
        ) == []


class TestNoPrintInLibrary:
    def test_print_in_library_module_fires(self):
        source = """\
            def aggregate(updates):
                print("aggregating", len(updates))
                return sum(updates)
        """
        assert rules_fired(
            source, NoPrintInLibraryRule, relpath="fl/aggregation.py"
        ) == ["no-print-in-library"]

    def test_default_allowed_locations_are_exempt(self):
        source = 'print("hello")\n'
        for relpath in (
            "lint/cli.py", "tools/report.py", "experiments/fig1.py",
            "experiments/sub/probe.py",
        ):
            assert rules_fired(
                source, NoPrintInLibraryRule, relpath=relpath
            ) == []

    def test_shadowed_print_method_does_not_fire(self):
        source = """\
            def render(table):
                table.print()
        """
        assert rules_fired(
            source, NoPrintInLibraryRule, relpath="utils/tables.py"
        ) == []

    def test_allow_in_option_extends_exemptions(self):
        source = 'print("cli output")\n'
        config = LintConfig(
            rules={"no-print-in-library": {"allow_in": ["obs/__main__.py"]}}
        )
        assert rules_fired(
            source, NoPrintInLibraryRule,
            relpath="obs/__main__.py", config=config,
        ) == []
        # The option replaces the default list: tools/ is no longer exempt.
        assert rules_fired(
            source, NoPrintInLibraryRule,
            relpath="tools/report.py", config=config,
        ) == ["no-print-in-library"]

    def test_suppression(self):
        source = """\
            def debug(x):
                print(x)  # repro-lint: disable=no-print-in-library
        """
        assert rules_fired(
            source, NoPrintInLibraryRule, relpath="fl/probe.py"
        ) == []


class TestMetricNameRegistry:
    def test_registered_literal_is_clean(self):
        source = """\
            def record(metrics, n):
                metrics.counter("comm.uploads").inc(n)
                metrics.gauge("store.shards_materialized").set(n)
                metrics.histogram("runtime.executor.queue_wait").observe(n)
        """
        assert rules_fired(source, MetricNameRegistryRule) == []

    def test_unregistered_literal_fires_per_call(self):
        source = """\
            def record(metrics):
                metrics.counter("comm.uplaods").inc()
                metrics.gauge("totally.new").set(1)
        """
        assert rules_fired(source, MetricNameRegistryRule) == [
            "metric-name-registry",
            "metric-name-registry",
        ]

    def test_fstring_with_registered_prefix_head_is_clean(self):
        source = """\
            def account(metrics, kind, total):
                metrics.counter(f"emu.messages.{kind}").inc()
                metrics.counter(f"emu.bytes.{kind}").inc(total)
        """
        assert rules_fired(source, MetricNameRegistryRule) == []

    def test_fstring_without_registered_head_fires(self):
        source = """\
            def account(metrics, kind):
                metrics.counter(f"mesh.{kind}").inc()
        """
        assert rules_fired(source, MetricNameRegistryRule) == [
            "metric-name-registry"
        ]

    def test_dynamic_name_expression_fires(self):
        source = """\
            def record(metrics, name):
                metrics.counter(name).inc()
                metrics.counter("comm." + name).inc()
        """
        assert rules_fired(source, MetricNameRegistryRule) == [
            "metric-name-registry",
            "metric-name-registry",
        ]

    def test_non_registry_receivers_are_ignored(self):
        source = """\
            def tally(ballot, collections):
                ballot.counter("precinct.42").inc()
                collections.Counter("anything")
        """
        assert rules_fired(source, MetricNameRegistryRule) == []

    def test_registry_receiver_spellings(self):
        source = """\
            def wire(self, registry):
                self.metrics.counter("bogus.one").inc()
                registry.histogram("bogus.two").observe(1.0)
        """
        assert rules_fired(source, MetricNameRegistryRule) == [
            "metric-name-registry",
            "metric-name-registry",
        ]

    def test_extra_names_and_prefixes_options(self):
        source = """\
            def record(metrics, kind):
                metrics.counter("plugin.hits").inc()
                metrics.counter(f"plugin.by_kind.{kind}").inc()
        """
        config = LintConfig(
            rules={
                "metric-name-registry": {
                    "extra_names": ["plugin.hits"],
                    "extra_prefixes": ["plugin.by_kind."],
                }
            }
        )
        assert rules_fired(
            source, MetricNameRegistryRule, config=config
        ) == []
        assert rules_fired(source, MetricNameRegistryRule) == [
            "metric-name-registry",
            "metric-name-registry",
        ]

    def test_suppression_comment(self):
        source = """\
            def record(metrics):
                metrics.counter("scratch.probe").inc()  # repro-lint: disable=metric-name-registry
        """
        assert rules_fired(source, MetricNameRegistryRule) == []

    def test_sweep_clean_on_whole_tree(self):
        # The empty-baseline satellite: every instrument call in the
        # shipped tree uses a registered name.
        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        linter = Linter(rules=[MetricNameRegistryRule])
        assert linter.lint_paths([str(root)]) == []


class TestAgainstRealTree:
    """The shipped tree is the ultimate fixture: rules run clean on it."""

    @pytest.mark.parametrize(
        "rule",
        [
            NoGlobalRngRule,
            ExplicitDtypeRule,
            MetricNameRegistryRule,
            NoParamMutationRule,
            NoPrintInLibraryRule,
            NoSequentialClientLoopRule,
            NoWallclockSeedRule,
            UnusedPureResultRule,
            AllExportsRule,
        ],
    )
    def test_rule_clean_on_core(self, rule):
        root = Path(__file__).resolve().parent.parent / "src" / "repro" / "core"
        linter = Linter(rules=[rule])
        assert linter.lint_paths([str(root)]) == []
