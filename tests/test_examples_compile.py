"""Every example script must at least compile and name a main()."""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    func_names = {n.name for n in ast.walk(tree)
                  if isinstance(n, ast.FunctionDef)}
    assert "main" in func_names
