"""Small API-surface contracts: reprs, exports, package wiring."""

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro


def _public_modules():
    """Every importable public module under the ``repro`` package."""
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        leaf = info.name.rsplit(".", 1)[-1]
        if not leaf.startswith("_"):
            names.append(info.name)
    return names


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_exposes_correct_all(module_name):
    """Runtime mirror of the ``all-exports`` lint rule: every public
    module defines ``__all__``, every entry resolves, and every public
    function/class defined in the module is listed."""
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    exported = module.__all__
    assert len(set(exported)) == len(exported), (
        f"{module_name}.__all__ has duplicates"
    )
    for name in exported:
        assert hasattr(module, name), (
            f"{module_name}.__all__ exports undefined name {name!r}"
        )
    defined_here = {
        name
        for name, obj in inspect.getmembers(
            module,
            lambda o: inspect.isclass(o) or inspect.isfunction(o),
        )
        if not name.startswith("_") and getattr(obj, "__module__", None) == module_name
    }
    missing = defined_here - set(exported)
    assert not missing, (
        f"{module_name}: public names missing from __all__: {sorted(missing)}"
    )
from repro.baselines import GaiaPartialPolicy, GaiaPolicy, VanillaPolicy
from repro.fl import (
    GaussianMechanism,
    SecureAggregator,
    UniformSampler,
)
from repro.nn import Dense, Sequential
from repro.nn.parameter import Parameter


def test_top_level_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_policy_names_are_distinct():
    from repro.core.policy import CMFLPolicy
    from repro.core.thresholds import ConstantThreshold

    names = {
        VanillaPolicy().name,
        GaiaPolicy(ConstantThreshold(0.1)).name,
        GaiaPartialPolicy(ConstantThreshold(0.1)).name,
        CMFLPolicy(ConstantThreshold(0.1)).name,
    }
    assert names == {"vanilla", "gaia", "gaia_partial", "cmfl"}


def test_parameter_repr_and_shape():
    p = Parameter(np.zeros((2, 3)), name="w")
    assert "w" in repr(p)
    assert p.shape == (2, 3) and p.size == 6


def test_module_reprs():
    model = Sequential([Dense(2, 3, rng=0)])
    assert "Dense" in repr(model)
    assert "parameters=9" in repr(model.layers[0])


def test_schedule_reprs():
    from repro.core.thresholds import (
        ConstantThreshold,
        InverseSqrtThreshold,
        LinearDecayThreshold,
    )
    from repro.nn.schedules import ConstantLR, InverseSqrtLR, StepLR

    for obj in (ConstantThreshold(0.5), InverseSqrtThreshold(0.5),
                LinearDecayThreshold(0.5, 0.4, 10),
                ConstantLR(0.1), InverseSqrtLR(0.1), StepLR(0.1, 5)):
        assert type(obj).__name__ in repr(obj)


def test_fl_package_exports_extensions():
    assert UniformSampler(0.5).fraction == 0.5
    assert SecureAggregator([0, 1], 4, 0).n_params == 4
    assert GaussianMechanism(1.0, 1.0).clip_norm == 1.0


def test_dataset_repr():
    from repro.data.dataset import Dataset

    ds = Dataset(np.zeros((4, 2)), np.zeros(4))
    assert "n=4" in repr(ds)
