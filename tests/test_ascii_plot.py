"""The terminal curve renderer."""

import numpy as np
import pytest

from repro.utils.ascii_plot import ascii_plot


def test_renders_all_series_markers():
    out = ascii_plot(
        {"a": ([0, 1, 2], [0, 1, 2]), "b": ([0, 1, 2], [2, 1, 0])},
        width=20, height=8,
    )
    assert "o" in out and "x" in out
    assert "o a" in out and "x b" in out


def test_extremes_on_grid_edges():
    out = ascii_plot({"s": ([0, 10], [0.0, 1.0])}, width=20, height=8)
    lines = out.splitlines()
    assert lines[0].lstrip().startswith("1")  # y max label
    assert "0" in lines[-3]  # y min label row


def test_constant_series_does_not_divide_by_zero():
    out = ascii_plot({"flat": ([1, 2, 3], [5.0, 5.0, 5.0])}, width=16, height=6)
    assert "o" in out


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        ascii_plot({"s": ([], [])})
    with pytest.raises(ValueError):
        ascii_plot({})


def test_misaligned_rejected():
    with pytest.raises(ValueError):
        ascii_plot({"s": ([1, 2], [1.0])})


def test_tiny_grid_rejected():
    with pytest.raises(ValueError):
        ascii_plot({"s": ([1], [1.0])}, width=4, height=2)


def test_large_random_series_stays_in_bounds():
    rng = np.random.default_rng(0)
    out = ascii_plot(
        {"r": (np.arange(200), rng.normal(size=200))}, width=60, height=14
    )
    lines = out.splitlines()
    assert all(len(line) <= 80 for line in lines)
