"""The batched (stacked-client) nn substrate: every layer, loss and the
parameter binder reproduce the serial path bit for bit per client slice.

These are the unit-level guarantees under the executor-level digest
tests: for each layer we stack C independent parameter vectors and C
inputs, run one batched forward/backward, and demand bitwise equality
with C separate serial runs — outputs, input gradients and accumulated
parameter gradients alike.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchedParamBinder,
    BatchedUnsupported,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    LSTM,
    MaxPool2D,
    MeanSquaredError,
    Module,
    Momentum,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    SigmoidBinaryCrossEntropy,
    SoftmaxCrossEntropy,
    Tanh,
)
from repro.nn.layers.reshape import LastStep
from repro.nn.serialization import (
    assign_flat_parameters,
    flatten_gradients,
    flatten_parameters,
    parameter_count,
)

C = 3  # stacked clients in every test


def _check_layer(module_factory, x_stack, grad_from=None, training=True):
    """Batched forward/backward over C stacked clients must be bitwise
    equal to C serial runs with the same per-client parameters."""
    ref = module_factory()
    n_params = parameter_count(ref)
    binder = BatchedParamBinder(C, n_params)
    batched = ref.batched(binder)
    binder.finish()
    rng = np.random.default_rng(7)
    if n_params:
        binder.data[...] = rng.normal(size=binder.data.shape)
    out = batched.forward(x_stack, training=training)
    grad_out = (grad_from or rng.normal)(size=out.shape)
    dx = batched.backward(grad_out)
    for c in range(C):
        serial = module_factory()
        if n_params:
            assign_flat_parameters(serial, binder.data[c].copy())
        out_c = serial.forward(x_stack[c], training=training)
        dx_c = serial.backward(np.ascontiguousarray(grad_out[c]))
        np.testing.assert_array_equal(out[c], out_c, strict=True)
        np.testing.assert_array_equal(dx[c], dx_c, strict=True)
        if n_params:
            np.testing.assert_array_equal(
                binder.grad[c], flatten_gradients(serial), strict=True
            )
    return out


class TestBatchedLayers:
    def test_dense(self):
        rng = np.random.default_rng(0)
        _check_layer(
            lambda: Dense(6, 4, rng=np.random.default_rng(1)),
            rng.normal(size=(C, 9, 6)),
        )

    def test_conv2d_padded(self):
        rng = np.random.default_rng(0)
        _check_layer(
            lambda: Conv2D(2, 3, kernel_size=3, padding=1,
                           rng=np.random.default_rng(2)),
            rng.normal(size=(C, 4, 2, 6, 6)),
        )

    def test_conv2d_unpadded_stride(self):
        rng = np.random.default_rng(0)
        _check_layer(
            lambda: Conv2D(1, 2, kernel_size=3, stride=2,
                           rng=np.random.default_rng(3)),
            rng.normal(size=(C, 5, 1, 7, 7)),
        )

    def test_maxpool(self):
        rng = np.random.default_rng(0)
        _check_layer(lambda: MaxPool2D(2), rng.normal(size=(C, 4, 2, 6, 6)))

    def test_lstm_last_hidden(self):
        rng = np.random.default_rng(0)
        _check_layer(
            lambda: LSTM(4, 5, rng=np.random.default_rng(4)),
            rng.normal(size=(C, 6, 7, 4)),
        )

    def test_lstm_return_sequences(self):
        rng = np.random.default_rng(0)
        _check_layer(
            lambda: LSTM(3, 4, rng=np.random.default_rng(5),
                         return_sequences=True),
            rng.normal(size=(C, 5, 6, 3)),
        )

    def test_embedding(self):
        ids = np.random.default_rng(0).integers(0, 11, size=(C, 5, 4))
        _check_layer(
            lambda: Embedding(11, 3, rng=np.random.default_rng(6)), ids
        )

    def test_flatten_and_laststep(self):
        rng = np.random.default_rng(0)
        _check_layer(lambda: Flatten(), rng.normal(size=(C, 4, 2, 3, 3)))
        _check_layer(lambda: LastStep(), rng.normal(size=(C, 4, 5, 6)))

    @pytest.mark.parametrize("act", [ReLU, Sigmoid, Tanh])
    def test_activations(self, act):
        rng = np.random.default_rng(0)
        _check_layer(act, rng.normal(size=(C, 8, 5)))

    def test_sequential_composes(self):
        """A whole CNN stack composes the per-layer counterparts."""
        rng = np.random.default_rng(0)
        _check_layer(
            lambda: Sequential([
                Conv2D(1, 3, kernel_size=3, padding=1,
                       rng=np.random.default_rng(8)),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(3 * 3 * 3, 4, rng=np.random.default_rng(9)),
            ]),
            rng.normal(size=(C, 5, 1, 6, 6)),
        )

    def test_dropout_inference_is_identity(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        batched = layer.batched(BatchedParamBinder(C, 0))
        x = np.random.default_rng(1).normal(size=(C, 4, 5))
        out = batched.forward(x, training=False)
        np.testing.assert_array_equal(out, x, strict=True)
        np.testing.assert_array_equal(
            batched.backward(x), x, strict=True
        )

    def test_dropout_training_draws_from_layer_stream(self):
        """Training-mode batched dropout consumes the wrapped layer's
        own RNG stream (dropout sits outside the cross-backend bitwise
        contract, but the stream ownership stays with the layer)."""
        layer = Dropout(0.5, rng=np.random.default_rng(3))
        batched = layer.batched(BatchedParamBinder(C, 0))
        x = np.ones((C, 6, 8))
        out = batched.forward(x, training=True)
        kept = out != 0.0
        assert 0 < kept.sum() < out.size
        np.testing.assert_array_equal(out[kept], x[kept] / 0.5)


class TestBatchedLosses:
    def _check_loss(self, loss_factory, pred, target):
        batched = loss_factory().batched()
        vec = batched.forward(pred, target)
        grad = batched.backward()
        assert vec.shape == (C,)
        for c in range(C):
            serial = loss_factory()
            assert vec[c] == serial.forward(
                np.ascontiguousarray(pred[c]), target[c]
            )
            np.testing.assert_array_equal(
                grad[c], serial.backward(), strict=True
            )

    def test_softmax_cross_entropy(self):
        rng = np.random.default_rng(0)
        self._check_loss(
            SoftmaxCrossEntropy,
            rng.normal(size=(C, 7, 4)),
            rng.integers(0, 4, size=(C, 7)),
        )

    def test_sigmoid_bce(self):
        rng = np.random.default_rng(0)
        self._check_loss(
            SigmoidBinaryCrossEntropy,
            rng.normal(size=(C, 6, 1)),
            rng.integers(0, 2, size=(C, 6)).astype(float),
        )

    def test_mse(self):
        rng = np.random.default_rng(0)
        self._check_loss(
            MeanSquaredError,
            rng.normal(size=(C, 5, 3)),
            rng.normal(size=(C, 5, 3)),
        )


class TestBinderAndFallback:
    def test_binder_views_alias_the_stack(self):
        model = Dense(3, 2, rng=np.random.default_rng(0))
        binder = BatchedParamBinder(C, parameter_count(model))
        batched = model.batched(binder)
        binder.finish()
        binder.data[...] = 1.0
        # The layer's bound weight is a view: writing through it lands
        # in the flat stack the executor extracts updates from.
        batched._w[1, 0, 0] = 5.0
        assert binder.data[1, 0] == 5.0

    def test_binder_finish_catches_underbinding(self):
        binder = BatchedParamBinder(C, 10)
        with pytest.raises(ValueError, match="bound 0 of 10"):
            binder.finish()

    def test_binder_rejects_overbinding(self):
        model = Dense(3, 2, rng=np.random.default_rng(0))
        binder = BatchedParamBinder(C, parameter_count(model) - 1)
        with pytest.raises(ValueError, match="binder overflow"):
            model.batched(binder)

    def test_unbatchable_module_signals_fallback(self):
        class Exotic(Module):
            def forward(self, x, training=False):
                return x

            def backward(self, grad_output):
                return grad_output

        with pytest.raises(BatchedUnsupported, match="Exotic"):
            Exotic().batched(BatchedParamBinder(C, 0))

    def test_stateful_optimizer_signals_fallback(self):
        from repro.fl.batched import BatchedWorkspace
        from repro.fl.workspace import ModelWorkspace

        model = Dense(3, 2, rng=np.random.default_rng(0))
        workspace = ModelWorkspace(
            model, MeanSquaredError(), Momentum(model.parameters(), 0.1)
        )
        with pytest.raises(BatchedUnsupported, match="Momentum"):
            BatchedWorkspace(workspace, C)

    def test_workspace_roundtrip_extracts_updates(self):
        from repro.fl.batched import BatchedWorkspace
        from repro.fl.workspace import ModelWorkspace

        model = Dense(4, 2, rng=np.random.default_rng(0))
        workspace = ModelWorkspace(
            model, MeanSquaredError(), SGD(model.parameters(), 0.1)
        )
        engine = BatchedWorkspace(workspace, C)
        flat = flatten_parameters(model)
        engine.load_global(flat)
        np.testing.assert_array_equal(
            engine.params, np.broadcast_to(flat, (C, flat.size))
        )
        rng = np.random.default_rng(1)
        engine.train_step_all(
            rng.normal(size=(C, 5, 4)), rng.normal(size=(C, 5, 2)), 0.1
        )
        updates = engine.extract_updates(flat)
        assert updates.shape == (C, flat.size)
        assert not np.array_equal(updates, np.zeros_like(updates))
