"""Original-Gaia partial synchronisation."""

import numpy as np
import pytest

from repro.baselines.gaia_partial import GaiaPartialPolicy
from repro.core.policy import PolicyContext
from repro.core.thresholds import ConstantThreshold


def ctx(params, iteration=1):
    return PolicyContext(
        iteration=iteration,
        global_params=np.asarray(params, dtype=float),
        global_update_estimate=np.zeros(len(params)),
    )


class TestPartialSync:
    def test_insignificant_coordinates_zeroed(self):
        policy = GaiaPartialPolicy(ConstantThreshold(0.5))
        update = np.array([1.0, 0.1, 2.0, 0.01])
        model = np.ones(4)
        decision = policy.decide(update, ctx(model))
        assert decision.upload
        np.testing.assert_array_equal(update, [1.0, 0.0, 2.0, 0.0])
        assert decision.score == pytest.approx(0.5)

    def test_all_insignificant_becomes_status(self):
        policy = GaiaPartialPolicy(ConstantThreshold(10.0))
        update = np.array([0.1, 0.2])
        decision = policy.decide(update, ctx(np.ones(2)))
        assert not decision.upload
        assert policy.stats.shipped_bytes > 0  # the status notice

    def test_byte_accounting(self):
        policy = GaiaPartialPolicy(ConstantThreshold(0.5))
        update = np.array([1.0, 0.1, 2.0, 0.01])
        policy.decide(update, ctx(np.ones(4)))
        assert policy.stats.dense_equivalent_bytes == 16
        assert policy.stats.shipped_bytes == 2 * 8
        assert policy.stats.bytes_saved_ratio == pytest.approx(1.0)

    def test_sparse_regime_saves_bytes(self):
        policy = GaiaPartialPolicy(ConstantThreshold(0.5))
        update = np.zeros(100)
        update[:5] = 10.0
        policy.decide(update, ctx(np.ones(100)))
        assert policy.stats.bytes_saved_ratio == pytest.approx(400 / 40)

    def test_runs_in_a_federation(self):
        from repro.data.dataset import Dataset
        from repro.data.partition import iid_partition
        from repro.fl.client import FLClient
        from repro.fl.config import FLConfig
        from repro.fl.trainer import FederatedTrainer
        from repro.fl.workspace import ModelWorkspace
        from repro.models.linear import make_logistic_regression
        from repro.nn.losses import SigmoidBinaryCrossEntropy
        from repro.nn.optimizers import SGD
        from repro.nn.schedules import ConstantLR
        from repro.utils.rng import child_rngs

        rngs = child_rngs(5, 8)
        x = rngs[0].normal(size=(60, 5))
        y = (x @ rngs[1].normal(size=5) > 0).astype(np.int64)
        data = Dataset(x, y)
        model = make_logistic_regression(5, rng=rngs[2])
        workspace = ModelWorkspace(model, SigmoidBinaryCrossEntropy(),
                                   SGD(model.parameters(), 0.5))
        clients = [FLClient(i, data.subset(p), rng=rngs[3 + i])
                   for i, p in enumerate(iid_partition(60, 4, rng=0))]
        policy = GaiaPartialPolicy(ConstantThreshold(0.05))
        trainer = FederatedTrainer(
            workspace, clients, policy,
            FLConfig(rounds=5, local_epochs=1, batch_size=10,
                     lr=ConstantLR(0.5)),
        )
        history = trainer.run()
        losses = history.train_losses()
        assert losses[-1] < losses[0]
        assert policy.stats.mean_significant_fraction > 0
