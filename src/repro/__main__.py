"""Command-line entry point: ``python -m repro <experiment> [scale]``.

Runs a single paper experiment (or ``all``) and prints its report.

    python -m repro list
    python -m repro fig4_table1 bench
    python -m repro all test
"""

from __future__ import annotations

import sys

from repro.experiments.run_all import EXPERIMENTS, run_all

_BY_NAME = dict(EXPERIMENTS)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help", "list"):
        print("usage: python -m repro <experiment|all|list> [test|bench|paper]")
        print("experiments:")
        for name, _ in EXPERIMENTS:
            print(f"  {name}")
        return 0
    target = args[0]
    scale = args[1] if len(args) > 1 else None
    if target == "all":
        run_all(scale)
        return 0
    if target not in _BY_NAME:
        print(f"unknown experiment {target!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    print(_BY_NAME[target].run(scale).report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
