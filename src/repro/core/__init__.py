"""CMFL: the paper's contribution.

- :mod:`repro.core.relevance` -- the sign-alignment relevance measure
  e(u, u_bar) of Eq. (9);
- :mod:`repro.core.thresholds` -- threshold schedules (the paper uses
  v_t = v0 / sqrt(t));
- :mod:`repro.core.feedback` -- the previous-global-update estimator and
  the delta-update diagnostic of Eq. (8);
- :mod:`repro.core.policy` -- the client-side upload filter that puts
  them together;
- :mod:`repro.core.triggers` -- pure event-triggered upload rules for
  the asynchronous engine (and, via ``TriggerPolicy``, the synchronous
  trainer).
"""

from repro.core.relevance import relevance, sign_agreement_counts
from repro.core.thresholds import (
    ConstantThreshold,
    InverseSqrtThreshold,
    LinearDecayThreshold,
    ThresholdSchedule,
)
from repro.core.feedback import GlobalUpdateEstimator, normalized_update_difference
from repro.core.policy import CMFLPolicy, PolicyContext, UploadDecision, UploadPolicy
from repro.core.triggers import (
    AlwaysUpload,
    NormTrigger,
    RelevanceTrigger,
    TriggerPolicy,
    UploadTrigger,
)

__all__ = [
    "relevance",
    "sign_agreement_counts",
    "ThresholdSchedule",
    "ConstantThreshold",
    "InverseSqrtThreshold",
    "LinearDecayThreshold",
    "GlobalUpdateEstimator",
    "normalized_update_difference",
    "UploadPolicy",
    "UploadDecision",
    "PolicyContext",
    "CMFLPolicy",
    "UploadTrigger",
    "AlwaysUpload",
    "RelevanceTrigger",
    "NormTrigger",
    "TriggerPolicy",
]
