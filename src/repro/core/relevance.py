"""The CMFL relevance measure (paper Eq. 9).

Given a local update ``u`` and the (estimated) global update ``u_bar``,
the relevance is the fraction of parameters whose signs agree:

    e(u, u_bar) = (1/N) * sum_j I(sgn(u_j) == sgn(u_bar_j))

The sign of a parameter determines the *direction* the model moves
along that dimension, so sign agreement measures alignment with the
collaborative optimisation trend -- irrespective of learning rate or
local dataset size (the two quantities that defeat Gaia's
magnitude-based significance).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["relevance", "relevance_per_segment", "sign_agreement_counts"]


def sign_agreement_counts(
    u: np.ndarray, u_bar: np.ndarray, u_bar_sign: Optional[np.ndarray] = None
) -> Tuple[int, int]:
    """(number of same-sign parameters, total parameters).

    ``np.sign`` maps to {-1, 0, +1}; two exact zeros count as agreeing,
    matching the indicator in Eq. (9).

    ``u_bar_sign``, when given, must be ``np.sign(u_bar)`` computed in
    advance; ``u_bar`` is then not consulted.  The trainer scores every
    client of a round against the same feedback vector, so this fast
    path turns n_clients sign computations per round into one (see
    :attr:`repro.core.policy.PolicyContext.feedback_sign`).
    """
    u = np.asarray(u, dtype=float).reshape(-1)
    if u_bar_sign is None:
        u_bar = np.asarray(u_bar, dtype=float).reshape(-1)
        if u.shape != u_bar.shape:
            raise ValueError(
                f"update shapes differ: {u.shape} vs {u_bar.shape}"
            )
        u_bar_sign = np.sign(u_bar)
    else:
        u_bar_sign = np.asarray(u_bar_sign, dtype=float).reshape(-1)
        if u.shape != u_bar_sign.shape:
            raise ValueError(
                f"update shapes differ: {u.shape} vs {u_bar_sign.shape}"
            )
    if u.size == 0:
        raise ValueError("updates cannot be empty")
    agree = int(np.count_nonzero(np.sign(u) == u_bar_sign))
    return agree, int(u.size)


def relevance(
    u: np.ndarray,
    u_bar: np.ndarray,
    u_bar_sign: Optional[np.ndarray] = None,
) -> float:
    """e(u, u_bar) in [0, 1]; 1 means perfectly aligned with the federation.

    When the feedback ``u_bar`` is identically zero (the very first
    iteration, before any global update exists), there is no tendency to
    compare against and every update is defined to be fully relevant
    (returns 1.0), so round 1 behaves like vanilla FL.

    ``u_bar_sign`` is the optional precomputed ``np.sign(u_bar)``; a
    sign vector is zero exactly where the feedback is zero, so the
    zero-feedback rule is decided from it alone on the fast path.
    """
    if u_bar_sign is None:
        u_bar_arr = np.asarray(u_bar, dtype=float)
        if not np.any(u_bar_arr):
            np.asarray(u, dtype=float)  # still validate the partner argument
            return 1.0
        agree, total = sign_agreement_counts(u, u_bar_arr)
    else:
        sign = np.asarray(u_bar_sign, dtype=float).reshape(-1)
        if not np.any(sign):
            np.asarray(u, dtype=float)  # still validate the partner argument
            return 1.0
        agree, total = sign_agreement_counts(u, u_bar, u_bar_sign=sign)
    return agree / total


def relevance_per_segment(
    u: np.ndarray, u_bar: np.ndarray, boundaries: "list[int]"
) -> np.ndarray:
    """Relevance computed independently per contiguous segment.

    ``boundaries`` are cumulative end offsets (e.g. per-layer parameter
    counts accumulated); used by the per-layer ablation benchmark.
    """
    u = np.asarray(u, dtype=float).reshape(-1)
    u_bar = np.asarray(u_bar, dtype=float).reshape(-1)
    if u.shape != u_bar.shape:
        raise ValueError("update shapes differ")
    if not boundaries or boundaries[-1] != u.size:
        raise ValueError("boundaries must end at the vector length")
    out = []
    start = 0
    for end in boundaries:
        if end <= start:
            raise ValueError("boundaries must be strictly increasing")
        out.append(relevance(u[start:end], u_bar[start:end]))
        start = end
    return np.asarray(out)
