"""Global-update feedback estimation (paper Sec. IV-A).

The true global update of iteration t cannot be known before all local
updates are aggregated, so CMFL estimates it with the update of
iteration t-1.  The estimator here tracks that previous global update;
``normalized_update_difference`` is Eq. (8), the diagnostic the paper
uses (Fig. 3) to justify the estimate: for >93-99% of iterations
||u_{t+1} - u_t|| / ||u_t|| stays below 0.05.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "GlobalUpdateEstimator",
    "normalized_update_difference",
    "pack_signs",
    "packed_sign_nbytes",
    "unpack_signs",
]


def packed_sign_nbytes(n_params: int) -> int:
    """Bytes :func:`pack_signs` needs for an ``n_params`` sign vector."""
    if n_params < 1:
        raise ValueError("n_params must be >= 1")
    return 2 * ((n_params + 7) // 8)


def pack_signs(vector: np.ndarray) -> np.ndarray:
    """Compress ``np.sign(vector)`` into two packed bit-planes.

    A sign takes values in {-1, 0, +1}, so two bits suffice: plane 0
    records where the value is nonzero, plane 1 where it is positive.
    The result is a ``uint8`` array of :func:`packed_sign_nbytes`
    bytes — 2 bits per parameter instead of the 64 a float64 sign
    vector spends, a 32x drop.  This is what lets a million-client
    state store keep per-client feedback-sign records (see
    :mod:`repro.fl.store`) without a float array per client.

    :func:`unpack_signs` inverts this exactly: the round trip equals
    ``np.sign(vector)`` bitwise (proven in tests/test_store.py).
    """
    v = np.asarray(vector, dtype=float).reshape(-1)
    if v.size == 0:
        raise ValueError("cannot pack an empty sign vector")
    nonzero = np.packbits(v != 0.0)
    positive = np.packbits(v > 0.0)
    return np.concatenate([nonzero, positive])


def unpack_signs(packed: np.ndarray, n_params: int) -> np.ndarray:
    """Invert :func:`pack_signs` back to a float64 {-1, 0, +1} vector."""
    packed = np.asarray(packed, dtype=np.uint8).reshape(-1)
    expected = packed_sign_nbytes(n_params)
    if packed.size != expected:
        raise ValueError(
            f"packed sign vector has {packed.size} bytes, expected "
            f"{expected} for {n_params} parameters"
        )
    plane_bytes = packed.size // 2
    nonzero = np.unpackbits(packed[:plane_bytes], count=n_params)
    positive = np.unpackbits(packed[plane_bytes:], count=n_params)
    out = np.where(positive.astype(bool), 1.0, -1.0)
    out[~nonzero.astype(bool)] = 0.0
    return out


def normalized_update_difference(
    update_prev: np.ndarray, update_next: np.ndarray
) -> float:
    """Delta-Update of Eq. (8): ||next - prev||_2 / ||prev||_2."""
    prev = np.asarray(update_prev, dtype=float).reshape(-1)
    nxt = np.asarray(update_next, dtype=float).reshape(-1)
    if prev.shape != nxt.shape:
        raise ValueError("updates must have the same shape")
    denom = float(np.linalg.norm(prev))
    if denom == 0.0:
        raise ValueError("previous update has zero norm")
    return float(np.linalg.norm(nxt - prev)) / denom


class GlobalUpdateEstimator:
    """Holds the previous global update as the estimate for the current one.

    Also records the history of Delta-Update values so experiments can
    reproduce the paper's Fig. 3 without extra bookkeeping.  A staleness
    of k > 1 (use the update from k iterations ago) is supported for the
    feedback-staleness ablation.
    """

    def __init__(self, n_params: int, staleness: int = 1) -> None:
        if n_params < 1:
            raise ValueError("n_params must be >= 1")
        if staleness < 1:
            raise ValueError("staleness must be >= 1")
        self.n_params = n_params
        self.staleness = staleness
        self._history: List[np.ndarray] = []
        self.delta_updates: List[float] = []

    @property
    def estimate(self) -> np.ndarray:
        """Current feedback u_bar (zeros before any global update exists)."""
        if len(self._history) < self.staleness:
            return np.zeros(self.n_params, dtype=float)
        return self._history[-self.staleness]

    @property
    def last(self) -> Optional[np.ndarray]:
        return self._history[-1] if self._history else None

    def observe(self, global_update: np.ndarray) -> None:
        """Record the global update the server just produced."""
        update = np.asarray(global_update, dtype=float).reshape(-1)
        if update.size != self.n_params:
            raise ValueError(
                f"expected {self.n_params} parameters, got {update.size}"
            )
        if self._history and np.any(self._history[-1]):
            self.delta_updates.append(
                normalized_update_difference(self._history[-1], update)
            )
        self._history.append(update.copy())
        # Only the last ``staleness`` updates are ever read back.
        if len(self._history) > self.staleness:
            self._history = self._history[-self.staleness :]

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot for checkpointing: the retained update history plus
        the Delta-Update record (arrays are copied)."""
        return {
            "n_params": self.n_params,
            "staleness": self.staleness,
            "history": [u.copy() for u in self._history],
            "delta_updates": list(self.delta_updates),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot into this estimator."""
        if int(state["n_params"]) != self.n_params:
            raise ValueError(
                f"estimator state is for {state['n_params']} parameters, "
                f"not {self.n_params}"
            )
        if int(state["staleness"]) != self.staleness:
            raise ValueError(
                f"estimator state has staleness {state['staleness']}, "
                f"not {self.staleness}"
            )
        history = [
            np.asarray(u, dtype=float).reshape(-1) for u in state["history"]
        ]
        if len(history) > self.staleness:
            raise ValueError(
                f"estimator state holds {len(history)} updates; at most "
                f"{self.staleness} are retained"
            )
        for u in history:
            if u.size != self.n_params:
                raise ValueError(
                    f"estimator state update has {u.size} parameters, "
                    f"expected {self.n_params}"
                )
        self._history = [u.copy() for u in history]
        self.delta_updates = [float(d) for d in state["delta_updates"]]
