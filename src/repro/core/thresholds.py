"""Relevance/significance threshold schedules.

Theorem 1 requires the relevance threshold v_t to decay for the regret
bound to vanish; the paper's experiments use v_t = v0 / sqrt(t)
alongside the matching learning-rate schedule.  A constant schedule is
provided for the ablation that shows why decay matters, and a linear
decay as a further design point.
"""

from __future__ import annotations

__all__ = [
    "ConstantThreshold",
    "InverseSqrtThreshold",
    "LinearDecayThreshold",
    "ThresholdSchedule",
]


class ThresholdSchedule:
    """Maps a 1-based iteration index to a threshold value."""

    def __call__(self, t: int) -> float:
        if t < 1:
            raise ValueError(f"iteration index is 1-based, got {t}")
        return self.value(t)

    def value(self, t: int) -> float:
        raise NotImplementedError


class ConstantThreshold(ThresholdSchedule):
    """v_t = v0 for all t."""

    def __init__(self, v0: float) -> None:
        if v0 < 0:
            raise ValueError(f"threshold must be >= 0, got {v0}")
        self.v0 = v0

    def value(self, t: int) -> float:
        return self.v0

    def __repr__(self) -> str:
        return f"ConstantThreshold({self.v0})"


class InverseSqrtThreshold(ThresholdSchedule):
    """v_t = v0 / sqrt(t) -- the paper's choice (Sec. V-A setup)."""

    def __init__(self, v0: float) -> None:
        if v0 < 0:
            raise ValueError(f"threshold must be >= 0, got {v0}")
        self.v0 = v0

    def value(self, t: int) -> float:
        return self.v0 / (t**0.5)

    def __repr__(self) -> str:
        return f"InverseSqrtThreshold({self.v0})"


class LinearDecayThreshold(ThresholdSchedule):
    """v_t decays linearly from v0 to v_final over ``horizon`` iterations."""

    def __init__(self, v0: float, v_final: float, horizon: int) -> None:
        if v0 < 0 or v_final < 0 or v_final > v0:
            raise ValueError("require 0 <= v_final <= v0")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.v0 = v0
        self.v_final = v_final
        self.horizon = horizon

    def value(self, t: int) -> float:
        if t >= self.horizon:
            return self.v_final
        frac = (t - 1) / max(self.horizon - 1, 1)
        return self.v0 + (self.v_final - self.v0) * frac

    def __repr__(self) -> str:
        return (
            f"LinearDecayThreshold({self.v0}, {self.v_final}, "
            f"horizon={self.horizon})"
        )
