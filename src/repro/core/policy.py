"""Client-side upload policies.

A policy decides, for each freshly computed local update, whether it is
worth uploading.  CMFL's policy implements Algorithm 1's CheckRelevance
(semantically: upload iff e(u, u_bar) >= v_t -- the paper's pseudo-code
has the comparison inverted relative to its own prose).  Vanilla FL and
Gaia live in :mod:`repro.baselines` behind the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

import numpy as np

from repro.core.relevance import relevance
from repro.core.thresholds import ThresholdSchedule

__all__ = ["CMFLPolicy", "PolicyContext", "UploadDecision", "UploadPolicy"]


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy may consult when judging an update.

    ``iteration`` is the 1-based federated round; ``global_params`` the
    model the update was computed against; ``global_update_estimate``
    the feedback u_bar_{t-1} the server broadcast with it.
    ``staleness`` is how many global rounds closed between this round's
    dispatch and its aggregation — always 0 under the synchronous
    trainer, and in [0, S] under the bounded-staleness async engine
    (:mod:`repro.fl.events`), for policies that want to discount or
    veto stale updates.

    The trainer builds one context per round and derives the per-client
    views with :meth:`for_client`; all views share ``_round_cache``, so
    round-constant derived quantities (currently the feedback sign
    vector) are computed once per round instead of once per client.
    """

    iteration: int
    global_params: np.ndarray
    global_update_estimate: np.ndarray
    client_id: int = -1
    staleness: int = 0
    _round_cache: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def feedback_sign(self) -> np.ndarray:
        """``np.sign(global_update_estimate)``, cached for the round."""
        sign = self._round_cache.get("feedback_sign")
        if sign is None:
            sign = np.sign(
                np.asarray(self.global_update_estimate, dtype=float).reshape(-1)
            )
            self._round_cache["feedback_sign"] = sign
        return sign

    def for_client(self, client_id: int) -> "PolicyContext":
        """A view of this round's context for one client (shared cache)."""
        return replace(self, client_id=client_id)


@dataclass(frozen=True)
class UploadDecision:
    """Outcome of a policy check.

    ``score`` is the policy's raw measure (relevance for CMFL,
    significance for Gaia, 1.0 for vanilla) and ``threshold`` the value
    it was compared against; both are recorded by the trainer for the
    Fig. 2 measurement experiments.
    """

    upload: bool
    score: float
    threshold: float


class UploadPolicy:
    """Interface: judge one local update in one round.

    The shipped policies (CMFL, vanilla, Gaia) are stateless — their
    thresholds are pure functions of the iteration — so the default
    :meth:`state_dict` is empty and a checkpoint restores them by
    reconstructing with the same constructor arguments.  A stateful
    policy overrides both methods.
    """

    name = "policy"

    def decide(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Mutable policy state for checkpoints (empty when stateless)."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (stateless default)."""
        if state:
            raise ValueError(
                f"policy {self.name!r} is stateless, but the snapshot "
                f"carries state: {sorted(state)}"
            )


class CMFLPolicy(UploadPolicy):
    """CMFL relevance filtering (the paper's Algorithm 1).

    An update is uploaded iff its sign-alignment relevance against the
    broadcast feedback reaches the scheduled threshold v_t.  Before any
    feedback exists (u_bar = 0) relevance is defined as 1.0, so the
    first round uploads everything.
    """

    name = "cmfl"

    def __init__(self, threshold: ThresholdSchedule) -> None:
        self.threshold = threshold  # ckpt: transient — schedule rebuilt from config

    def decide(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        score = relevance(
            update, ctx.global_update_estimate, u_bar_sign=ctx.feedback_sign
        )
        v_t = min(1.0, self.threshold(ctx.iteration))
        return UploadDecision(upload=score >= v_t, score=score, threshold=v_t)

    def __repr__(self) -> str:
        return f"CMFLPolicy(threshold={self.threshold!r})"
