"""Client-side event-triggered upload rules.

The asynchronous engine (:mod:`repro.fl.events`) lets a client decide
*locally* whether a freshly computed update is worth shipping — the
server never sees the suppressed ones.  An :class:`UploadTrigger` is
that rule: a **pure function** of the update and its
:class:`~repro.core.policy.PolicyContext` (no mutable state, no RNG),
so the decision is identical on every execution backend, across
resumes, and under any event ordering.

Three rules ship:

- :class:`AlwaysUpload` — the vanilla-FL baseline, every update ships;
- :class:`RelevanceTrigger` — CMFL's sign-alignment relevance against
  the broadcast feedback (exactly :func:`repro.core.relevance.relevance`
  against a scheduled threshold, the paper's CheckRelevance);
- :class:`NormTrigger` — an event-triggered-SAGA-style magnitude rule
  (arXiv:2402.18018): ship when the update's l2 norm clears a decaying
  band, suppressing the small late-training deltas.

:class:`TriggerPolicy` adapts any trigger to the synchronous trainer's
:class:`~repro.core.policy.UploadPolicy` interface, so the same rule
drives both engines and the bitwise S=0 equivalence tests can compare
them directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import PolicyContext, UploadDecision, UploadPolicy
from repro.core.relevance import relevance
from repro.core.thresholds import ThresholdSchedule

__all__ = [
    "AlwaysUpload",
    "NormTrigger",
    "RelevanceTrigger",
    "TriggerPolicy",
    "UploadTrigger",
]


class UploadTrigger:
    """Interface: judge one local update, purely.

    :meth:`check` must be a pure function of ``(update, ctx)`` — the
    property tests in ``tests/test_trigger_properties.py`` hold every
    implementation to it.  Triggers therefore carry only constructor
    constants and need no checkpoint state.
    """

    name = "trigger"

    def check(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        raise NotImplementedError


class AlwaysUpload(UploadTrigger):
    """Every update ships — the vanilla-FL baseline.

    Score is defined as 1.0 against a 0.0 threshold so histories built
    on this trigger still carry meaningful ``mean_score`` columns.
    """

    name = "always"

    def check(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        del update, ctx
        return UploadDecision(upload=True, score=1.0, threshold=0.0)


class RelevanceTrigger(UploadTrigger):
    """CMFL's relevance rule as a trigger: ship iff e(u, u_bar) >= v_t.

    The score is *exactly* :func:`repro.core.relevance.relevance`
    (including the zero-feedback rule: with no tendency to compare
    against, everything is fully relevant), so this trigger agrees with
    :class:`~repro.core.policy.CMFLPolicy` decision-for-decision.
    """

    name = "relevance"

    def __init__(self, threshold: ThresholdSchedule) -> None:
        self.threshold = threshold  # ckpt: transient — schedule rebuilt from config

    def check(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        score = relevance(
            update, ctx.global_update_estimate, u_bar_sign=ctx.feedback_sign
        )
        v_t = min(1.0, self.threshold(ctx.iteration))
        return UploadDecision(upload=score >= v_t, score=score, threshold=v_t)

    def __repr__(self) -> str:
        return f"RelevanceTrigger(threshold={self.threshold!r})"


class NormTrigger(UploadTrigger):
    """Event-triggered-SAGA-style magnitude rule.

    Ship when ``||u||_2 >= scale / (1 + t) ** decay``: early rounds
    (large updates) pass easily, and as training converges only the
    still-informative large deltas clear the shrinking band.  The band
    is a pure function of the iteration — the stateless analogue of the
    ET-SAGA "change since last communication" test, chosen so the
    decision needs no per-client memory.
    """

    name = "norm"

    def __init__(self, scale: float = 1.0, decay: float = 0.5) -> None:
        if scale <= 0.0:
            raise ValueError(f"scale must be > 0, got {scale}")
        if decay < 0.0:
            raise ValueError(f"decay must be >= 0, got {decay}")
        self.scale = float(scale)  # ckpt: transient — constructor constant
        self.decay = float(decay)  # ckpt: transient — constructor constant

    def check(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        u = np.asarray(update, dtype=float).reshape(-1)
        score = float(np.linalg.norm(u))
        v_t = self.scale / (1.0 + ctx.iteration) ** self.decay
        return UploadDecision(upload=score >= v_t, score=score, threshold=v_t)

    def __repr__(self) -> str:
        return f"NormTrigger(scale={self.scale}, decay={self.decay})"


class TriggerPolicy(UploadPolicy):
    """An :class:`UploadTrigger` behind the :class:`UploadPolicy` interface.

    Lets one rule drive both the synchronous trainer and the async
    engine — the S=0 bitwise-equivalence contract compares exactly
    this pairing.  Triggers are pure, so the policy is stateless.
    """

    def __init__(self, trigger: UploadTrigger) -> None:
        self.trigger = trigger  # ckpt: transient — pure rule, rebuilt from config
        self.name = trigger.name

    def decide(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        return self.trigger.check(update, ctx)

    def __repr__(self) -> str:
        return f"TriggerPolicy({self.trigger!r})"
