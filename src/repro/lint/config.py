"""Configuration for ``repro.lint``.

Settings live in ``pyproject.toml`` under ``[tool.repro-lint]``::

    [tool.repro-lint]
    exclude = ["lint/testdata"]

    [tool.repro-lint.explicit-dtype]
    severity = "error"
    paths = ["core/", "fl/", "nn/", "compress/"]

Per-rule tables accept ``enabled`` (bool), ``severity`` (``"error"`` or
``"warning"``), ``paths`` (package-relative prefixes the rule is scoped
to; empty list = everywhere) and free-form rule options.  ``tomllib`` is
stdlib from Python 3.11; on older interpreters configuration loading
degrades gracefully to the built-in defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["LintConfig", "RuleSettings", "load_config"]

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on <=3.10
    tomllib = None  # type: ignore[assignment]

_UNSET = object()


@dataclass(frozen=True)
class RuleSettings:
    """Effective settings of one rule for one run."""

    enabled: bool = True
    severity: str = "error"
    paths: Tuple[str, ...] = ()
    options: Dict[str, Any] = field(default_factory=dict)

    def option(self, key: str, default: Any = None) -> Any:
        return self.options.get(key, default)


@dataclass
class LintConfig:
    """Parsed ``[tool.repro-lint]`` table."""

    exclude: Tuple[str, ...] = ()
    #: Raw per-rule tables, keyed by rule name.
    rules: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def rule_settings(
        self,
        name: str,
        default_severity: str = "error",
        default_paths: Sequence[str] = (),
    ) -> RuleSettings:
        """Merge the configured table for ``name`` over the rule defaults."""
        table = dict(self.rules.get(name, {}))
        enabled = bool(table.pop("enabled", True))
        severity = str(table.pop("severity", default_severity))
        if severity not in ("error", "warning"):
            raise ValueError(
                f"rule {name!r}: severity must be 'error' or 'warning', "
                f"got {severity!r}"
            )
        raw_paths = table.pop("paths", _UNSET)
        if raw_paths is _UNSET:
            paths = tuple(default_paths)
        else:
            paths = tuple(str(p) for p in raw_paths)
        return RuleSettings(
            enabled=enabled, severity=severity, paths=paths, options=table
        )

    def is_excluded(self, path: Path) -> bool:
        posix = path.as_posix()
        return any(fragment and fragment in posix for fragment in self.exclude)


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Load ``[tool.repro-lint]`` from the nearest ``pyproject.toml``.

    Walks up from ``start`` (default: cwd) looking for a
    ``pyproject.toml``; returns defaults when none is found, the file has
    no ``[tool.repro-lint]`` table, or ``tomllib`` is unavailable.
    """
    pyproject = _find_pyproject(start or Path.cwd())
    if pyproject is None or tomllib is None:
        return LintConfig()
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.repro-lint] must be a table")
    exclude = tuple(str(p) for p in table.get("exclude", ()))
    rules = {
        key: dict(value)
        for key, value in table.items()
        if isinstance(value, dict)
    }
    return LintConfig(exclude=exclude, rules=rules)


def _find_pyproject(start: Path) -> Optional[Path]:
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
