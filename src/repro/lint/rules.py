"""The repo-specific rules enforced by ``repro.lint``.

Every rule is an :class:`~repro.lint.engine.LintRule` (an
``ast.NodeVisitor``) instantiated per file.  Rules resolve imported
names to canonical dotted paths (``np.random.normal`` ->
``numpy.random.normal``) so aliases cannot dodge them.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import LintRule

__all__ = [
    "AllExportsRule",
    "ExplicitDtypeRule",
    "MetricNameRegistryRule",
    "NoBareArtifactWriteRule",
    "NoGlobalRngRule",
    "NoParamMutationRule",
    "NoPrintInLibraryRule",
    "NoSequentialClientLoopRule",
    "NoWallclockSeedRule",
    "UnusedPureResultRule",
    "dotted_parts",
]

#: numpy.random attributes that are part of the explicit-Generator API
#: and therefore fine to touch (everything else is legacy global state).
ALLOWED_NP_RANDOM = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Dtype-inferring constructors and how many positional arguments they
#: need before the dtype has been given positionally.
DTYPE_CONSTRUCTORS: Dict[str, int] = {
    "zeros": 2,
    "ones": 2,
    "empty": 2,
    "full": 3,
}

#: ndarray / container methods that mutate the receiver in place.
MUTATING_METHODS = frozenset(
    {
        "sort",
        "fill",
        "resize",
        "put",
        "partition",
        "setfield",
        "setflags",
        "itemset",
        "byteswap",
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "update",
    }
)

#: Calls whose result is the only effect; discarding it is a bug.
DEFAULT_PURE_FUNCTIONS = frozenset(
    {
        "relevance",
        "relevance_per_segment",
        "sign_agreement_counts",
        "normalized_update_difference",
        "threshold_at",
        "encode",
        "decode",
    }
)

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

_SEEDISH = re.compile(r"seed|entropy|run_id|exp_id|experiment_id", re.IGNORECASE)
_SEEDISH_CALLEES = frozenset({"default_rng", "SeedSequence", "RandomState"})


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``np.random.normal`` -> ``["np", "random", "normal"]`` (or None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class _AliasTrackingRule(LintRule):
    """Shared canonical-name resolution over tracked module imports."""

    #: Module paths worth remembering aliases for.
    tracked_modules: Tuple[str, ...] = ()

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: local name -> canonical dotted path it refers to.
        self._aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.tracked_modules:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self._aliases[bound] = target
            elif alias.name.split(".")[0] in self.tracked_modules:
                # ``import numpy.random`` binds the root package name.
                if alias.asname:
                    self._aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    self._aliases[root] = root
        self.handle_import(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module in self.tracked_modules:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                self._aliases[bound] = f"{node.module}.{alias.name}"
        self.handle_import_from(node)

    def handle_import(self, node: ast.Import) -> None:
        """Hook for subclasses; default is a no-op."""

    def handle_import_from(self, node: ast.ImportFrom) -> None:
        """Hook for subclasses; default is a no-op."""

    def canonical(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of an expression, if its base is a
        tracked import; ``None`` otherwise."""
        parts = dotted_parts(node)
        if not parts:
            return None
        head = self._aliases.get(parts[0])
        if head is None:
            return None
        return ".".join([head, *parts[1:]])


class NoGlobalRngRule(_AliasTrackingRule):
    """Forbid module-level RNG state (``np.random.*``, stdlib ``random``).

    Deterministic reproduction requires every draw to come from an
    explicit ``numpy.random.Generator`` (see ``repro.utils.rng``); any
    call that touches numpy's or the stdlib's hidden global stream makes
    runs order-dependent and irreproducible.
    """

    name = "no-global-rng"
    description = (
        "stochastic calls must route through explicit numpy Generators "
        "(repro.utils.rng), never module-level RNG state"
    )
    tracked_modules = ("numpy", "numpy.random")

    def handle_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib 'random' uses hidden global state; draw from "
                    "an explicit numpy Generator (repro.utils.rng.ensure_rng)",
                )

    def handle_import_from(self, node: ast.ImportFrom) -> None:
        if node.level != 0:
            return
        if node.module == "random":
            self.report(
                node,
                "stdlib 'random' uses hidden global state; draw from "
                "an explicit numpy Generator (repro.utils.rng.ensure_rng)",
            )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name != "*" and alias.name not in ALLOWED_NP_RANDOM:
                    self.report(
                        node,
                        f"'numpy.random.{alias.name}' drives the legacy "
                        "global RNG; use an explicit Generator instead",
                    )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        canonical = self.canonical(node)
        if canonical is not None and canonical.startswith("numpy.random"):
            parts = canonical.split(".")
            if len(parts) >= 3 and parts[2] not in ALLOWED_NP_RANDOM:
                self.report(
                    node,
                    f"'{'.'.join(parts[:3])}' drives the legacy global "
                    "RNG; route through repro.utils.rng.ensure_rng / "
                    "child_rngs instead",
                )
            # A resolved numpy.random chain needs no deeper inspection.
            return
        self.generic_visit(node)


class ExplicitDtypeRule(_AliasTrackingRule):
    """Require an explicit ``dtype`` on dtype-inferring constructors.

    ``np.zeros(n)`` silently commits to float64; mixing it with float32
    model parameters flips sign-agreement statistics after the implicit
    cast.  Hot-path code must say what it means.
    """

    name = "explicit-dtype"
    description = (
        "np.zeros/np.ones/np.empty/np.full in hot paths must pass an "
        "explicit dtype"
    )
    default_paths = ("core/", "fl/", "nn/", "compress/")
    tracked_modules = ("numpy",)

    def visit_Call(self, node: ast.Call) -> None:
        canonical = self.canonical(node.func)
        if canonical is not None:
            parts = canonical.split(".")
            if len(parts) == 2 and parts[0] == "numpy":
                ctor = parts[1]
                constructors = self.settings.option(
                    "constructors", DTYPE_CONSTRUCTORS
                )
                if ctor in constructors and not self._has_dtype(
                    node, int(constructors[ctor])
                ):
                    self.report(
                        node,
                        f"'{ast.unparse(node.func)}' without an explicit "
                        "dtype silently commits to float64; pass dtype=...",
                    )
        self.generic_visit(node)

    @staticmethod
    def _has_dtype(node: ast.Call, positional_slot: int) -> bool:
        if len(node.args) >= positional_slot:
            return True
        for keyword in node.keywords:
            if keyword.arg == "dtype" or keyword.arg is None:  # dtype= or **kw
                return True
        return False


class NoParamMutationRule(LintRule):
    """Forbid in-place mutation of function parameters.

    In ``core/`` and the aggregation path, arrays received as arguments
    frequently alias server-side state (``server.global_params``, the
    feedback history); ``u += x`` or ``u[...] = x`` there corrupts state
    across rounds in ways no local test catches.
    """

    name = "no-param-mutation"
    description = (
        "function parameters (potentially aliased ndarrays) must not be "
        "mutated in place"
    )
    default_paths = ("core/", "fl/aggregation.py")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Stack of (param names, name -> first-rebind line) per function.
        self._scopes: List[Tuple[Set[str], Dict[str, int]]] = []

    def _visit_function(self, node) -> None:
        args = node.args
        names = {
            a.arg
            for a in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]
        } - {"self", "cls"}
        self._scopes.append((names, {}))
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _is_live_param(self, name: str, lineno: int) -> bool:
        """Is ``name`` a parameter not yet rebound above ``lineno``?"""
        for params, rebinds in reversed(self._scopes):
            if name in params:
                first_rebind = rebinds.get(name)
                return first_rebind is None or lineno <= first_rebind
            if name in rebinds:
                return False
        return False

    def _note_rebind(self, name: str, lineno: int) -> None:
        if self._scopes:
            rebinds = self._scopes[-1][1]
            if name not in rebinds or lineno < rebinds[name]:
                rebinds[name] = lineno

    @staticmethod
    def _base_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store_target(node.target, node.lineno)
        self.generic_visit(node)

    def _check_store_target(self, target: ast.AST, lineno: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element, lineno)
            return
        if isinstance(target, ast.Name):
            self._note_rebind(target.id, lineno)
            return
        if isinstance(target, ast.Subscript):
            base = self._base_name(target)
            if base and self._is_live_param(base, lineno):
                self.report(
                    target,
                    f"assignment into parameter '{base}' mutates a "
                    "possibly aliased buffer; operate on a copy",
                )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        base = self._base_name(node.target)
        if base and self._is_live_param(base, node.lineno):
            self.report(
                node,
                f"augmented assignment mutates parameter '{base}' in "
                "place; aliasing corrupts caller state — use "
                f"'{base} = {base} <op> ...' on a copy",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            base = self._base_name(func.value)
            if (
                isinstance(func.value, ast.Name)
                and base
                and self._is_live_param(base, node.lineno)
            ):
                self.report(
                    node,
                    f"'.{func.attr}()' mutates parameter '{base}' in "
                    "place; operate on a copy",
                )
        self.generic_visit(node)


class NoWallclockSeedRule(_AliasTrackingRule):
    """Forbid wall-clock time feeding seeds or experiment identifiers.

    A seed derived from ``time.time()`` makes the run unreproducible by
    construction.  Seeds must flow from the experiment's root seed via
    ``repro.utils.rng.spawn_seed``.
    """

    name = "no-wallclock-seed"
    description = (
        "time.time()/datetime.now() must not feed seeds or experiment ids"
    )
    tracked_modules = ("time", "datetime", "datetime.datetime")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._flagged: Set[int] = set()

    def _wallclock_calls(self, node: ast.AST) -> Iterator[ast.Call]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                canonical = self.canonical(sub.func)
                if canonical in _WALLCLOCK_CALLS:
                    yield sub

    def _flag(self, call: ast.Call, context: str) -> None:
        if id(call) in self._flagged:
            return
        self._flagged.add(id(call))
        self.report(
            call,
            f"wall-clock call feeds {context}; derive it from the root "
            "seed via repro.utils.rng.spawn_seed for reproducibility",
        )

    @staticmethod
    def _target_names(target: ast.AST) -> Iterator[str]:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                yield sub.id
            elif isinstance(sub, ast.Attribute):
                yield sub.attr

    def _check_assign(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        names = [n for t in targets for n in self._target_names(t)]
        seedish = [n for n in names if _SEEDISH.search(n)]
        if not seedish:
            return
        for call in self._wallclock_calls(value):
            self._flag(call, f"'{seedish[0]}'")

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_assign(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_assign([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_assign([node.target], node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        if callee in _SEEDISH_CALLEES or (callee and _SEEDISH.search(callee)):
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                for call in self._wallclock_calls(arg):
                    self._flag(call, f"a '{callee}(...)' argument")
        else:
            for keyword in node.keywords:
                if keyword.arg and _SEEDISH.search(keyword.arg):
                    for call in self._wallclock_calls(keyword.value):
                        self._flag(call, f"keyword '{keyword.arg}'")
        self.generic_visit(node)


class UnusedPureResultRule(LintRule):
    """Flag discarded results of pure functions.

    ``relevance(u, u_bar)`` (and the codec ``encode``/``decode`` pair)
    have no side effects; a bare call statement is always a bug — the
    author meant to use the value.
    """

    name = "unused-pure-result"
    description = "discarding the result of a side-effect-free call is a bug"

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            callee = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            pure = frozenset(
                self.settings.option("functions", DEFAULT_PURE_FUNCTIONS)
            )
            if callee in pure:
                self.report(
                    node,
                    f"result of pure function '{callee}' is discarded; "
                    "assign or remove the call",
                )
        self.generic_visit(node)


class NoSequentialClientLoopRule(LintRule):
    """Per-client compute loops must route through ``repro.fl.executor``.

    A literal ``for client in ...: client.compute_update(...)`` loop
    (or the comprehension equivalent) serialises the compute half of a
    round and silently bypasses the execution engine — the thread and
    process backends, the shared-memory broadcast and the deterministic
    reduction all live behind ``ClientExecutor.run_round``.  Only the
    executor module itself (where the serial backend is the
    implementation) may loop directly.
    """

    name = "no-sequential-client-loop"
    description = (
        "per-client compute_update loops must go through the "
        "repro.fl.executor engine (ClientExecutor.run_round)"
    )

    #: Package-relative files where the direct loop IS the engine.
    DEFAULT_ALLOWED = ("fl/executor.py",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Call nodes already reported (nested loops share bodies).
        self._flagged: Set[int] = set()

    def _allowed_here(self) -> bool:
        allowed = self.settings.option("allow_in", self.DEFAULT_ALLOWED)
        return self.ctx.package_path in tuple(allowed)

    @staticmethod
    def _compute_update_call(node: ast.AST) -> Optional[ast.Call]:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "compute_update"
            ):
                return sub
        return None

    def _check(self, loop_node: ast.AST, body: Sequence[ast.AST]) -> None:
        if self._allowed_here():
            return
        for stmt in body:
            call = self._compute_update_call(stmt)
            if call is not None and id(call) not in self._flagged:
                self._flagged.add(id(call))
                self.report(
                    call,
                    "sequential per-client compute loop; fan out through "
                    "the trainer's executor (ClientExecutor.run_round) so "
                    "the thread/process backends apply",
                )
                return

    def visit_For(self, node: ast.For) -> None:
        self._check(node, node.body)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check(node, node.body)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check(node, node.body)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if not self._allowed_here():
            element = node.key if isinstance(node, ast.DictComp) else node.elt
            call = self._compute_update_call(element)
            if call is not None and id(call) not in self._flagged:
                self._flagged.add(id(call))
                self.report(
                    call,
                    "sequential per-client compute comprehension; fan out "
                    "through the trainer's executor "
                    "(ClientExecutor.run_round) so the thread/process "
                    "backends apply",
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension


class NoPrintInLibraryRule(LintRule):
    """Library code must not ``print``; observability goes through sinks.

    A stray ``print`` in ``core``/``fl``/``nn`` writes to whatever
    stdout happens to be attached — invisible in a worker process,
    corrupting piped output, impossible to assert on.  Diagnostics
    belong in the :mod:`repro.obs` event stream (or an explicit
    ``stream.write`` on a caller-supplied stream); only CLI entry
    points and experiment scripts, which own their stdout, may print.
    """

    name = "no-print-in-library"
    description = (
        "library modules must not call print(); route diagnostics "
        "through repro.obs sinks (CLI/experiment scripts are exempt)"
    )

    #: Package-relative files/dirs (trailing '/') that own their stdout.
    DEFAULT_ALLOWED = ("lint/cli.py", "tools/", "experiments/")

    def _allowed_here(self) -> bool:
        allowed = tuple(self.settings.option("allow_in", self.DEFAULT_ALLOWED))
        path = self.ctx.package_path
        return any(
            path.startswith(entry) if entry.endswith("/") else path == entry
            for entry in allowed
        )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not self._allowed_here()
        ):
            self.report(
                node,
                "print() in library code; emit through a repro.obs sink "
                "or write to a caller-supplied stream instead",
            )
        self.generic_visit(node)


class NoBareArtifactWriteRule(_AliasTrackingRule):
    """Artifact writes in library code must go through ``atomic_io``.

    A bare ``open(path, "w")``, ``Path.write_text``/``write_bytes`` or
    ``json.dump`` truncates the target before the new content is
    durable: a crash mid-write leaves a torn artifact — exactly the
    failure the checkpoint/trace recovery machinery exists to survive.
    Library code writes files through
    :func:`repro.utils.atomic_io.atomic_write` (temp file + fsync +
    rename); only ``atomic_io`` itself, CLI entry points and experiment
    scripts (whose outputs are disposable) are exempt.  Streaming
    writers that must append in place (the JSONL trace sink) keep their
    mode in a variable and fsync explicitly — the rule only flags
    literal write/create modes.
    """

    name = "no-bare-artifact-write"
    description = (
        "library code must write artifacts via repro.utils.atomic_io, "
        "not bare open(.., 'w')/write_text/json.dump"
    )
    tracked_modules = ("json",)

    #: Package-relative files/dirs (trailing '/') exempt from the rule.
    DEFAULT_ALLOWED = (
        "utils/atomic_io.py",
        "lint/cli.py",
        "tools/",
        "experiments/",
    )

    #: Literal ``open`` modes that truncate or create the target.
    _DESTRUCTIVE = ("w", "x")

    def _allowed_here(self) -> bool:
        allowed = tuple(self.settings.option("allow_in", self.DEFAULT_ALLOWED))
        path = self.ctx.package_path
        return any(
            path.startswith(entry) if entry.endswith("/") else path == entry
            for entry in allowed
        )

    @classmethod
    def _literal_write_mode(cls, node: ast.Call) -> Optional[str]:
        mode: Optional[ast.AST] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(ch in mode.value for ch in cls._DESTRUCTIVE)
        ):
            return mode.value
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if not self._allowed_here():
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._literal_write_mode(node)
                if mode is not None:
                    self.report(
                        node,
                        f"bare open(.., {mode!r}) truncates the target "
                        "before the write is durable; use "
                        "repro.utils.atomic_io.atomic_write",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                self.report(
                    node,
                    f"'.{func.attr}()' is not crash-safe; use "
                    f"repro.utils.atomic_io.atomic_{func.attr.split('_')[1]} "
                    "(tmp + fsync + rename)",
                )
            elif self.canonical(func) == "json.dump":
                self.report(
                    node,
                    "json.dump writes incrementally into a live file; "
                    "json.dumps the payload and write it via "
                    "repro.utils.atomic_io.atomic_write",
                )
        self.generic_visit(node)


class AllExportsRule(LintRule):
    """Every public module must define an accurate ``__all__``.

    The export list is what the API-surface tests and downstream
    ``import *`` consumers see; a missing or stale ``__all__`` silently
    widens or narrows the public API.
    """

    name = "all-exports"
    description = (
        "public modules must define __all__ listing every public "
        "def/class, with no undefined or duplicate entries"
    )

    def finish(self, tree: ast.Module) -> None:
        module = self.ctx.module_name
        if module.startswith("_") and module != "__init__":
            return
        statements = list(_iter_module_statements(tree.body))
        all_node, all_names, dynamic = _find_all(statements)
        if all_node is None:
            self.report(
                tree.body[0] if tree.body else tree,
                "public module does not define __all__",
            )
            return
        if all_names is None:
            self.report(
                all_node, "__all__ must be a literal list/tuple of strings"
            )
            return
        seen: Set[str] = set()
        for entry in all_names:
            if entry in seen:
                self.report(all_node, f"duplicate __all__ entry '{entry}'")
            seen.add(entry)
        bound = _module_bindings(statements)
        for entry in seen:
            if entry not in bound:
                self.report(
                    all_node,
                    f"__all__ exports '{entry}' which is not defined in "
                    "the module",
                )
        if dynamic:
            return  # extended at runtime; completeness is unknowable
        for stmt in statements:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and not stmt.name.startswith("_"):
                if stmt.name not in seen:
                    self.report(
                        stmt,
                        f"public name '{stmt.name}' is missing from "
                        "__all__",
                    )


def _iter_module_statements(body: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """Module-level statements, descending into If/Try guards only."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _iter_module_statements(stmt.body)
            yield from _iter_module_statements(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                yield from _iter_module_statements(block)
            for handler in stmt.handlers:
                yield from _iter_module_statements(handler.body)


def _find_all(
    statements: Sequence[ast.stmt],
) -> Tuple[Optional[ast.stmt], Optional[List[str]], bool]:
    """Locate ``__all__``: (node, literal names or None, extended?)."""
    node: Optional[ast.stmt] = None
    names: Optional[List[str]] = None
    dynamic = False
    for stmt in statements:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            node = stmt
            names = _literal_strings(stmt.value)
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
            and stmt.value is not None
        ):
            node = stmt
            names = _literal_strings(stmt.value)
        elif (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            dynamic = True
            if node is None:
                node = stmt
    return node, names, dynamic


def _literal_strings(node: ast.AST) -> Optional[List[str]]:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: List[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        out.append(element.value)
    return out


def _module_bindings(statements: Sequence[ast.stmt]) -> Set[str]:
    bound: Set[str] = set()
    for stmt in statements:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            bound.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
    return bound


class MetricNameRegistryRule(LintRule):
    """Metric names must be literals declared in ``repro.obs.names``.

    A typo'd ``metrics.counter("comm.uplaods")`` silently opens a
    separate time series — no error, just missing data in every report
    built on the real name.  Requiring each ``counter``/``gauge``/
    ``histogram`` call to pass a string literal declared in the central
    registry turns that into a lint failure.  Name families with a
    data-driven suffix (the emulator's per-``MessageKind`` counters)
    are declared as prefixes; call sites may build those with an
    f-string whose literal head starts with a registered prefix.
    """

    name = "metric-name-registry"
    description = (
        "counter()/gauge()/histogram() names must be string literals "
        "declared in repro.obs.names (f-strings allowed for registered "
        "prefix families)"
    )

    #: Attribute names whose receiver looks like a metrics registry.
    INSTRUMENTS = frozenset({"counter", "gauge", "histogram"})
    RECEIVERS = frozenset({"metrics", "registry"})

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # Lazy import: keeps repro.lint importable without repro.obs on
        # the path (both are stdlib-only; this is layering hygiene).
        from repro.obs.names import METRIC_NAMES, METRIC_PREFIXES

        self._names = METRIC_NAMES | set(
            self.settings.option("extra_names", ())
        )
        self._prefixes = tuple(METRIC_PREFIXES) + tuple(
            self.settings.option("extra_prefixes", ())
        )

    def _is_registered(self, name: str) -> bool:
        return name in self._names or any(
            name.startswith(prefix) for prefix in self._prefixes
        )

    def _receiver_is_registry(self, func: ast.Attribute) -> bool:
        parts = dotted_parts(func.value)
        return bool(parts) and parts[-1] in self.RECEIVERS

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self.INSTRUMENTS
            and self._receiver_is_registry(func)
            and node.args
        ):
            self._check_name(node, node.args[0], func.attr)
        self.generic_visit(node)

    def _check_name(
        self, node: ast.Call, arg: ast.expr, instrument: str
    ) -> None:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not self._is_registered(arg.value):
                self.report(
                    node,
                    f"metric name {arg.value!r} is not declared in "
                    "repro.obs.names; add it to METRIC_NAMES (or a "
                    "prefix family) so reports can rely on the registry",
                )
            return
        if isinstance(arg, ast.JoinedStr):
            head = ""
            if arg.values and isinstance(arg.values[0], ast.Constant):
                head = str(arg.values[0].value)
            if not any(head.startswith(p) for p in self._prefixes):
                self.report(
                    node,
                    f"f-string metric name must start with a prefix "
                    f"declared in repro.obs.names.METRIC_PREFIXES "
                    f"(literal head is {head!r})",
                )
            return
        self.report(
            node,
            f"{instrument}() name must be a string literal (or an "
            "f-string over a registered prefix family), not a computed "
            "expression — the registry cannot vouch for runtime names",
        )


DEFAULT_RULES: Tuple[type, ...] = (
    NoGlobalRngRule,
    ExplicitDtypeRule,
    NoParamMutationRule,
    NoBareArtifactWriteRule,
    NoPrintInLibraryRule,
    NoSequentialClientLoopRule,
    NoWallclockSeedRule,
    UnusedPureResultRule,
    AllExportsRule,
    MetricNameRegistryRule,
)
