"""Cross-module taint resolution over the project model.

Phase 1 records taint *symbolically*: an expression's taint value may
say "tainted if any of these callees returns RNG taint".  This module
closes that recursion with a fixpoint over function return summaries:
a function is RNG-tainted when any of its recorded return expressions
is directly tainted, names an RNG source, or resolves to a function
already in the tainted set.  Iterate until no function changes — the
lattice is two-point per function and merge is monotone, so the loop
terminates in at most ``len(functions)`` passes (in practice 2-3).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.lint.project import RNG_SOURCES, ProjectModel

__all__ = ["compute_tainted_functions", "is_rng_tainted", "taint_reason"]


def _resolve_dep(project: ProjectModel, canonical: str) -> Optional[str]:
    return project.resolve_function(canonical)


def compute_tainted_functions(project: ProjectModel) -> Set[str]:
    """Function ids whose return value carries RNG taint."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for fid, (_, _, facts) in project.functions.items():
            if fid in tainted:
                continue
            for ret in facts["returns"]:
                if ret["d"]:
                    tainted.add(fid)
                    changed = True
                    break
                hit = False
                for dep in ret["c"]:
                    if dep in RNG_SOURCES:
                        hit = True
                        break
                    dep_fid = _resolve_dep(project, dep)
                    if dep_fid is not None and dep_fid in tainted:
                        hit = True
                        break
                if hit:
                    tainted.add(fid)
                    changed = True
                    break
    return tainted


def is_rng_tainted(
    taint: Dict, project: ProjectModel, tainted: Set[str]
) -> bool:
    """Resolve a symbolic taint value against the function fixpoint."""
    if taint.get("d"):
        return True
    for dep in taint.get("c", ()):
        if dep in RNG_SOURCES:
            return True
        dep_fid = _resolve_dep(project, dep)
        if dep_fid is not None and dep_fid in tainted:
            return True
    return False


def taint_reason(
    taint: Dict, project: ProjectModel, tainted: Set[str]
) -> str:
    """Human-readable provenance for a resolved taint, for messages."""
    if taint.get("d"):
        return "value constructed directly from an RNG source"
    for dep in taint.get("c", ()):
        if dep in RNG_SOURCES:
            return f"value returned by RNG source {dep}"
        dep_fid = _resolve_dep(project, dep)
        if dep_fid is not None and dep_fid in tainted:
            return f"value returned by RNG-tainted function {dep_fid}"
    return "value carries RNG taint"
