"""Incremental analysis cache for the whole-program pass.

Layout (``repro-lint-cache/v1``)::

    {
      "schema": "repro-lint-cache/v1",
      "extractor_version": 2,
      "config_key": "<sha256 of the effective rule config>",
      "modules": {
        "<package_path>": {
          "sha": "<sha256 of file content>",
          "summary": {...},          # ModuleSummary.to_json()
          "violations": [[rule, path, line, col, message, severity], ...]
        }
      },
      "flow": {
        "<package_path>": {
          "key": "<digest of own sha + forward-import-closure shas>",
          "findings": [[rule, path, line, col, message, severity], ...]
        }
      }
    }

Per-file entries are keyed by content SHA-256, so a warm run re-reads
and re-hashes each file but skips ``ast.parse`` and rule execution for
unchanged ones.  Flow findings are keyed by the digest of a module's
*forward* import closure — module M's findings are recomputed exactly
when some module in its closure changed, which is the reverse-import-
closure invalidation the engine promises, expressed per consumer.

A missing, corrupt, or version-skewed cache is silently treated as
cold; the cache must never turn into an engine failure (exit 2).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lint.engine import Violation

__all__ = ["AnalysisCache", "config_key"]

SCHEMA = "repro-lint-cache/v1"


def config_key(config_data: Any) -> str:
    """Stable digest of whatever configuration affects findings."""
    blob = json.dumps(config_data, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _pack(violations: List[Violation]) -> List[List]:
    return [
        [v.rule, v.path, v.line, v.col, v.message, v.severity]
        for v in violations
    ]


def _unpack(rows: List[List]) -> List[Violation]:
    return [
        Violation(
            rule=row[0],
            path=row[1],
            line=row[2],
            col=row[3],
            message=row[4],
            severity=row[5],
        )
        for row in rows
    ]


class AnalysisCache:
    """Load/store per-file summaries and per-module flow findings."""

    def __init__(self, path: Optional[Path], key: str) -> None:
        from repro.lint.project import EXTRACTOR_VERSION

        self.path = path
        self.key = key
        self.extractor_version = EXTRACTOR_VERSION
        self.modules: Dict[str, Dict] = {}
        self.flow: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self.flow_hits = 0
        if path is not None and path.exists():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                return
            if (
                payload.get("schema") == SCHEMA
                and payload.get("config_key") == key
                and payload.get("extractor_version") == EXTRACTOR_VERSION
            ):
                self.modules = payload.get("modules", {})
                self.flow = payload.get("flow", {})

    # -- per-file summaries + v1 violations ---------------------------------

    def lookup_module(self, package_path: str, sha: str) -> Optional[Dict]:
        """Cached ``{"summary", "violations"}`` for an unchanged file."""
        entry = self.modules.get(package_path)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            return {
                "summary": entry["summary"],
                "violations": _unpack(entry["violations"]),
            }
        self.misses += 1
        return None

    def store_module(
        self,
        package_path: str,
        sha: str,
        summary: Optional[Dict],
        violations: List[Violation],
    ) -> None:
        self.modules[package_path] = {
            "sha": sha,
            "summary": summary,
            "violations": _pack(violations),
        }

    # -- per-module flow findings -------------------------------------------

    def lookup_flow(self, package_path: str, key: str) -> Optional[List[Violation]]:
        entry = self.flow.get(package_path)
        if entry is not None and entry.get("key") == key:
            self.flow_hits += 1
            return _unpack(entry["findings"])
        return None

    def store_flow(
        self, package_path: str, key: str, findings: List[Violation]
    ) -> None:
        self.flow[package_path] = {"key": key, "findings": _pack(findings)}

    # -- persistence --------------------------------------------------------

    def prune(self, live_package_paths) -> None:
        """Drop entries for files no longer in the analyzed set."""
        live = set(live_package_paths)
        self.modules = {
            pp: e for pp, e in self.modules.items() if pp in live
        }
        self.flow = {pp: e for pp, e in self.flow.items() if pp in live}

    def save(self) -> None:
        if self.path is None:
            return
        from repro.utils.atomic_io import atomic_write_text

        payload = {
            "schema": SCHEMA,
            "extractor_version": self.extractor_version,
            "config_key": self.key,
            "modules": self.modules,
            "flow": self.flow,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self.path, json.dumps(payload, sort_keys=True)
            )
        except OSError:
            pass  # a cache that cannot be written is just a cold cache
