"""Phase 1 of the whole-program analyzer: per-module summaries.

The project pass runs in two phases.  Phase 1 (this module) reduces
every file to a :class:`ModuleSummary` — a JSON-serialisable digest of
the facts the flow rules need: the import table, top-level bindings,
per-function call sites, RNG/wall-clock taint expressions, shared-state
stores, class attribute maps and capture-method references.  Phase 2
(:mod:`repro.lint.flow_rules`) runs pure-data rules over the
:class:`ProjectModel` built from those summaries.

Because summaries are plain dicts, the incremental cache
(:mod:`repro.lint.cache`) can persist them keyed by file-content
SHA-256: a warm run re-reads and re-hashes sources but never re-parses
an unchanged file, which is where the cold/warm speedup comes from.

Taint expressions are symbolic: ``{"d": bool, "c": [refs], "wc": bool}``
means *tainted directly* (``d``: the value came straight out of an RNG
constructor), *tainted if any named callee returns taint* (``c``:
canonical dotted refs, resolved against the cross-module fixpoint in
:mod:`repro.lint.dataflow`), and *wall-clock tainted* (``wc``: the
value derives from a clock reading; wall-clock taint needs no
cross-module component because every clock source is a direct call).
"""

from __future__ import annotations

import ast
import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import (
    FileContext,
    Linter,
    Violation,
    package_relative_path,
    parse_suppressions,
)
from repro.lint.rules import dotted_parts

__all__ = [
    "AnalysisResult",
    "CAPTURE_METHODS",
    "EXTRACTOR_VERSION",
    "ModuleSummary",
    "ProjectAnalyzer",
    "ProjectModel",
    "extract_summary",
    "module_name_for",
]

#: Bump when the summary layout or extraction semantics change; the
#: cache treats entries written by a different version as misses.
EXTRACTOR_VERSION = 3

#: CPython 3.11 tracks AST-object construction depth in per-interpreter
#: (not per-thread) state, so concurrent ``ast.parse`` calls can corrupt
#: the counter and raise ``SystemError: AST constructor recursion depth
#: mismatch`` — reliably so once anything (e.g. hypothesis) registers a
#: ``gc.callbacks`` hook that yields the GIL mid-conversion.  All parses
#: reachable from the thread pool take this lock; extraction and the
#: per-file rule walk (pure Python) still run in parallel.
_PARSE_LOCK = threading.Lock()


def _parse(source: str, filename: str) -> ast.Module:
    with _PARSE_LOCK:
        return ast.parse(source, filename=filename)

#: Method names that serialise/deserialise persistent state.  A class
#: defining (or inheriting) one is "stateful" for ckpt-state-coverage,
#: and the attributes these methods touch count as captured.
CAPTURE_METHODS = frozenset(
    {
        "state_dict",
        "load_state_dict",
        "export_state",
        "restore_state",
        "restore",
        "rng_state",
        "set_rng_state",
    }
)

#: Canonical callables whose return value IS an RNG stream.
RNG_SOURCES = frozenset({"numpy.random.default_rng", "numpy.random.Generator"})

#: Canonical callables returning wall-clock/scheduling readings.
WALLCLOCK_SOURCES = frozenset(
    {
        "time.monotonic",
        "time.perf_counter",
        "time.time",
        "time.process_time",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Attribute-call names that hand a callable to a worker pool.
BOUNDARY_METHODS = frozenset({"submit", "apply_async"})

#: Keyword arguments that register a worker-side entry point.
ENTRY_KWARGS = ("initializer", "target")

#: Attribute-call names that register an event-handler callback.  The
#: async engine (repro.fl.events) invokes handlers from its event loop
#: interleaved with in-flight executor rounds, so handler-reachable
#: code is held to the same shared-state discipline as worker-reachable
#: code.
HANDLER_METHODS = frozenset({"register_handler"})

#: Tracer methods that emit events with an ``attrs`` payload.
TRACE_EMIT_METHODS = frozenset({"span", "record_span", "event"})


def module_name_for(package_path: str) -> str:
    """``fl/trainer.py`` -> ``repro.fl.trainer`` (``__init__`` folds up)."""
    parts = package_path[: -len(".py")].split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


def _sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -- taint expressions -------------------------------------------------------


def _taint(d: bool = False, c: Sequence[str] = (), wc: bool = False) -> Dict:
    return {"d": d, "c": sorted(set(c)), "wc": wc}


def _merge(*taints: Optional[Dict]) -> Dict:
    d = False
    wc = False
    calls: Set[str] = set()
    for t in taints:
        if not t:
            continue
        d = d or t["d"]
        wc = wc or t["wc"]
        calls.update(t["c"])
    return _taint(d, calls, wc)


def _is_tainted_shape(t: Optional[Dict]) -> bool:
    return bool(t and (t["d"] or t["c"] or t["wc"]))


@dataclass
class ModuleSummary:
    """One module's phase-1 digest; ``data`` is pure JSON."""

    package_path: str
    data: Dict[str, Any]

    @property
    def module(self) -> str:
        return self.data["module"]

    @property
    def sha(self) -> str:
        return self.data["sha"]

    @property
    def path(self) -> str:
        return self.data["path"]

    @property
    def imports(self) -> Dict[str, str]:
        return self.data["imports"]

    @property
    def functions(self) -> Dict[str, Dict]:
        return self.data["functions"]

    @property
    def classes(self) -> Dict[str, Dict]:
        return self.data["classes"]

    def to_json(self) -> Dict[str, Any]:
        return {"package_path": self.package_path, "data": self.data}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            package_path=payload["package_path"], data=payload["data"]
        )


class _FunctionExtractor:
    """Single forward walk over one function body.

    Merge-only taint semantics: a name once tainted stays tainted for
    the rest of the function (conservative across branches).  Aliases
    track which local names are views of module-level state or of
    parameters, so ``state = _WORKER_STATE; state.x[...] = v`` is still
    a store through module state.
    """

    def __init__(
        self,
        node: ast.AST,
        module: "_ModuleExtractor",
        cls_name: Optional[str],
    ) -> None:
        self.node = node
        self.module = module
        self.cls_name = cls_name
        self.params = [a.arg for a in self._all_args(node.args)]
        self.env: Dict[str, Dict] = {}
        #: local name -> root tag ("mod:NAME" | "param:NAME" | "import:X")
        self.alias: Dict[str, str] = {}
        self.globals_decl: Set[str] = set()
        self.facts: Dict[str, Any] = {
            "name": node.name,
            "cls": cls_name,
            "line": node.lineno,
            "params": self.params,
            "calls": [],
            "returns": [],
            "tainted_defaults": [],
            "boundary_calls": [],
            "entry_targets": [],
            "handler_targets": [],
            "stores": [],
            "global_rebinds": [],
            "self_refs": [],
            "self_calls": [],
            "strings": [],
            "attr_assigns": [],
            "trace": [],
        }
        self._self_refs: Set[str] = set()
        self._self_calls: Set[str] = set()
        self._strings: Set[str] = set()
        self._span_vars: Dict[str, int] = {}
        self._span_entered: Set[str] = set()

    @staticmethod
    def _all_args(args: ast.arguments) -> List[ast.arg]:
        out = list(args.posonlyargs) + list(args.args)
        if args.vararg:
            out.append(args.vararg)
        out.extend(args.kwonlyargs)
        if args.kwarg:
            out.append(args.kwarg)
        return out

    # -- name resolution ----------------------------------------------------

    def _ref(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a callable expression to a reference.

        Returns ``("ref", canonical)`` for import/top-level rooted
        chains, ``("self", method)`` for ``self.m``, ``("method", m)``
        for attribute access on anything else, or ``None``.
        """
        parts = dotted_parts(node)
        if not parts:
            if isinstance(node, ast.Attribute):
                return ("method", node.attr)
            return None
        root = parts[0]
        if root == "self":
            if len(parts) == 2:
                return ("self", parts[1])
            return ("method", parts[-1])
        canonical = self.module.resolve_name(root)
        if canonical is not None:
            return ("ref", ".".join([canonical, *parts[1:]]))
        if len(parts) > 1:
            return ("method", parts[-1])
        return ("ref", root)

    def _root_tag(self, node: ast.AST) -> Optional[str]:
        """Root of an attribute/subscript chain as a store/alias tag."""
        while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        if name == "self":
            return "self"
        if name in self.alias:
            return self.alias[name]
        if name in self.globals_decl:
            return f"mod:{name}"
        if name in self.params:
            return f"param:{name}"
        if name in self.env:
            return None  # plain local
        if name in self.module.toplevel:
            return f"mod:{name}"
        if name in self.module.imports:
            return f"import:{self.module.imports[name]}"
        return None

    # -- taint evaluation ---------------------------------------------------

    def _eval(self, node: Optional[ast.AST]) -> Dict:
        if node is None:
            return _taint()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _taint())
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                self._strings.add(node.value)
            return _taint()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self._self_refs.add(node.attr)
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, (ast.BinOp,)):
            return _merge(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return _merge(*[self._eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return _taint()
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _merge(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return _merge(*[self._eval(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            taints = [self._eval(v) for v in node.values]
            taints.extend(self._eval(k) for k in node.keys if k is not None)
            return _merge(*taints)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._bind_target(gen.target, self._eval(gen.iter))
            return self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self._bind_target(gen.target, self._eval(gen.iter))
            return _merge(self._eval(node.key), self._eval(node.value))
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                self._eval(value)
            return _taint()
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return _taint()
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._bind_target(node.target, taint)
            return taint
        return _taint()

    def _eval_call(self, node: ast.Call) -> Dict:
        ref = self._ref(node.func)
        if isinstance(node.func, ast.Attribute):
            # Evaluate the receiver chain so ``self.x.y(...)`` records
            # the ``self.x`` reference (capture-closure input).
            self._eval(node.func.value)
        arg_taints = [self._eval(a) for a in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)
        self._record_call(node, ref)
        self._record_boundary(node, ref, arg_taints, kw_taints)
        self._record_trace(node, ref, arg_taints, kw_taints)
        if ref is None:
            return _taint()
        kind, target = ref
        if kind == "ref":
            if target in RNG_SOURCES:
                return _taint(d=True)
            if target in WALLCLOCK_SOURCES:
                return _taint(wc=True)
            return _taint(c=[target])
        if kind == "method" and target == "spawn":
            # SeedSequence.spawn / Generator.spawn: children of a stream.
            return _taint(d=True)
        return _taint()

    # -- recorders ----------------------------------------------------------

    def _record_call(self, node: ast.Call, ref) -> None:
        if ref is None:
            return
        kind, target = ref
        if kind == "self":
            self._self_calls.add(target)
        self.facts["calls"].append(
            {"k": kind, "v": target, "line": node.lineno}
        )

    def _record_boundary(self, node, ref, arg_taints, kw_taints) -> None:
        callee_name = None
        if isinstance(node.func, ast.Attribute):
            callee_name = node.func.attr
        if callee_name in BOUNDARY_METHODS:
            if node.args:
                target_ref = self._ref(node.args[0])
                if target_ref is not None:
                    self.facts["entry_targets"].append(
                        {
                            "k": target_ref[0],
                            "v": target_ref[1],
                            "line": node.lineno,
                        }
                    )
            tainted = [
                i
                for i, t in enumerate(arg_taints)
                if t["d"] or t["c"]
            ]
            dep_calls = sorted(
                {c for t in arg_taints for c in t["c"]}
            )
            if tainted or dep_calls:
                self.facts["boundary_calls"].append(
                    {
                        "callee": callee_name,
                        "line": node.lineno,
                        "args": [
                            {"d": t["d"], "c": t["c"]}
                            for t in arg_taints
                        ],
                    }
                )
        pickle_ref = ref is not None and ref[0] == "ref" and ref[1] in (
            "pickle.dumps",
        )
        if pickle_ref and any(t["d"] or t["c"] for t in arg_taints):
            self.facts["boundary_calls"].append(
                {
                    "callee": "pickle.dumps",
                    "line": node.lineno,
                    "args": [{"d": t["d"], "c": t["c"]} for t in arg_taints],
                }
            )
        for kw_name in ENTRY_KWARGS:
            for kw in node.keywords:
                if kw.arg == kw_name:
                    target_ref = self._ref(kw.value)
                    if target_ref is not None:
                        self.facts["entry_targets"].append(
                            {
                                "k": target_ref[0],
                                "v": target_ref[1],
                                "line": node.lineno,
                            }
                        )
        if callee_name in HANDLER_METHODS:
            # ``register_handler(kind, handler)`` or ``handler=`` kwarg:
            # the callback runs from the event loop, concurrently with
            # in-flight rounds, so it is an entry point of its own set.
            candidates = list(node.args[1:])
            candidates.extend(
                kw.value for kw in node.keywords if kw.arg == "handler"
            )
            for candidate in candidates:
                target_ref = self._ref(candidate)
                if target_ref is not None:
                    self.facts["handler_targets"].append(
                        {
                            "k": target_ref[0],
                            "v": target_ref[1],
                            "line": node.lineno,
                        }
                    )

    def _record_trace(self, node, ref, arg_taints, kw_taints) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method == "set_attr":
            if any(t["wc"] for t in arg_taints) or any(
                t["wc"] for t in kw_taints.values()
            ):
                self.facts["trace"].append(
                    {
                        "check": "wallclock",
                        "line": node.lineno,
                        "detail": "set_attr",
                    }
                )
            return
        if method not in TRACE_EMIT_METHODS:
            return
        if method == "span":
            wc_kwargs = [
                name
                for name, t in kw_taints.items()
                if t["wc"] and name != "rt"
            ]
            if wc_kwargs:
                self.facts["trace"].append(
                    {
                        "check": "wallclock",
                        "line": node.lineno,
                        "detail": f"span attr {wc_kwargs[0]!r}",
                    }
                )
            return
        # record_span/event: attrs is arg 1 (after the name) or kwarg.
        attr_taints = []
        if len(arg_taints) > 1:
            attr_taints.append(arg_taints[1])
        if "attrs" in kw_taints:
            attr_taints.append(kw_taints["attrs"])
        if any(t["wc"] for t in attr_taints):
            self.facts["trace"].append(
                {
                    "check": "wallclock",
                    "line": node.lineno,
                    "detail": f"{method} attrs",
                }
            )

    # -- statements ---------------------------------------------------------

    def _bind_target(self, target: ast.AST, taint: Dict) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = _merge(self.env.get(target.id), taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint)

    def _track_alias(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        root = self._root_tag(value)
        if root is not None and root != "self" and isinstance(
            value, (ast.Name, ast.Attribute, ast.Subscript)
        ):
            self.alias[target.id] = root
        else:
            self.alias.pop(target.id, None)

    def _record_store(self, target: ast.AST, kind: str, line: int) -> None:
        """A write through ``target``; only non-local roots matter."""
        if isinstance(target, ast.Name):
            if target.id in self.globals_decl:
                self.facts["global_rebinds"].append(
                    {"name": target.id, "line": line}
                )
                self.facts["stores"].append(
                    {
                        "root": f"mod:{target.id}",
                        "kind": "rebind",
                        "name": target.id,
                        "line": line,
                    }
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, kind, line)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript, ast.Starred)):
            return
        root = self._root_tag(target)
        if root is None or root == "self":
            if root == "self":
                # Record the attr nearest to ``self`` so stores like
                # ``self._metrics[k] = v`` count as self-references.
                inner = target
                while isinstance(
                    inner, (ast.Attribute, ast.Subscript, ast.Starred)
                ) and not (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    inner = inner.value
                if isinstance(inner, ast.Attribute):
                    self._self_refs.add(inner.attr)
            return
        display = ast.unparse(target) if hasattr(ast, "unparse") else "?"
        self.facts["stores"].append(
            {"root": root, "kind": kind, "name": display, "line": line}
        )

    def _record_attr_assign(self, target: ast.AST, line: int) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._self_refs.add(target.attr)
            self.facts["attr_assigns"].append(
                {
                    "name": target.attr,
                    "line": line,
                    "transient": self.module.is_transient_line(line),
                }
            )

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Global):
            self.globals_decl.update(stmt.names)
        elif isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._record_attr_assign(target, stmt.lineno)
                self._record_store(target, "assign", stmt.lineno)
                self._bind_target(target, taint)
                self._track_alias(target, stmt.value)
                self._track_span_assign(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            taint = self._eval(stmt.value)
            self._record_attr_assign(stmt.target, stmt.lineno)
            self._record_store(stmt.target, "assign", stmt.lineno)
            self._bind_target(stmt.target, taint)
            if stmt.value is not None:
                self._track_alias(stmt.target, stmt.value)
                self._track_span_assign(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value)
            target_root = self._root_tag(stmt.target)
            if isinstance(stmt.target, ast.Name) and target_root in (
                None,
                f"param:{stmt.target.id}",
                f"mod:{stmt.target.id}",
            ):
                # ``x -= y`` on an array mutates in place: treat a bare
                # name AugAssign on a param/module root as a store.
                if target_root is not None:
                    self.facts["stores"].append(
                        {
                            "root": target_root,
                            "kind": "augassign",
                            "name": stmt.target.id,
                            "line": stmt.lineno,
                        }
                    )
            else:
                self._record_store(stmt.target, "augassign", stmt.lineno)
            self._record_attr_assign_aug(stmt.target)
            self._bind_target(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value)
                if _is_tainted_shape(taint):
                    self.facts["returns"].append(
                        {"d": taint["d"], "c": taint["c"], "wc": taint["wc"]}
                    )
        elif isinstance(stmt, ast.Expr):
            self._check_bare_span(stmt)
            self._eval(stmt.value)
        elif isinstance(stmt, ast.For):
            self._bind_target(stmt.target, self._eval(stmt.iter))
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._note_with_expr(item.context_expr)
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, taint)
            self._walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested functions are not analysed (documented limit)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, (ast.Assert,)):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            pass

    def _record_attr_assign_aug(self, target: ast.AST) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._self_refs.add(target.attr)

    # -- span pairing -------------------------------------------------------

    def _is_span_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
        )

    def _check_bare_span(self, stmt: ast.Expr) -> None:
        if self._is_span_call(stmt.value):
            self.facts["trace"].append(
                {
                    "check": "span-discarded",
                    "line": stmt.lineno,
                    "detail": "span() result discarded",
                }
            )

    def _track_span_assign(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name) and self._is_span_call(value):
            self._span_vars.setdefault(target.id, value.lineno)

    def _note_with_expr(self, expr: ast.AST) -> None:
        if isinstance(expr, ast.Name):
            self._span_entered.add(expr.id)

    def _finish_spans(self) -> None:
        # ``name.__enter__()`` counts as entering an assigned span.
        for call in ast.walk(self.node):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "__enter__"
                and isinstance(call.func.value, ast.Name)
            ):
                self._span_entered.add(call.func.value.id)
        for name, line in self._span_vars.items():
            if name not in self._span_entered:
                self.facts["trace"].append(
                    {
                        "check": "span-unentered",
                        "line": line,
                        "detail": f"span assigned to {name!r} is never "
                        "entered (no `with` and no __enter__)",
                    }
                )

    # -- entry point --------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        for dec in self.node.decorator_list:
            self._eval(dec)
        for default in list(self.node.args.defaults) + [
            d for d in self.node.args.kw_defaults if d is not None
        ]:
            taint = self._eval(default)
            if taint["d"] or taint["c"]:
                self.facts["tainted_defaults"].append(
                    {
                        "line": default.lineno,
                        "d": taint["d"],
                        "c": taint["c"],
                    }
                )
        self._walk_body(self.node.body)
        self._finish_spans()
        self.facts["self_refs"] = sorted(self._self_refs)
        self.facts["self_calls"] = sorted(self._self_calls)
        if self.cls_name is not None and self.node.name in CAPTURE_METHODS:
            self.facts["strings"] = sorted(self._strings)
        else:
            self.facts["strings"] = []
        return self.facts


class _ModuleExtractor:
    """Walks one module and produces its summary dict."""

    def __init__(self, source: str, path: str, package_path: str) -> None:
        self.source = source
        self.path = path
        self.package_path = package_path
        self.module_name = module_name_for(package_path)
        self.lines = source.splitlines()
        self.imports: Dict[str, str] = {}
        self.toplevel: Set[str] = set()

    def is_transient_line(self, line: int) -> bool:
        if 1 <= line <= len(self.lines):
            return "ckpt: transient" in self.lines[line - 1]
        return False

    def resolve_name(self, name: str) -> Optional[str]:
        """Local name -> canonical dotted path, if resolvable."""
        if name in self.imports:
            return self.imports[name]
        if name in self.toplevel:
            return f"{self.module_name}.{name}"
        return None

    def _add_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                self.imports[bound] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                pkg_parts = self.module_name.split(".")
                if not self.package_path.endswith("__init__.py"):
                    pkg_parts = pkg_parts[:-1]
                pkg_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(pkg_parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                self.imports[bound] = (
                    f"{base}.{alias.name}" if base else alias.name
                )

    def _collect_toplevel(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._add_import(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.toplevel.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.toplevel.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.toplevel.add(target.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    self.toplevel.add(stmt.target.id)

    def _class_facts(self, node: ast.ClassDef) -> Dict[str, Any]:
        bases = []
        for base in node.bases:
            parts = dotted_parts(base)
            if not parts:
                continue
            canonical = self.resolve_name(parts[0])
            if canonical is not None:
                bases.append(".".join([canonical, *parts[1:]]))
            else:
                bases.append(".".join(parts))
        is_dataclass = any(
            (dotted_parts(d if not isinstance(d, ast.Call) else d.func) or [""])[
                -1
            ]
            == "dataclass"
            for d in node.decorator_list
        )
        fields = []
        methods: Dict[str, Dict] = {}
        attr_assigns: List[Dict] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if is_dataclass:
                    fields.append(
                        {
                            "name": stmt.target.id,
                            "line": stmt.lineno,
                            "transient": self.is_transient_line(stmt.lineno),
                        }
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = _FunctionExtractor(stmt, self, node.name).run()
                methods[stmt.name] = facts
                attr_assigns.extend(facts.pop("attr_assigns"))
        return {
            "name": node.name,
            "line": node.lineno,
            "bases": bases,
            "dataclass": is_dataclass,
            "fields": fields,
            "methods": methods,
            "attrs": attr_assigns,
        }

    def extract(self, tree: ast.Module) -> Dict[str, Any]:
        self._collect_toplevel(tree)
        functions: Dict[str, Dict] = {}
        classes: Dict[str, Dict] = {}
        module_assigns: List[Dict] = []
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = _FunctionExtractor(stmt, self, None).run()
                facts.pop("attr_assigns")
                functions[stmt.name] = facts
            elif isinstance(stmt, ast.ClassDef):
                classes[stmt.name] = self._class_facts(stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                if value is None:
                    continue
                scratch = _FunctionExtractor(
                    _parse("def _m(): pass", "<scratch>").body[0], self, None
                )
                taint = scratch._eval(value)
                if taint["d"] or taint["c"]:
                    for target in targets:
                        if isinstance(target, ast.Name):
                            module_assigns.append(
                                {
                                    "name": target.id,
                                    "line": stmt.lineno,
                                    "d": taint["d"],
                                    "c": taint["c"],
                                }
                            )
        # Whole-module reference sets, used when this module is a
        # designated capture module (default: ckpt/state.py).
        attr_names: Set[str] = set()
        strings: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                attr_names.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                strings.add(node.value)
        per_line, per_file = parse_suppressions(self.lines)
        return {
            "module": self.module_name,
            "path": self.path,
            "sha": _sha256(self.source),
            "imports": self.imports,
            "toplevel": sorted(self.toplevel),
            "module_assigns": module_assigns,
            "functions": functions,
            "classes": classes,
            "all_attr_names": sorted(attr_names),
            "all_strings": sorted(strings),
            "suppress_lines": {
                str(line): (sorted(rules) if rules is not None else None)
                for line, rules in per_line.items()
            },
            "suppress_file": sorted(per_file),
        }


def extract_summary(
    source: str, path: Any, tree: Optional[ast.Module] = None
) -> Optional[ModuleSummary]:
    """Extract a :class:`ModuleSummary`; ``None`` on a syntax error."""
    from pathlib import Path

    path = Path(path)
    package_path = package_relative_path(path)
    if tree is None:
        try:
            tree = _parse(source, str(path))
        except SyntaxError:
            return None
    extractor = _ModuleExtractor(source, str(path), package_path)
    return ModuleSummary(
        package_path=package_path, data=extractor.extract(tree)
    )


class ProjectModel:
    """Phase-2 view over all module summaries.

    Functions and methods are indexed by *canonical id* — the dotted
    path ``repro.<pkg>.<name>`` or ``repro.<pkg>.<Class>.<name>`` — so
    call sites canonicalised at extraction time resolve in O(1).
    """

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {
            s.package_path: s for s in summaries
        }
        self.by_module: Dict[str, str] = {
            s.module: s.package_path for s in summaries
        }
        #: canonical function id -> (package_path, cls_name|None, facts)
        self.functions: Dict[str, Tuple[str, Optional[str], Dict]] = {}
        #: canonical class id -> (package_path, facts)
        self.classes: Dict[str, Tuple[str, Dict]] = {}
        #: bare class name -> [canonical class ids]
        self.class_by_name: Dict[str, List[str]] = {}
        #: method name -> [canonical function ids] (for CHA resolution)
        self.methods_by_name: Dict[str, List[str]] = {}
        for summary in summaries:
            mod = summary.module
            for fname, facts in summary.functions.items():
                self.functions[f"{mod}.{fname}"] = (
                    summary.package_path,
                    None,
                    facts,
                )
            for cname, cfacts in summary.classes.items():
                cid = f"{mod}.{cname}"
                self.classes[cid] = (summary.package_path, cfacts)
                self.class_by_name.setdefault(cname, []).append(cid)
                for mname, mfacts in cfacts["methods"].items():
                    fid = f"{cid}.{mname}"
                    self.functions[fid] = (
                        summary.package_path,
                        cname,
                        mfacts,
                    )
                    self.methods_by_name.setdefault(mname, []).append(fid)
        self._deps = self._import_graph()
        self._rdeps: Dict[str, Set[str]] = {}
        for pp, deps in self._deps.items():
            for dep in deps:
                self._rdeps.setdefault(dep, set()).add(pp)

    # -- resolution ---------------------------------------------------------

    def resolve_function(self, canonical: str) -> Optional[str]:
        """Canonical ref -> function id (classes resolve to __init__)."""
        if canonical in self.functions:
            return canonical
        if canonical in self.classes:
            init = f"{canonical}.__init__"
            return init if init in self.functions else None
        return None

    def class_ancestors(self, cid: str) -> List[str]:
        """``cid`` plus every project-resolvable base, transitively."""
        out: List[str] = []
        queue = [cid]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            out.append(current)
            queue.extend(self.classes[current][1]["bases"])
        return out

    def resolve_method(self, cid: str, name: str) -> Optional[str]:
        """Resolve ``self.<name>()`` against the class hierarchy."""
        for ancestor in self.class_ancestors(cid):
            fid = f"{ancestor}.{name}"
            if fid in self.functions:
                return fid
        return None

    # -- import graph -------------------------------------------------------

    def _import_graph(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {}
        for pp, summary in self.modules.items():
            deps: Set[str] = set()
            for canonical in summary.imports.values():
                probe = canonical
                while probe:
                    if probe in self.by_module and self.by_module[probe] != pp:
                        deps.add(self.by_module[probe])
                        break
                    if "." not in probe:
                        break
                    probe = probe.rsplit(".", 1)[0]
            graph[pp] = deps
        return graph

    def forward_closure(self, package_path: str) -> Set[str]:
        """``package_path`` plus everything it transitively imports."""
        out: Set[str] = set()
        queue = [package_path]
        while queue:
            current = queue.pop()
            if current in out:
                continue
            out.add(current)
            queue.extend(self._deps.get(current, ()))
        return out

    def reverse_import_closure(self, changed: Sequence[str]) -> Set[str]:
        """Changed modules plus everything that transitively imports them.

        This bounds which modules' flow findings can be affected by an
        edit, so the incremental cache re-runs phase 2 only for this
        set (cross-module effects that bypass imports — e.g. duck-typed
        method resolution — are a documented approximation).
        """
        out: Set[str] = set()
        queue = [pp for pp in changed]
        while queue:
            current = queue.pop()
            if current in out:
                continue
            out.add(current)
            queue.extend(self._rdeps.get(current, ()))
        return out


@dataclass
class AnalysisResult:
    """Outcome of one whole-program pass."""

    violations: List[Violation]
    stats: Dict[str, Any] = field(default_factory=dict)


def _flow_suppressed(
    violation: Violation, summary: ModuleSummary
) -> bool:
    if violation.rule in summary.data["suppress_file"]:
        return True
    if "all" in summary.data["suppress_file"]:
        return True
    rules = summary.data["suppress_lines"].get(str(violation.line), ())
    if rules is None:
        return True
    return violation.rule in rules or "all" in rules


class ProjectAnalyzer:
    """Two-phase driver: per-file summaries, then whole-program rules.

    ``jobs`` parallelises the per-file read/parse/lint/extract work on a
    thread pool; phase 2 is pure dict traversal and stays serial.
    ``file_sources`` lets tests inject edited sources without touching
    disk (keyed by absolute path string).
    """

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[type]] = None,
        cache_path: Optional[Path] = None,
        jobs: int = 1,
        file_sources: Optional[Dict[str, str]] = None,
    ) -> None:
        self.linter = Linter(config=config, rules=rules)
        self.config = self.linter.config
        self.cache_path = cache_path
        self.jobs = max(1, int(jobs))
        self.file_sources = dict(file_sources or {})

    # -- phase 1 ------------------------------------------------------------

    def _analyze_file(self, path: Path, cache) -> Dict[str, Any]:
        source = self.file_sources.get(str(path))
        if source is None:
            source = path.read_text(encoding="utf-8")
        sha = _sha256(source)
        package_path = package_relative_path(path)
        hit = cache.lookup_module(package_path, sha)
        if hit is not None:
            return {
                "package_path": package_path,
                "sha": sha,
                "summary": hit["summary"],
                "violations": hit["violations"],
            }
        try:
            tree = _parse(source, str(path))
        except SyntaxError as exc:
            violations = [
                Violation(
                    rule="syntax-error",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset else 1,
                    message=f"cannot parse file: {exc.msg}",
                )
            ]
            cache.store_module(package_path, sha, None, violations)
            return {
                "package_path": package_path,
                "sha": sha,
                "summary": None,
                "violations": violations,
            }
        ctx = FileContext.from_source(path, source)
        violations = self.linter.lint_tree(ctx, tree)
        summary = extract_summary(source, path, tree=tree)
        summary_json = summary.to_json() if summary is not None else None
        cache.store_module(package_path, sha, summary_json, violations)
        return {
            "package_path": package_path,
            "sha": sha,
            "summary": summary_json,
            "violations": violations,
        }

    # -- phase 2 ------------------------------------------------------------

    def _run_flow_rules(
        self, model: ProjectModel
    ) -> List[Violation]:
        from repro.lint.callgraph import (
            build_call_graph,
            handler_entry_points,
            reachable_from,
            worker_entry_points,
        )
        from repro.lint.dataflow import compute_tainted_functions
        from repro.lint.flow_rules import PROJECT_RULES, FlowContext

        call_graph = build_call_graph(model)
        entries = worker_entry_points(model)
        handler_entries = handler_entry_points(model)
        ctx = FlowContext(
            project=model,
            call_graph=call_graph,
            worker_entries=entries,
            worker_reachable=reachable_from(call_graph, sorted(entries)),
            rng_tainted=compute_tainted_functions(model),
            handler_entries=handler_entries,
            handler_reachable=reachable_from(
                call_graph, sorted(handler_entries)
            ),
        )
        findings: List[Violation] = []
        for rule_cls in PROJECT_RULES:
            settings = self.config.rule_settings(
                rule_cls.name,
                default_severity=rule_cls.default_severity,
                default_paths=rule_cls.default_paths,
            )
            if not settings.enabled:
                continue
            ctx.in_scope = {
                pp: self.linter._applies(settings, pp)
                for pp in model.modules
            }
            findings.extend(rule_cls(settings).check(ctx))
        # Apply suppression comments using the line maps captured in the
        # summaries (phase 2 never re-reads sources).
        kept: List[Violation] = []
        by_path = {
            s.data["path"]: s for s in model.modules.values()
        }
        for violation in findings:
            summary = by_path.get(violation.path)
            if summary is not None and _flow_suppressed(violation, summary):
                continue
            kept.append(violation)
        return kept

    # -- driver -------------------------------------------------------------

    def analyze(self, paths: Sequence[str]) -> AnalysisResult:
        from repro.lint.cache import AnalysisCache, config_key

        start = time.perf_counter()
        key = config_key(
            {
                "exclude": list(self.config.exclude),
                "rules": self.config.rules,
                "rule_names": [r.name for r in self.linter.rule_classes],
            }
        )
        cache = AnalysisCache(self.cache_path, key)
        files = sorted(self.linter.iter_files(paths))
        if self.jobs > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                results = list(
                    pool.map(lambda p: self._analyze_file(p, cache), files)
                )
        else:
            results = [self._analyze_file(p, cache) for p in files]

        violations: List[Violation] = []
        summaries: List[ModuleSummary] = []
        for result in results:
            violations.extend(result["violations"])
            if result["summary"] is not None:
                summaries.append(ModuleSummary.from_json(result["summary"]))
        model = ProjectModel(summaries)

        # Per-module flow keys: own sha + every transitively imported
        # module's sha.  An edit therefore invalidates exactly the
        # edited module and its reverse-import closure.
        flow_keys: Dict[str, str] = {}
        shas = {r["package_path"]: r["sha"] for r in results}
        for pp in model.modules:
            closure = sorted(model.forward_closure(pp))
            blob = ";".join(f"{c}={shas.get(c, '?')}" for c in closure)
            flow_keys[pp] = _sha256(blob)
        cached_flow = {
            pp: cache.lookup_flow(pp, flow_key)
            for pp, flow_key in flow_keys.items()
        }
        flow_reused = sum(1 for v in cached_flow.values() if v is not None)
        if all(v is not None for v in cached_flow.values()) and cached_flow:
            flow_findings: List[Violation] = [
                v for found in cached_flow.values() for v in found
            ]
            phase2_ran = False
        else:
            flow_findings = self._run_flow_rules(model)
            by_module: Dict[str, List[Violation]] = {
                pp: [] for pp in model.modules
            }
            path_to_pp = {
                s.data["path"]: pp for pp, s in model.modules.items()
            }
            for violation in flow_findings:
                pp = path_to_pp.get(violation.path)
                if pp is not None:
                    by_module[pp].append(violation)
            for pp, found in by_module.items():
                cache.store_flow(pp, flow_keys[pp], found)
            phase2_ran = True
        violations.extend(flow_findings)
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

        cache.prune(r["package_path"] for r in results)
        cache.save()
        stats = {
            "files": len(files),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "flow_reused": flow_reused,
            "phase2_ran": phase2_ran,
            "jobs": self.jobs,
            "wall_time_s": time.perf_counter() - start,
        }
        return AnalysisResult(violations=violations, stats=stats)
