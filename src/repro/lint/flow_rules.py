"""Phase-2 rules: pure functions over the :class:`ProjectModel`.

Unlike v1 :class:`~repro.lint.engine.LintRule` visitors, a
:class:`ProjectRule` never touches an AST — it reads the summaries,
call graph and taint fixpoint, and emits :class:`Violation` objects.
The analyzer applies path scoping, suppression comments and the
baseline afterwards, exactly as the per-file engine does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.config import RuleSettings
from repro.lint.engine import Violation
from repro.lint.dataflow import is_rng_tainted, taint_reason
from repro.lint.project import CAPTURE_METHODS, ModuleSummary, ProjectModel

__all__ = [
    "FlowContext",
    "PROJECT_RULES",
    "ProjectRule",
    "CkptStateCoverageRule",
    "RngTaintRule",
    "SharedStateRaceRule",
    "TraceDisciplineRule",
]


@dataclass
class FlowContext:
    """Everything phase 2 computed once, shared by every rule."""

    project: ProjectModel
    call_graph: Dict[str, Set[str]]
    worker_entries: Set[str]
    worker_reachable: Set[str]
    rng_tainted: Set[str]
    #: package_path -> whether the rule applies there (set per rule by
    #: the analyzer before ``check`` runs).
    in_scope: Dict[str, bool] = field(default_factory=dict)
    #: Event-loop callbacks (``register_handler``) and their closure —
    #: held to the same shared-state discipline as worker code.
    handler_entries: Set[str] = field(default_factory=set)
    handler_reachable: Set[str] = field(default_factory=set)


class ProjectRule:
    """Base class for whole-program rules."""

    name: str = "project-rule"
    description: str = ""
    default_severity: str = "error"
    #: Package-relative prefixes the rule applies to; empty = everywhere.
    default_paths: Tuple[str, ...] = ()

    def __init__(self, settings: RuleSettings) -> None:
        self.settings = settings

    def violation(
        self, summary: ModuleSummary, line: int, message: str
    ) -> Violation:
        return Violation(
            rule=self.name,
            path=summary.data["path"],
            line=line,
            col=1,
            message=message,
            severity=self.settings.severity,
        )

    def check(self, ctx: FlowContext) -> List[Violation]:
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    def scoped_modules(self, ctx: FlowContext) -> List[ModuleSummary]:
        return [
            summary
            for pp, summary in sorted(ctx.project.modules.items())
            if ctx.in_scope.get(pp, True)
        ]

    def path_option(self, key: str, default: Sequence[str]) -> List[str]:
        value = self.settings.option(key, list(default))
        if isinstance(value, str):
            return [value]
        return list(value)


class RngTaintRule(ProjectRule):
    """RNG streams must not escape their owning scope.

    Flags (1) module-level names bound to RNG-tainted values — module
    state seeded at import time breaks per-client stream isolation;
    (2) RNG-tainted default arguments — defaults evaluate once, so every
    call shares one stream; (3) RNG-tainted values crossing an executor
    boundary (``submit`` / ``apply_async`` / ``pickle.dumps``) outside
    the sanctioned round-trip (``allow_boundary_in``, default
    ``fl/executor.py``), which ships Generator objects rather than the
    serialised bit-generator state the contract requires.
    """

    name = "rng-taint"
    description = "RNG streams must not escape into shared scope"
    default_severity = "error"

    def check(self, ctx: FlowContext) -> List[Violation]:
        allow_boundary = self.path_option(
            "allow_boundary_in", ["fl/executor.py"]
        )
        out: List[Violation] = []
        for summary in self.scoped_modules(ctx):
            for assign in summary.data["module_assigns"]:
                taint = {"d": assign["d"], "c": assign["c"], "wc": False}
                if is_rng_tainted(taint, ctx.project, ctx.rng_tainted):
                    reason = taint_reason(
                        taint, ctx.project, ctx.rng_tainted
                    )
                    out.append(
                        self.violation(
                            summary,
                            assign["line"],
                            f"module-level name {assign['name']!r} is "
                            f"bound to an RNG stream ({reason}); RNG "
                            "state must live on clients or be threaded "
                            "explicitly",
                        )
                    )
            for fid_name, facts in self._all_functions(summary):
                for default in facts["tainted_defaults"]:
                    taint = {
                        "d": default["d"],
                        "c": default["c"],
                        "wc": False,
                    }
                    if is_rng_tainted(taint, ctx.project, ctx.rng_tainted):
                        out.append(
                            self.violation(
                                summary,
                                default["line"],
                                f"default argument of {fid_name!r} is "
                                "built from an RNG stream; defaults "
                                "evaluate once and would share the "
                                "stream across calls",
                            )
                        )
                if summary.package_path in allow_boundary:
                    continue
                for boundary in facts["boundary_calls"]:
                    for i, arg in enumerate(boundary["args"]):
                        taint = {"d": arg["d"], "c": arg["c"], "wc": False}
                        if is_rng_tainted(
                            taint, ctx.project, ctx.rng_tainted
                        ):
                            out.append(
                                self.violation(
                                    summary,
                                    boundary["line"],
                                    f"RNG-tainted argument #{i} crosses "
                                    f"the executor boundary via "
                                    f"{boundary['callee']}(); round-trip "
                                    "serialised RNG state instead "
                                    "(see fl/executor.py)",
                                )
                            )
                            break
        return out

    @staticmethod
    def _all_functions(summary: ModuleSummary):
        for fname, facts in summary.functions.items():
            yield f"{summary.module}.{fname}", facts
        for cname, cfacts in summary.classes.items():
            for mname, mfacts in cfacts["methods"].items():
                yield f"{summary.module}.{cname}.{mname}", mfacts


class SharedStateRaceRule(ProjectRule):
    """No worker- or handler-reachable function may write shared state.

    Worker entry points are the callables handed to ``submit`` /
    ``apply_async`` / ``initializer=`` / ``target=``; everything
    reachable from them through the call graph runs (potentially)
    concurrently.  Event-handler entry points — callbacks registered
    via ``register_handler`` (the async engine's event loop) — run
    while dispatched rounds are still in flight, so their closure is
    held to the same discipline and checked here too.  In that set, flag stores whose root is module-level
    state, an imported module, or a parameter whose name matches the
    broadcast-parameter pattern (``shared_param_names``) or the
    client-state-store pattern (``store_param_names``).  The store
    boundary (DESIGN.md §6f): shard arrays of a
    :class:`~repro.fl.store.ClientStateStore` are **coordinator-owned**
    — only the store's own ``checkout``/``writeback``/``record_round``
    mutate them, at round boundaries, on the coordinator thread; a
    worker-reachable write to a store-named parameter is a determinism
    race even if today's backends never interleave it.  Worker-side
    module rebinds are allowed only in ``allow_global_rebind_in``
    (default ``fl/executor.py``, which owns the per-process
    ``_WORKER_STATE`` hand-off).
    """

    name = "shared-state-race"
    description = "worker-reachable code must not write shared state"
    default_severity = "error"

    def check(self, ctx: FlowContext) -> List[Violation]:
        pattern = re.compile(
            self.settings.option(
                "shared_param_names", r"^(global_params|global_view|broadcast.*)$"
            )
        )
        store_pattern = re.compile(
            self.settings.option(
                "store_param_names",
                r"^(store|client_store|shards?|shard_.*)$",
            )
        )
        allow_rebind = self.path_option(
            "allow_global_rebind_in", ["fl/executor.py"]
        )
        out: List[Violation] = []
        for fid in sorted(ctx.worker_reachable | ctx.handler_reachable):
            pp, _, facts = ctx.project.functions[fid]
            if not ctx.in_scope.get(pp, True):
                continue
            how = (
                "worker-reachable"
                if fid in ctx.worker_reachable
                else "event-handler-reachable"
            )
            summary = ctx.project.modules[pp]
            for store in facts["stores"]:
                root = store["root"]
                kind = store["kind"]
                if root.startswith("mod:") or root.startswith("import:"):
                    if kind == "rebind" and pp in allow_rebind:
                        continue
                    what = root.split(":", 1)[1]
                    out.append(
                        self.violation(
                            summary,
                            store["line"],
                            f"{how} function {fid!r} writes "
                            f"module-level state {what!r} "
                            f"({kind} of {store['name']!r}); shared "
                            "writes race across thread/process workers "
                            "and in-flight event-loop rounds",
                        )
                    )
                elif root.startswith("param:"):
                    param = root.split(":", 1)[1]
                    if kind == "rebind":
                        continue
                    if pattern.match(param):
                        out.append(
                            self.violation(
                                summary,
                                store["line"],
                                f"{how} function {fid!r} "
                                f"mutates broadcast parameter "
                                f"{param!r} ({kind} of "
                                f"{store['name']!r}); concurrent code "
                                "must treat broadcast state as "
                                "read-only",
                            )
                        )
                    elif store_pattern.match(param):
                        out.append(
                            self.violation(
                                summary,
                                store["line"],
                                f"{how} function {fid!r} "
                                f"writes client-state store parameter "
                                f"{param!r} ({kind} of "
                                f"{store['name']!r}); shard arrays are "
                                "coordinator-owned — only the store's "
                                "checkout/writeback/record_round may "
                                "touch them, at round boundaries",
                            )
                        )
        return out


class CkptStateCoverageRule(ProjectRule):
    """Every persistent attribute must be captured or marked transient.

    A class is *stateful* when it (or a project-resolvable ancestor)
    defines a capture method (``state_dict`` & co.), or when it is
    listed in the ``classes`` option.  For each ``self.<attr> =`` in a
    stateful class, the attribute must be (a) referenced somewhere in
    the transitive self-call closure of the hierarchy's capture
    methods, (b) named (as attribute or string) in a configured capture
    module (default ``ckpt/state.py``), or (c) annotated
    ``# ckpt: transient`` on an assignment line.  Anything else is
    state that would silently not survive a checkpoint resume.
    """

    name = "ckpt-state-coverage"
    description = "stateful attributes must be checkpoint-captured"
    default_severity = "error"
    default_paths = ("fl/", "core/", "nn/optimizers.py", "obs/", "baselines/")

    def check(self, ctx: FlowContext) -> List[Violation]:
        capture_modules = self.path_option("capture_modules", ["ckpt/state.py"])
        forced = set(self.path_option("classes", ["FederatedTrainer", "FLServer"]))
        module_refs: Set[str] = set()
        for pp in capture_modules:
            summary = ctx.project.modules.get(pp)
            if summary is not None:
                module_refs.update(summary.data["all_attr_names"])
                module_refs.update(summary.data["all_strings"])
        out: List[Violation] = []
        for summary in self.scoped_modules(ctx):
            for cname, cfacts in sorted(summary.classes.items()):
                cid = f"{summary.module}.{cname}"
                if not self._stateful(ctx.project, cid, cname, forced):
                    continue
                captured = self._capture_closure(ctx.project, cid)
                captured |= module_refs
                out.extend(
                    self._check_attrs(summary, cname, cfacts, captured)
                )
        return out

    @staticmethod
    def _stateful(
        project: ProjectModel, cid: str, cname: str, forced: Set[str]
    ) -> bool:
        if cname in forced:
            return True
        for ancestor in project.class_ancestors(cid):
            methods = project.classes[ancestor][1]["methods"]
            if any(m in CAPTURE_METHODS for m in methods):
                return True
        return False

    @staticmethod
    def _capture_closure(project: ProjectModel, cid: str) -> Set[str]:
        """Attr names referenced by capture methods, expanded through
        ``self.<helper>()`` calls anywhere in the class hierarchy."""
        refs: Set[str] = set()
        seen_fids: Set[str] = set()
        queue: List[str] = []
        for ancestor in project.class_ancestors(cid):
            for mname in project.classes[ancestor][1]["methods"]:
                if mname in CAPTURE_METHODS:
                    fid = f"{ancestor}.{mname}"
                    if fid in project.functions:
                        queue.append(fid)
        while queue:
            fid = queue.pop()
            if fid in seen_fids:
                continue
            seen_fids.add(fid)
            facts = project.functions[fid][2]
            refs.update(facts["self_refs"])
            refs.update(facts["strings"])
            for helper in facts["self_calls"]:
                # ``self.clock()`` where ``clock`` is a stored callable
                # attribute (no such method) still references the attr.
                refs.add(helper)
                resolved = project.resolve_method(cid, helper)
                if resolved is not None:
                    queue.append(resolved)
        return refs

    def _check_attrs(
        self,
        summary: ModuleSummary,
        cname: str,
        cfacts: Dict,
        captured: Set[str],
    ) -> List[Violation]:
        assigns: Dict[str, List[Dict]] = {}
        for attr in cfacts["attrs"]:
            assigns.setdefault(attr["name"], []).append(attr)
        for fld in cfacts["fields"]:
            assigns.setdefault(fld["name"], []).append(fld)
        out: List[Violation] = []
        for name, sites in sorted(assigns.items()):
            if any(site["transient"] for site in sites):
                continue
            if name in captured:
                continue
            line = min(site["line"] for site in sites)
            out.append(
                self.violation(
                    summary,
                    line,
                    f"attribute 'self.{name}' on stateful class "
                    f"{cname!r} is neither captured for checkpointing "
                    "nor annotated '# ckpt: transient'; new state must "
                    "not silently break bitwise resume",
                )
            )
        return out


class TraceDisciplineRule(ProjectRule):
    """Spans must be entered; wall-clock stays out of trace attrs.

    Surfaces the extraction-time findings: a ``.span(...)`` whose
    result is discarded or assigned but never entered (no ``with``, no
    ``__enter__``), and wall-clock-derived values flowing into span /
    event attributes.  Wall-clock readings belong only in the ``rt``
    channel (``rt=`` keyword, ``set_rt``), which the obs determinism
    contract strips from cross-backend comparisons.  ``allow_in``
    exempts the tracer implementation itself.
    """

    name = "trace-discipline"
    description = "spans must pair open/close; no wallclock in attrs"
    default_severity = "error"

    _MESSAGES = {
        "span-discarded": (
            "span() result is discarded; enter it with 'with' or it "
            "will never close"
        ),
        "span-unentered": None,  # detail carries the message
        "wallclock": None,
    }

    def check(self, ctx: FlowContext) -> List[Violation]:
        allow_in = set(self.path_option("allow_in", ["obs/tracer.py"]))
        out: List[Violation] = []
        for summary in self.scoped_modules(ctx):
            if summary.package_path in allow_in:
                continue
            for _, facts in RngTaintRule._all_functions(summary):
                for finding in facts["trace"]:
                    check = finding["check"]
                    if check == "wallclock":
                        message = (
                            "wall-clock-derived value flows into trace "
                            f"attrs ({finding['detail']}); only the "
                            "'rt' channel may carry wall-clock readings"
                        )
                    elif check == "span-unentered":
                        message = finding["detail"]
                    else:
                        message = self._MESSAGES.get(
                            check, finding["detail"]
                        )
                    out.append(
                        self.violation(summary, finding["line"], message)
                    )
        return out


PROJECT_RULES: Tuple[type, ...] = (
    RngTaintRule,
    SharedStateRaceRule,
    CkptStateCoverageRule,
    TraceDisciplineRule,
)
