"""Output formatters for lint results (text, JSON, SARIF)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Optional, Sequence

from repro.lint.engine import Violation


def format_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: severity[rule] message`` line per finding."""
    lines = [v.format() for v in violations]
    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors
    lines.append(
        f"{len(violations)} violation(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)


def summarize(violations: Sequence[Violation]) -> Dict[str, object]:
    """Machine-readable summary used by both JSON output and BENCH."""
    by_rule = Counter(v.rule for v in violations)
    return {
        "total": len(violations),
        "errors": sum(1 for v in violations if v.severity == "error"),
        "warnings": sum(1 for v in violations if v.severity == "warning"),
        "by_rule": dict(sorted(by_rule.items())),
    }


def format_json(
    violations: Sequence[Violation],
    stats: Optional[Dict[str, object]] = None,
) -> str:
    """JSON payload; ``stats`` (whole-program runs) adds an ``analysis``
    block with file counts, cache hit rates and wall time."""
    payload = {
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "severity": v.severity,
                "message": v.message,
            }
            for v in violations
        ],
        "summary": summarize(violations),
    }
    if stats is not None:
        payload["analysis"] = stats
    return json.dumps(payload, indent=2, sort_keys=True)


def format_sarif(violations: Sequence[Violation]) -> str:
    """Minimal SARIF 2.1.0 — one run, one result per violation."""
    rules = sorted({v.rule for v in violations})
    results = [
        {
            "ruleId": v.rule,
            "level": "error" if v.severity == "error" else "warning",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {
                            "startLine": v.line,
                            "startColumn": v.col,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [{"id": rule} for rule in rules],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = ["format_json", "format_sarif", "format_text", "summarize"]
