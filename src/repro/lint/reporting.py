"""Output formatters for lint results (text and JSON)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Sequence

from repro.lint.engine import Violation


def format_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: severity[rule] message`` line per finding."""
    lines = [v.format() for v in violations]
    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors
    lines.append(
        f"{len(violations)} violation(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)


def summarize(violations: Sequence[Violation]) -> Dict[str, object]:
    """Machine-readable summary used by both JSON output and BENCH."""
    by_rule = Counter(v.rule for v in violations)
    return {
        "total": len(violations),
        "errors": sum(1 for v in violations if v.severity == "error"),
        "warnings": sum(1 for v in violations if v.severity == "warning"),
        "by_rule": dict(sorted(by_rule.items())),
    }


def format_json(violations: Sequence[Violation]) -> str:
    payload = {
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "severity": v.severity,
                "message": v.message,
            }
            for v in violations
        ],
        "summary": summarize(violations),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = ["format_json", "format_text", "summarize"]
