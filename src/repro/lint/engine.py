"""The visitor-driven rule engine behind ``repro.lint``.

A :class:`LintRule` is an :class:`ast.NodeVisitor` instantiated once per
file; the engine parses each file, hands the tree to every rule that is
enabled and in scope for that path, then filters the collected
violations through the suppression comments found in the source.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.config import LintConfig, RuleSettings

__all__ = [
    "FileContext",
    "LintRule",
    "Linter",
    "Violation",
    "package_relative_path",
    "parse_suppressions",
    "run_lint",
]

#: ``# repro-lint: disable=a,b`` / ``disable`` / ``disable-file=a``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable-file|disable)\s*(?:=\s*([\w\-, ]+))?"
)

#: How many leading lines may carry a ``disable-file`` directive.
_FILE_DIRECTIVE_WINDOW = 10

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Violation:
    """One diagnostic: ``path:line:col rule message``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    path: Path
    #: Path relative to the ``repro`` package root (posix separators),
    #: e.g. ``core/relevance.py`` -- what rule ``paths`` scopes match.
    package_path: str
    source: str
    lines: List[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, path: Path, source: str) -> "FileContext":
        return cls(
            path=path,
            package_path=package_relative_path(path),
            source=source,
            lines=source.splitlines(),
        )

    @property
    def module_name(self) -> str:
        return self.path.stem


def package_relative_path(path: Path) -> str:
    """``.../src/repro/core/relevance.py`` -> ``core/relevance.py``.

    Falls back to the bare file name when the path does not pass through
    a ``repro`` directory (e.g. ad-hoc files in tests).
    """
    parts = list(path.parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            tail = parts[i + 1 :]
            if tail:
                return "/".join(tail)
    return path.name


def parse_suppressions(
    lines: Sequence[str],
) -> Tuple[Dict[int, Optional[Set[str]]], Dict[str, int]]:
    """Extract suppression directives from source lines.

    Returns ``(per_line, per_file)`` where ``per_line`` maps a 1-based
    line number to the set of silenced rule names (``None`` = all rules)
    and ``per_file`` maps rule names silenced for the whole file to the
    directive's line.
    """
    per_line: Dict[int, Optional[Set[str]]] = {}
    per_file: Dict[str, int] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        kind, names = match.group(1), match.group(2)
        rules: Optional[Set[str]] = None
        if names:
            rules = {n.strip() for n in names.split(",") if n.strip()}
        if kind == "disable-file":
            if lineno <= _FILE_DIRECTIVE_WINDOW and rules:
                for rule in rules:
                    per_file.setdefault(rule, lineno)
        else:
            existing = per_line.get(lineno, set())
            if rules is None or existing is None:
                per_line[lineno] = None
            else:
                per_line[lineno] = existing | rules
    return per_line, per_file


class LintRule(ast.NodeVisitor):
    """Base class for repo-specific rules.

    Subclasses set ``name``/``description``/``default_severity`` and the
    default path scope, implement ``visit_*`` methods, and call
    :meth:`report` for each finding.  ``finish`` runs after the tree
    walk for whole-module checks.
    """

    name: str = "rule"
    description: str = ""
    default_severity: str = "error"
    #: Package-relative prefixes the rule applies to; empty = everywhere.
    default_paths: Tuple[str, ...] = ()

    def __init__(self, ctx: FileContext, settings: RuleSettings) -> None:
        self.ctx = ctx
        self.settings = settings
        self.violations: List[Violation] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=self.name,
                path=str(self.ctx.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                severity=self.settings.severity,
            )
        )

    def finish(self, tree: ast.Module) -> None:  # pragma: no cover - hook
        """Called once after the tree walk; override for module checks."""


class Linter:
    """Runs a set of rules over files or directory trees."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[Type[LintRule]]] = None,
    ) -> None:
        # Imported here so ``rules`` may import ``engine`` freely.
        from repro.lint.rules import DEFAULT_RULES

        self.config = config or LintConfig()
        self.rule_classes: List[Type[LintRule]] = list(
            DEFAULT_RULES if rules is None else rules
        )
        names = [r.name for r in self.rule_classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")

    def settings_for(self, rule_cls: Type[LintRule]) -> RuleSettings:
        return self.config.rule_settings(
            rule_cls.name,
            default_severity=rule_cls.default_severity,
            default_paths=rule_cls.default_paths,
        )

    def _applies(self, settings: RuleSettings, package_path: str) -> bool:
        if not settings.enabled:
            return False
        if not settings.paths:
            return True
        return any(
            package_path == scope or package_path.startswith(scope)
            for scope in settings.paths
        )

    def lint_source(self, source: str, path: Path) -> List[Violation]:
        """Lint one already-read source blob (the unit of all linting)."""
        ctx = FileContext.from_source(path, source)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Violation(
                    rule="syntax-error",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset else 1,
                    message=f"cannot parse file: {exc.msg}",
                )
            ]
        return self.lint_tree(ctx, tree)

    def lint_tree(self, ctx: FileContext, tree: ast.Module) -> List[Violation]:
        """Run the per-file rules over an already-parsed tree.

        Split out of :meth:`lint_source` so the whole-program analyzer
        (:mod:`repro.lint.project`) can parse each file exactly once and
        feed the same tree to both the v1 rules and its own extractor.
        """
        per_line, per_file = parse_suppressions(ctx.lines)
        violations: List[Violation] = []
        for rule_cls in self.rule_classes:
            settings = self.settings_for(rule_cls)
            if not self._applies(settings, ctx.package_path):
                continue
            if rule_cls.name in per_file or "all" in per_file:
                continue
            rule = rule_cls(ctx, settings)
            rule.visit(tree)
            rule.finish(tree)
            violations.extend(rule.violations)
        return [v for v in violations if not _suppressed(v, per_line)]

    def lint_file(self, path: Path) -> List[Violation]:
        return self.lint_source(path.read_text(encoding="utf-8"), path)

    def lint_paths(self, paths: Iterable[str]) -> List[Violation]:
        """Lint files and/or directory trees; results sorted by location."""
        violations: List[Violation] = []
        for target in sorted(self.iter_files(paths)):
            violations.extend(self.lint_file(target))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return violations

    def iter_files(self, paths: Iterable[str]) -> Iterable[Path]:
        seen: Set[Path] = set()
        for raw in paths:
            root = Path(raw)
            if root.is_dir():
                candidates: Iterable[Path] = sorted(root.rglob("*.py"))
            elif root.suffix == ".py":
                candidates = [root]
            else:
                raise FileNotFoundError(f"no such file or directory: {raw}")
            for path in candidates:
                resolved = path.resolve()
                if resolved in seen or self.config.is_excluded(path):
                    continue
                seen.add(resolved)
                yield path


def _suppressed(
    violation: Violation, per_line: Dict[int, Optional[Set[str]]]
) -> bool:
    if violation.line not in per_line:
        return False
    rules = per_line[violation.line]
    return rules is None or violation.rule in rules or "all" in rules


def run_lint(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[LintRule]]] = None,
) -> List[Violation]:
    """Convenience wrapper: lint ``paths`` and return the violations."""
    return Linter(config=config, rules=rules).lint_paths(paths)
