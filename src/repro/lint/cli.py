"""Command-line front end: ``python -m repro.lint src/ [--format text|json]``.

Exit status: 0 when no error-severity violation was found, 1 when at
least one was (``--strict`` promotes warnings to failures too), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.config import load_config
from repro.lint.engine import Linter
from repro.lint.reporting import format_json, format_text
from repro.lint.rules import DEFAULT_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism/dtype/aliasing linter for the CMFL "
            "reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="PYPROJECT_DIR",
        help=(
            "directory to search for pyproject.toml "
            "(default: walk up from the first path)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in DEFAULT_RULES:
            scope = ", ".join(rule.default_paths) or "everywhere"
            print(f"{rule.name:20s} [{scope}] {rule.description}")
        return 0
    paths: List[str] = list(args.paths) or ["src/repro"]
    config_start = args.config if args.config is not None else Path(paths[0])
    config = load_config(config_start)
    linter = Linter(config=config)
    try:
        violations = linter.lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(violations))
    else:
        print(format_text(violations))
    failing = [
        v
        for v in violations
        if v.severity == "error" or args.strict or v.rule == "syntax-error"
    ]
    return 1 if failing else 0


__all__ = ["build_parser", "main"]
