"""Command-line front end: ``python -m repro.lint src/ [--project]``.

Exit status (stable contract, asserted by ``tests/test_cli.py``):

* **0** — analysis ran; no error-severity findings (warnings allowed
  unless ``--strict``).
* **1** — analysis ran; at least one error-severity finding (or any
  finding under ``--strict``, or a syntax error in an analyzed file).
* **2** — the engine itself failed: unknown path, invalid
  configuration, unreadable baseline.  Findings were *not* produced,
  so 2 must never be conflated with "code has issues".

``--project`` enables the whole-program pass (RNG taint, shared-state
races, checkpoint state coverage, trace discipline) on top of the
per-file rules; ``--cache`` makes it incremental and ``--jobs``
parallelises the per-file phase.  ``--baseline`` filters out
grandfathered findings recorded with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.config import load_config
from repro.lint.engine import Linter, Violation, package_relative_path
from repro.lint.reporting import format_json, format_sarif, format_text
from repro.lint.rules import DEFAULT_RULES

BASELINE_SCHEMA = "repro-lint-baseline/v1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism/dtype/aliasing linter for the CMFL "
            "reproduction. Exit codes: 0 = no error-severity findings, "
            "1 = error-severity findings (or any finding with --strict), "
            "2 = engine/config failure (no analysis performed)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="PYPROJECT_DIR",
        help=(
            "directory to search for pyproject.toml "
            "(default: walk up from the first path)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="run the whole-program flow analysis (rng-taint, "
        "shared-state-race, ckpt-state-coverage, trace-discipline)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel workers for the per-file phase (default: 1)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="FILE",
        help="incremental analysis cache file (--project only); a "
        "missing or stale cache is treated as cold, never an error",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _baseline_key(violation: Violation) -> List[str]:
    # Keyed on (rule, package-relative path, message) rather than line
    # numbers, so unrelated edits shifting lines do not un-grandfather
    # old findings.
    return [
        violation.rule,
        package_relative_path(Path(violation.path)),
        violation.message,
    ]


def _load_baseline(path: Path) -> List[List[str]]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a {BASELINE_SCHEMA} baseline "
            f"(schema={payload.get('schema')!r})"
        )
    return [
        [f["rule"], f["path"], f["message"]] for f in payload["findings"]
    ]


def _write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {
                "rule": key[0],
                "path": key[1],
                "message": key[2],
            }
            for key in sorted(
                {tuple(_baseline_key(v)) for v in violations}
            )
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _list_rules() -> None:
    from repro.lint.flow_rules import PROJECT_RULES

    for rule in DEFAULT_RULES:
        scope = ", ".join(rule.default_paths) or "everywhere"
        print(f"{rule.name:20s} [{scope}] {rule.description}")
    for rule in PROJECT_RULES:
        scope = ", ".join(rule.default_paths) or "everywhere"
        print(f"{rule.name:20s} [{scope}] (project) {rule.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    paths: List[str] = list(args.paths) or ["src/repro"]
    config_start = args.config if args.config is not None else Path(paths[0])
    stats = None
    try:
        config = load_config(config_start)
        if args.project:
            from repro.lint.project import ProjectAnalyzer

            analyzer = ProjectAnalyzer(
                config=config, cache_path=args.cache, jobs=args.jobs
            )
            result = analyzer.analyze(paths)
            violations = result.violations
            stats = result.stats
        else:
            violations = Linter(config=config).lint_paths(paths)
        if args.write_baseline is not None:
            _write_baseline(args.write_baseline, violations)
            print(
                f"wrote {len(violations)} finding(s) to "
                f"{args.write_baseline}"
            )
            return 0
        if args.baseline is not None:
            grandfathered = {tuple(k) for k in _load_baseline(args.baseline)}
            violations = [
                v
                for v in violations
                if tuple(_baseline_key(v)) not in grandfathered
            ]
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(violations, stats=stats))
    elif args.format == "sarif":
        print(format_sarif(violations))
    else:
        print(format_text(violations))
    failing = [
        v
        for v in violations
        if v.severity == "error" or args.strict or v.rule == "syntax-error"
    ]
    return 1 if failing else 0


__all__ = ["BASELINE_SCHEMA", "build_parser", "main"]
