"""Call-graph construction over the project model.

Edges come from the per-function call lists collected in phase 1.
Resolution is deliberately conservative:

* ``("ref", canonical)`` call sites resolve through the import table
  that canonicalised them (classes resolve to ``__init__``);
* ``("self", name)`` resolves against the defining class's MRO within
  the project;
* ``("method", name)`` — a call ``obj.name(...)`` on a value whose type
  is unknown — resolves by class-hierarchy analysis to *every* project
  method with that name, minus a stoplist of ubiquitous container /
  ndarray method names that would otherwise connect everything to
  everything.

The graph exists to answer one question for the shared-state-race rule:
which functions are reachable from a worker-executed entry point?
Over-approximation is safe (it only widens the checked set); silent
under-approximation is what the stoplist is kept small to avoid.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.lint.project import ProjectModel

__all__ = [
    "METHOD_STOPLIST",
    "build_call_graph",
    "handler_entry_points",
    "reachable_from",
    "worker_entry_points",
]

#: Method names too generic to resolve via CHA — stdlib container,
#: ndarray, executor-future and metrics-counter vocabulary.  A project
#: method deliberately named like one of these will not get bare-call
#: edges; name project methods distinctively.
METHOD_STOPLIST = frozenset(
    {
        "append",
        "extend",
        "insert",
        "get",
        "put",
        "pop",
        "popleft",
        "items",
        "keys",
        "values",
        "add",
        "discard",
        "remove",
        "clear",
        "copy",
        "sort",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "format",
        "startswith",
        "endswith",
        "encode",
        "decode",
        "read",
        "write",
        "close",
        "flush",
        "mean",
        "sum",
        "min",
        "max",
        "std",
        "astype",
        "reshape",
        "ravel",
        "tolist",
        "item",
        "fill",
        "dot",
        "inc",
        "observe",
        "set",
        "set_attr",
        "set_rt",
        "cancel",
        "result",
        "done",
        "submit",
        "map",
        "shutdown",
        "update",
        "setdefault",
    }
)


def _resolve_call(
    project: ProjectModel, caller_fid: str, call: Dict
) -> List[str]:
    kind, target = call["k"], call["v"]
    if kind == "ref":
        fid = project.resolve_function(target)
        return [fid] if fid is not None else []
    if kind == "self":
        pp, cls_name, _ = project.functions[caller_fid]
        if cls_name is None:
            return []
        mod = project.modules[pp].module
        fid = project.resolve_method(f"{mod}.{cls_name}", target)
        return [fid] if fid is not None else []
    if kind == "method":
        if target in METHOD_STOPLIST:
            return []
        return list(project.methods_by_name.get(target, ()))
    return []


def build_call_graph(project: ProjectModel) -> Dict[str, Set[str]]:
    """Map each function id to the set of function ids it may call."""
    graph: Dict[str, Set[str]] = {}
    for fid, (_, _, facts) in project.functions.items():
        callees: Set[str] = set()
        for call in facts["calls"]:
            callees.update(_resolve_call(project, fid, call))
        graph[fid] = callees
    return graph


def _collect_entry_points(project: ProjectModel, fact_key: str) -> Set[str]:
    entries: Set[str] = set()
    for fid, (pp, cls_name, facts) in project.functions.items():
        for target in facts.get(fact_key, ()):
            kind, value = target["k"], target["v"]
            if kind == "ref":
                resolved = project.resolve_function(value)
                if resolved is not None:
                    entries.add(resolved)
            elif kind == "self" and cls_name is not None:
                mod = project.modules[pp].module
                resolved = project.resolve_method(
                    f"{mod}.{cls_name}", value
                )
                if resolved is not None:
                    entries.add(resolved)
            elif kind == "method":
                if value not in METHOD_STOPLIST:
                    entries.update(project.methods_by_name.get(value, ()))
    return entries


def worker_entry_points(project: ProjectModel) -> Set[str]:
    """Function ids handed to an executor boundary.

    Collected from the first positional argument of ``.submit(...)`` /
    ``.apply_async(...)`` and from ``initializer=`` / ``target=``
    keyword arguments of any call.
    """
    return _collect_entry_points(project, "entry_targets")


def handler_entry_points(project: ProjectModel) -> Set[str]:
    """Function ids registered as event-loop handlers.

    Collected from ``.register_handler(kind, handler)`` call sites
    (positional callback arguments past the first, plus a ``handler=``
    keyword).  The async engine runs handlers from its event loop while
    executor rounds may still be in flight, so everything reachable
    from one is checked against the same shared-state discipline as
    worker-reachable code.
    """
    return _collect_entry_points(project, "handler_targets")


def reachable_from(
    graph: Dict[str, Set[str]], roots: Sequence[str]
) -> Set[str]:
    """BFS closure of ``roots`` over the call graph."""
    seen: Set[str] = set()
    queue = list(roots)
    while queue:
        current = queue.pop()
        if current in seen:
            continue
        seen.add(current)
        queue.extend(graph.get(current, ()))
    return seen
