"""repro.lint -- AST-based static analysis for the reproduction codebase.

The reproduction's headline numbers depend on invariants no runtime test
can economically enforce everywhere: every stochastic component must
draw from the explicit ``numpy.random.Generator`` plumbing in
:mod:`repro.utils.rng`, update vectors must keep explicit dtypes, and
server-side buffers must never be mutated through aliased function
parameters.  This package walks the source tree with :mod:`ast` and
reports violations of those invariants as ``file:line`` diagnostics.

Usage::

    python -m repro.lint src/repro [--format text|json]

or programmatically::

    from repro.lint import run_lint
    violations = run_lint(["src/repro"])

Per-line suppression uses ``# repro-lint: disable=<rule>[,<rule>...]``
(a bare ``disable`` silences every rule on that line); a
``# repro-lint: disable-file=<rule>`` comment in the first ten lines
silences the rule for the whole file.  Rules are configured in
``pyproject.toml`` under ``[tool.repro-lint]``.
"""

from repro.lint.config import LintConfig, RuleSettings, load_config
from repro.lint.engine import FileContext, LintRule, Linter, Violation, run_lint
from repro.lint.project import AnalysisResult, ProjectAnalyzer, ProjectModel
from repro.lint.reporting import format_json, format_sarif, format_text
from repro.lint.rules import (
    AllExportsRule,
    DEFAULT_RULES,
    ExplicitDtypeRule,
    NoGlobalRngRule,
    NoParamMutationRule,
    NoWallclockSeedRule,
    UnusedPureResultRule,
)

__all__ = [
    "AllExportsRule",
    "AnalysisResult",
    "DEFAULT_RULES",
    "ExplicitDtypeRule",
    "FileContext",
    "LintConfig",
    "LintRule",
    "Linter",
    "NoGlobalRngRule",
    "NoParamMutationRule",
    "NoWallclockSeedRule",
    "ProjectAnalyzer",
    "ProjectModel",
    "RuleSettings",
    "UnusedPureResultRule",
    "Violation",
    "format_json",
    "format_sarif",
    "format_text",
    "load_config",
    "run_lint",
]
