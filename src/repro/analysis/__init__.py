"""Measurement machinery for the paper's figures and tables."""

from repro.analysis.divergence import normalized_model_divergence
from repro.analysis.cdf import empirical_cdf, fraction_below
from repro.analysis.saving import rounds_to_accuracy, saving
from repro.analysis.convergence import RegretTracker

__all__ = [
    "normalized_model_divergence",
    "empirical_cdf",
    "fraction_below",
    "rounds_to_accuracy",
    "saving",
    "RegretTracker",
]
