"""Normalized Model Divergence (paper Eq. 7, Figs. 1 and 6).

For each model parameter x_j, the divergence is the average over
clients of |x_{j,k} - xbar_j| / |xbar_j| -- how far the client-side
values stray from the global value, normalised by the global value.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["divergence_summary", "normalized_model_divergence"]

_EPS = 1e-12


def normalized_model_divergence(
    client_params: Sequence[np.ndarray], global_params: np.ndarray
) -> np.ndarray:
    """d_j for every parameter; returns a vector of length n_params.

    ``client_params`` is one flat parameter vector per client, all the
    same length as ``global_params``.  Global parameters that are
    exactly zero are guarded with a tiny epsilon (the paper's data never
    hits them, ours should not either, but dividing by zero would
    poison the CDF).
    """
    global_flat = np.asarray(global_params, dtype=float).reshape(-1)
    if global_flat.size == 0:
        raise ValueError("global parameters cannot be empty")
    if not client_params:
        raise ValueError("need at least one client parameter vector")
    stack = np.stack(
        [np.asarray(c, dtype=float).reshape(-1) for c in client_params]
    )
    if stack.shape[1] != global_flat.size:
        raise ValueError(
            f"client vectors have {stack.shape[1]} parameters, "
            f"global has {global_flat.size}"
        )
    denom = np.maximum(np.abs(global_flat), _EPS)
    return np.mean(np.abs(stack - global_flat[None, :]), axis=0) / denom


def divergence_summary(d: np.ndarray) -> dict:
    """The statistics the paper quotes about a divergence distribution."""
    d = np.asarray(d, dtype=float)
    if d.size == 0:
        raise ValueError("divergence vector cannot be empty")
    return {
        "median": float(np.median(d)),
        "fraction_above_1": float(np.mean(d > 1.0)),
        "max": float(np.max(d)),
        "mean": float(np.mean(d)),
    }
