"""Rounds-to-accuracy and the paper's *saving* metric (Sec. V-A).

Saving^a_A = Phi^a_0 / Phi^a_A: the accumulated communication rounds
vanilla FL needs to reach accuracy ``a``, divided by what algorithm A
needs.  Accuracy curves are noisy (the paper notes CMFL's are visibly
jagged), so the reaching condition uses a smoothed curve.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fl.history import RunHistory
from repro.utils.smoothing import moving_average

__all__ = [
    "best_reached_accuracy",
    "bytes_to_accuracy",
    "rounds_to_accuracy",
    "saving",
]


def rounds_to_accuracy(
    history: RunHistory, target: float, smooth_window: int = 3
) -> Optional[int]:
    """Accumulated communication rounds when the test metric first
    reaches ``target`` (on a trailing moving average), or ``None`` if
    the run never got there."""
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target accuracy must be in (0, 1], got {target}")
    _, comm_rounds, metric = history.evaluated_points()
    if metric.size == 0:
        return None
    smoothed = moving_average(metric, smooth_window)
    hits = np.flatnonzero(smoothed >= target)
    if hits.size == 0:
        return None
    return int(comm_rounds[hits[0]])


def bytes_to_accuracy(
    history: RunHistory, target: float, smooth_window: int = 3
) -> Optional[int]:
    """Total uploaded bytes when the test metric first reaches ``target``."""
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target accuracy must be in (0, 1], got {target}")
    _, _, metric = history.evaluated_points()
    if metric.size == 0:
        return None
    smoothed = moving_average(metric, smooth_window)
    hits = np.flatnonzero(smoothed >= target)
    if hits.size == 0:
        return None
    evaluated = [r for r in history.records if r.test_metric is not None]
    return int(evaluated[hits[0]].total_bytes)


def saving(
    baseline: RunHistory,
    compared: RunHistory,
    target: float,
    smooth_window: int = 3,
) -> Optional[float]:
    """Saving of ``compared`` over ``baseline`` at accuracy ``target``.

    Returns ``None`` when either run never reaches the target.  Values
    above 1 mean ``compared`` used fewer communication rounds.
    """
    phi_base = rounds_to_accuracy(baseline, target, smooth_window)
    phi_comp = rounds_to_accuracy(compared, target, smooth_window)
    if phi_base is None or phi_comp is None:
        return None
    if phi_comp == 0:
        raise ValueError("compared run reached the target with zero uploads")
    return phi_base / phi_comp


def best_reached_accuracy(history: RunHistory, smooth_window: int = 3) -> float:
    """Highest smoothed test metric the run attained (0.0 if never evaluated)."""
    _, _, metric = history.evaluated_points()
    if metric.size == 0:
        return 0.0
    return float(np.max(moving_average(metric, smooth_window)))
