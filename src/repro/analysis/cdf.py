"""Empirical CDFs (the paper plots several: Figs. 1, 3, 6)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["empirical_cdf", "fraction_below", "quantile"]


def empirical_cdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probabilities in (0, 1])."""
    arr = np.sort(np.asarray(values, dtype=float).reshape(-1))
    if arr.size == 0:
        raise ValueError("cannot build a CDF of zero values")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def fraction_below(values: np.ndarray, threshold: float) -> float:
    """P(X <= threshold) under the empirical distribution."""
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ValueError("cannot evaluate an empty sample")
    return float(np.mean(arr <= threshold))


def quantile(values: np.ndarray, q: float) -> float:
    """The q-quantile (q in [0, 1]) of the sample."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ValueError("cannot evaluate an empty sample")
    return float(np.quantile(arr, q))
