"""Regret tracking for the convergence guarantee (paper Sec. IV-C).

Theorem 1 bounds the time-average regret
(1/T) * sum_t |f(x_t) - f(x*)| by O(sum eta_t)/T + O(1/(T eta_T)) +
O(sum v_t)/T; with eta_t, v_t ~ 1/sqrt(t) the bound decays like
1/sqrt(T).  The tracker records per-iteration loss values against a
known optimum so the property tests and the convergence benchmark can
verify the *decay* of the time-average regret empirically.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["RegretTracker", "theoretical_bound"]


class RegretTracker:
    """Accumulates |f(x_t) - f(x*)| over iterations."""

    def __init__(self, optimal_loss: float) -> None:
        self.optimal_loss = float(optimal_loss)
        self._losses: List[float] = []

    def observe(self, loss: float) -> None:
        if not np.isfinite(loss):
            raise ValueError(f"loss must be finite, got {loss}")
        self._losses.append(float(loss))

    def __len__(self) -> int:
        return len(self._losses)

    @property
    def regrets(self) -> np.ndarray:
        """|f(x_t) - f(x*)| per iteration."""
        return np.abs(np.asarray(self._losses) - self.optimal_loss)

    def cumulative_regret(self) -> np.ndarray:
        """R[x] up to each iteration."""
        return np.cumsum(self.regrets)

    def time_average_regret(self) -> np.ndarray:
        """(1/T) R[x] for every prefix length T (the quantity of Eq. 5)."""
        if not self._losses:
            raise ValueError("no losses observed")
        t = np.arange(1, len(self._losses) + 1, dtype=float)
        return self.cumulative_regret() / t

    def is_decaying(self, first_fraction: float = 0.25) -> bool:
        """True if the time-average regret of the last quarter is below
        that of the first ``first_fraction`` of iterations -- the
        empirical signature of Eq. (5) holding."""
        avg = self.time_average_regret()
        if avg.size < 8:
            raise ValueError("need at least 8 observations")
        head = int(max(1, avg.size * first_fraction))
        return float(avg[-1]) < float(np.mean(avg[:head]))


def theoretical_bound(
    etas: np.ndarray, thresholds: np.ndarray, scale: float = 1.0
) -> np.ndarray:
    """Evaluate the shape of Theorem 1's bound for given schedules.

    Returns the per-T value of
    scale * (sum_{t<=T} eta_t + 1/eta_T + sum_{t<=T} v_t) / T, which
    for the paper's 1/sqrt(t) schedules decays like 1/sqrt(T).
    """
    etas = np.asarray(etas, dtype=float)
    thresholds = np.asarray(thresholds, dtype=float)
    if etas.shape != thresholds.shape or etas.ndim != 1 or etas.size == 0:
        raise ValueError("etas and thresholds must be equal-length 1-D arrays")
    if np.any(etas <= 0):
        raise ValueError("learning rates must be positive")
    t = np.arange(1, etas.size + 1, dtype=float)
    return scale * (np.cumsum(etas) + 1.0 / etas + np.cumsum(thresholds)) / t
