"""``repro.ckpt`` — deterministic run-state persistence.

Checkpoints capture *everything* a federated run's next round depends
on — global model, optimizer slots, CMFL feedback state, client and
sampler RNG streams, communication ledger, run history and the trace
continuation — in a single verifiable ``repro-ckpt/v1`` container.

The headline guarantee (enforced in ``tests/test_ckpt_resume.py``): a
run killed at any point and resumed from its last checkpoint produces
a bitwise-identical :class:`~repro.fl.history.RunHistory` and an
identical deterministic trace digest to the uninterrupted run, on
every execution backend.

Typical use is through :class:`~repro.fl.config.FLConfig`::

    config = FLConfig(rounds=100, checkpoint_dir="ckpts",
                      checkpoint_every=5, checkpoint_keep=3)
    ...
    trainer = FederatedTrainer.restore(latest_checkpoint("ckpts"),
                                       workspace=..., clients=..., ...)
    trainer.run(remaining)

Inspect containers from the shell with ``python -m repro.ckpt``
(``inspect`` / ``verify`` / ``diff``).
"""

from repro.ckpt.checkpointer import Checkpointer, save_checkpoint
from repro.ckpt.format import (
    CKPT_SCHEMA,
    CKPT_SUFFIX,
    Checkpoint,
    CheckpointError,
    MANIFEST_MEMBER,
    checkpoint_paths,
    latest_checkpoint,
    read_checkpoint,
    verify_checkpoint,
    write_checkpoint,
)
from repro.ckpt.state import (
    HISTORY_MEMBER,
    apply_run_state,
    build_resume_tracer,
    capture_run_state,
)

__all__ = [
    "CKPT_SCHEMA",
    "CKPT_SUFFIX",
    "Checkpoint",
    "CheckpointError",
    "Checkpointer",
    "HISTORY_MEMBER",
    "MANIFEST_MEMBER",
    "apply_run_state",
    "build_resume_tracer",
    "capture_run_state",
    "checkpoint_paths",
    "latest_checkpoint",
    "read_checkpoint",
    "save_checkpoint",
    "verify_checkpoint",
    "write_checkpoint",
]
