"""The ``repro-ckpt/v1`` checkpoint container format.

A checkpoint is a single zip file (suffix ``.ckpt``) holding:

* ``manifest.json`` — the run-state manifest: schema tag, iteration,
  every JSON-serialisable piece of state, an index of the array
  members, and a ``members`` table with the SHA-256 digest and byte
  length of every other member;
* ``arrays/<key>.npy`` — one ``.npy`` payload per numpy array
  (global parameters, feedback history, optimizer slots);
* text members such as ``history.jsonl`` (the serialised RunHistory).

The bytes are deterministic: members are written in sorted order with
a fixed timestamp, so the same run state always produces the same
file — which is what lets tests compare checkpoints bitwise and lets
``python -m repro.ckpt diff`` explain any divergence.

Writes are atomic (temp file + fsync + rename via
:mod:`repro.utils.atomic_io`): a crash mid-save leaves either the
previous checkpoint or none, never a torn file.  Reads verify every
member against the manifest digests by default and raise
:class:`CheckpointError` naming the offending member.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.utils.atomic_io import atomic_write

__all__ = [
    "CKPT_SCHEMA",
    "CKPT_SUFFIX",
    "Checkpoint",
    "CheckpointError",
    "MANIFEST_MEMBER",
    "checkpoint_paths",
    "latest_checkpoint",
    "read_checkpoint",
    "verify_checkpoint",
    "write_checkpoint",
]

#: Schema tag stored in every manifest; bump on incompatible changes.
CKPT_SCHEMA = "repro-ckpt/v1"

#: File suffix of checkpoint containers.
CKPT_SUFFIX = ".ckpt"

#: Name of the manifest member inside the container.
MANIFEST_MEMBER = "manifest.json"

#: Fixed zip timestamp so identical state produces identical bytes.
_ZIP_DATE = (1980, 1, 1, 0, 0, 0)


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read or verified."""


@dataclass
class Checkpoint:
    """A fully read (and, by default, digest-verified) checkpoint."""

    path: Optional[Path]
    manifest: Dict[str, Any]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    texts: Dict[str, str] = field(default_factory=dict)

    @property
    def iteration(self) -> int:
        """The number of completed rounds this checkpoint captures."""
        return int(self.manifest["iteration"])


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def _npy_load(data: bytes, member: str) -> np.ndarray:
    try:
        return np.load(io.BytesIO(data), allow_pickle=False)
    except ValueError as exc:
        raise CheckpointError(
            f"member {member!r} is not a valid .npy payload: {exc}"
        ) from exc


def _array_member(key: str) -> str:
    return f"arrays/{key}.npy"


def write_checkpoint(
    path: Union[str, Path],
    manifest: Dict[str, Any],
    arrays: Dict[str, np.ndarray],
    texts: Optional[Dict[str, str]] = None,
) -> int:
    """Write a ``repro-ckpt/v1`` container; returns its size in bytes.

    ``manifest`` is extended in place with the ``schema`` tag, the
    ``arrays`` index and the per-member digest table before being
    serialised.  The whole container lands atomically.
    """
    target = Path(path)
    members: Dict[str, bytes] = {}
    array_index: Dict[str, Dict[str, Any]] = {}
    for key in sorted(arrays):
        member = _array_member(key)
        data = np.ascontiguousarray(arrays[key])
        members[member] = _npy_bytes(data)
        array_index[key] = {
            "member": member,
            "dtype": str(data.dtype),
            "shape": list(data.shape),
        }
    for name in sorted(texts or {}):
        if name == MANIFEST_MEMBER or name in members:
            raise CheckpointError(f"duplicate checkpoint member {name!r}")
        members[name] = (texts or {})[name].encode("utf-8")

    manifest["schema"] = CKPT_SCHEMA
    manifest["arrays"] = array_index
    manifest["members"] = {
        name: {"sha256": _sha256(data), "bytes": len(data)}
        for name, data in sorted(members.items())
    }
    manifest_bytes = json.dumps(
        manifest, sort_keys=True, indent=2, default=_json_default
    ).encode("utf-8")

    with atomic_write(target, "wb") as fh:
        with zipfile.ZipFile(fh, "w", zipfile.ZIP_DEFLATED) as zf:
            _write_member(zf, MANIFEST_MEMBER, manifest_bytes)
            for name in sorted(members):
                _write_member(zf, name, members[name])
    return target.stat().st_size


def _write_member(zf: zipfile.ZipFile, name: str, data: bytes) -> None:
    info = zipfile.ZipInfo(name, date_time=_ZIP_DATE)
    info.compress_type = zipfile.ZIP_DEFLATED
    info.external_attr = 0o644 << 16
    zf.writestr(info, data)


def _json_default(obj: Any) -> Any:
    """Coerce numpy scalars; anything else is a manifest-construction bug."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serialisable: {type(obj).__name__}")


def read_checkpoint(
    path: Union[str, Path], verify: bool = True
) -> Checkpoint:
    """Read (and by default digest-verify) a checkpoint container.

    Raises :class:`CheckpointError` on a truncated/corrupt zip, a
    missing member, a digest or length mismatch (naming the member and
    both digests), or a schema the reader does not understand.
    """
    source = Path(path)
    try:
        zf = zipfile.ZipFile(source)
    except (zipfile.BadZipFile, OSError) as exc:
        raise CheckpointError(
            f"{source} is not a readable checkpoint "
            f"(truncated or corrupt): {exc}"
        ) from exc
    with zf:
        manifest = _read_manifest(zf, source)
        members: Dict[str, bytes] = {}
        for name, expected in manifest["members"].items():
            try:
                data = zf.read(name)
            except KeyError as exc:
                raise CheckpointError(
                    f"{source} is missing member {name!r}"
                ) from exc
            except zipfile.BadZipFile as exc:
                raise CheckpointError(
                    f"member {name!r} of {source} is corrupt: {exc}"
                ) from exc
            if verify:
                _verify_member(source, name, data, expected)
            members[name] = data
    arrays = {
        key: _npy_load(members[entry["member"]], entry["member"])
        for key, entry in manifest["arrays"].items()
    }
    array_members = {entry["member"] for entry in manifest["arrays"].values()}
    texts = {
        name: data.decode("utf-8")
        for name, data in members.items()
        if name not in array_members
    }
    return Checkpoint(path=source, manifest=manifest, arrays=arrays, texts=texts)


def _read_manifest(zf: zipfile.ZipFile, source: Path) -> Dict[str, Any]:
    try:
        raw = zf.read(MANIFEST_MEMBER)
    except KeyError as exc:
        raise CheckpointError(
            f"{source} has no {MANIFEST_MEMBER!r} member; not a "
            f"{CKPT_SCHEMA} checkpoint"
        ) from exc
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"member {MANIFEST_MEMBER!r} of {source} is corrupt: {exc}"
        ) from exc
    schema = manifest.get("schema")
    if schema != CKPT_SCHEMA:
        raise CheckpointError(
            f"{source} has schema {schema!r}; this reader understands "
            f"{CKPT_SCHEMA!r}"
        )
    return manifest


def _verify_member(
    source: Path, name: str, data: bytes, expected: Dict[str, Any]
) -> None:
    if len(data) != int(expected["bytes"]):
        raise CheckpointError(
            f"member {name!r} of {source} is {len(data)} bytes, manifest "
            f"says {expected['bytes']}"
        )
    actual = _sha256(data)
    if actual != expected["sha256"]:
        raise CheckpointError(
            f"member {name!r} of {source} fails digest verification: "
            f"expected sha256 {expected['sha256']}, got {actual}"
        )


def verify_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Fully read + digest-check a checkpoint; returns its manifest."""
    return read_checkpoint(path, verify=True).manifest


def checkpoint_paths(
    directory: Union[str, Path], prefix: str = "ckpt"
) -> List[Path]:
    """All ``<prefix>-*.ckpt`` files in ``directory``, oldest first.

    The zero-padded iteration number in the filename makes
    lexicographic order chronological order.
    """
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"{prefix}-*{CKPT_SUFFIX}"))


def latest_checkpoint(
    directory: Union[str, Path], prefix: str = "ckpt"
) -> Optional[Path]:
    """The newest checkpoint in ``directory``, or None."""
    paths = checkpoint_paths(directory, prefix=prefix)
    return paths[-1] if paths else None
