"""Capturing and restoring a federated run's complete state.

:func:`capture_run_state` walks a :class:`~repro.fl.trainer.
FederatedTrainer` and produces the (manifest, arrays, texts) triple the
container format persists; :func:`apply_run_state` pushes a read
checkpoint back into a freshly constructed trainer.  Between them they
cover everything round ``t+1`` depends on:

* the global model parameters and the optimizer's slot state;
* the CMFL feedback state (the estimator's retained update history,
  which determines u_bar and the threshold context) and any mutable
  policy state;
* every client's RNG stream position plus the sampler's RNG — for a
  store-backed federation, the materialized shard arrays of the
  :class:`~repro.fl.store.ClientStateStore` instead (rows already hold
  the encoded stream positions);
* the communication ledger and the full :class:`RunHistory`;
* the tracer continuation snapshot (sequence/id counters, open spans,
  metric values), so a resumed trace extends the original stream.

The restore side validates shape/identity invariants (parameter count,
policy name, client-id set, feedback staleness, aggregation mode) and
wraps any structural mismatch in :class:`CheckpointError` so a
checkpoint applied against the wrong federation fails loudly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Tuple

import numpy as np

from repro.ckpt.format import CheckpointError, Checkpoint
from repro.fl.history import RunHistory
from repro.obs import JsonlSink, MemorySink, Tracer
from repro.obs.sinks import truncate_trace

__all__ = [
    "HISTORY_MEMBER",
    "apply_run_state",
    "build_resume_tracer",
    "capture_run_state",
]

#: Container member holding the serialised RunHistory.
HISTORY_MEMBER = "history.jsonl"


def capture_run_state(
    trainer: Any,
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray], Dict[str, str]]:
    """Snapshot ``trainer`` into (manifest, arrays, texts).

    Must be called at a round boundary (between ``run_round`` calls):
    that is the only point where the scattered state — server params,
    optimizer slots, RNG streams, ledger — is mutually consistent.
    """
    server = trainer.server
    estimator = server.estimator
    opt_state = trainer.workspace.optimizer.state_dict()

    arrays: Dict[str, np.ndarray] = {"global_params": server.global_params}
    feedback_state = estimator.state_dict()
    for i, update in enumerate(feedback_state["history"]):
        arrays[f"feedback/{i}"] = update
    arrays["feedback_deltas"] = np.asarray(
        feedback_state["delta_updates"], dtype=float
    )
    for slot, slot_arrays in opt_state["slots"].items():
        for i, value in enumerate(slot_arrays):
            arrays[f"optimizer/{slot}/{i}"] = value

    manifest: Dict[str, Any] = {
        "iteration": len(trainer.history),
        "n_params": server.n_params,
        "policy": {
            "name": trainer.policy.name,
            "state": trainer.policy.state_dict(),
        },
        "server": {
            "weighted": server.weighted,
            "feedback_staleness": estimator.staleness,
            "n_feedback": len(feedback_state["history"]),
        },
        "optimizer": {
            "type": opt_state["type"],
            "scalars": opt_state["scalars"],
            "slots": {
                slot: len(slot_arrays)
                for slot, slot_arrays in opt_state["slots"].items()
            },
        },
        "rng": {
            "clients": {
                str(client.client_id): client.rng_state()
                for client in trainer.clients
            },
            "sampler": trainer.sampler.state_dict(),
        },
        "ledger": trainer.ledger.state_dict(),
        "trace": (
            trainer.tracer.export_state() if trainer.tracer.enabled else None
        ),
        # The health monitor's stall cursor (trainer.health): tiny, but
        # without it a resumed run would reach different stall verdicts
        # than an uninterrupted one.
        "health": (
            trainer.health.state_dict() if trainer.health is not None else None
        ),
        "executor": {"backend": trainer.executor.name},
    }
    # Store-backed federations: the population lives in shard arrays,
    # not client objects, so ``rng.clients`` above is empty and the
    # shard state rides along as ``store/shard/<id>/<field>`` arrays.
    # The store refuses to snapshot while round views are outstanding,
    # which re-asserts the round-boundary contract for this mode.
    if trainer.store is not None:
        manifest["store"] = trainer.store.manifest()
        for key, value in trainer.store.state_arrays().items():
            arrays[f"store/{key}"] = value

    # A trainer driven by the async engine (repro.fl.events) carries
    # its timeline — virtual clock, event queue, in-flight rounds'
    # computed results — under ``manifest["async"]`` / ``async/*``
    # arrays; AsyncFederatedTrainer.restore reads them back.
    engine = getattr(trainer, "async_engine", None)
    if engine is not None:
        async_manifest, async_arrays = engine.export_state()
        manifest["async"] = async_manifest
        arrays.update(async_arrays)

    texts = {HISTORY_MEMBER: trainer.history.to_jsonl()}
    return manifest, arrays, texts


def apply_run_state(trainer: Any, ckpt: Checkpoint) -> None:
    """Restore a checkpoint into a freshly constructed ``trainer``.

    The trainer must have been built over the same federation shape —
    same model architecture, optimizer type, policy, clients, sampler
    and aggregation settings — as the run that produced the checkpoint.
    """
    manifest = ckpt.manifest
    try:
        _apply(trainer, ckpt, manifest)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {ckpt.path} does not match this federation: {exc}"
        ) from exc


def _apply(trainer: Any, ckpt: Checkpoint, manifest: Dict[str, Any]) -> None:
    server = trainer.server
    if int(manifest["n_params"]) != server.n_params:
        raise ValueError(
            f"checkpoint has {manifest['n_params']} parameters, "
            f"model has {server.n_params}"
        )
    if manifest["policy"]["name"] != trainer.policy.name:
        raise ValueError(
            f"checkpoint is for policy {manifest['policy']['name']!r}, "
            f"trainer runs {trainer.policy.name!r}"
        )
    if bool(manifest["server"]["weighted"]) != server.weighted:
        raise ValueError("weighted-aggregation setting differs")
    if int(manifest["server"]["feedback_staleness"]) != server.estimator.staleness:
        raise ValueError(
            f"checkpoint has feedback staleness "
            f"{manifest['server']['feedback_staleness']}, trainer has "
            f"{server.estimator.staleness}"
        )
    ckpt_ids = set(manifest["rng"]["clients"])
    trainer_ids = {str(c.client_id) for c in trainer.clients}
    if ckpt_ids != trainer_ids:
        raise ValueError(
            f"checkpoint covers clients {sorted(ckpt_ids)}, trainer has "
            f"{sorted(trainer_ids)}"
        )

    global_params = np.asarray(ckpt.arrays["global_params"], dtype=float)
    if global_params.shape != server.global_params.shape:
        raise ValueError(
            f"global_params has shape {global_params.shape}, expected "
            f"{server.global_params.shape}"
        )
    server.global_params[...] = global_params
    server.estimator.load_state_dict(
        {
            "n_params": manifest["n_params"],
            "staleness": manifest["server"]["feedback_staleness"],
            "history": [
                ckpt.arrays[f"feedback/{i}"]
                for i in range(int(manifest["server"]["n_feedback"]))
            ],
            "delta_updates": ckpt.arrays["feedback_deltas"].tolist(),
        }
    )
    trainer.workspace.optimizer.load_state_dict(
        {
            "type": manifest["optimizer"]["type"],
            "scalars": manifest["optimizer"]["scalars"],
            "slots": {
                slot: [
                    ckpt.arrays[f"optimizer/{slot}/{i}"] for i in range(count)
                ]
                for slot, count in manifest["optimizer"]["slots"].items()
            },
        }
    )
    trainer.policy.load_state_dict(manifest["policy"]["state"])
    for client in trainer.clients:
        client.set_rng_state(manifest["rng"]["clients"][str(client.client_id)])
    trainer.sampler.load_state_dict(manifest["rng"]["sampler"])
    trainer.ledger.load_state_dict(manifest["ledger"])
    # Tolerant of pre-health checkpoints (manifest.get): the cursor
    # then starts fresh, which only delays a stall verdict.
    health_state = manifest.get("health")
    if health_state is not None and trainer.health is not None:
        trainer.health.load_state_dict(health_state)

    store_manifest = manifest.get("store")
    if (store_manifest is None) != (trainer.store is None):
        raise ValueError(
            "checkpoint is store-backed but the trainer is not"
            if store_manifest is not None
            else "trainer is store-backed but the checkpoint is not"
        )
    if store_manifest is not None:
        # The store validates population/shard_size/seed/partition
        # identity itself and rebuilds exactly the shards the snapshot
        # had materialized.
        trainer.store.load_state(
            store_manifest,
            {
                key[len("store/") :]: array
                for key, array in ckpt.arrays.items()
                if key.startswith("store/")
            },
        )

    history = RunHistory.from_jsonl(ckpt.texts[HISTORY_MEMBER])
    if history.policy_name != trainer.policy.name:
        raise ValueError(
            f"checkpointed history is for policy {history.policy_name!r}"
        )
    if len(history) != int(manifest["iteration"]):
        raise ValueError(
            f"history holds {len(history)} records, manifest says "
            f"iteration {manifest['iteration']}"
        )
    trainer.history = history
    # Round t+1 trains from the restored global model.
    trainer.workspace.load_flat(server.global_params)


def build_resume_tracer(trace_state: Any, config: Any) -> Any:
    """Reconstruct the tracer continuation for a resumed run.

    Returns ``None`` when the checkpoint carried no trace state or the
    config has tracing off (the trainer then builds its default).  With
    a ``trace_path``, the original JSONL file is truncated back to the
    events the checkpoint had durably flushed (``seq`` strictly below
    the snapshot's counter — anything later belongs to the crashed
    partial round) and reopened in append mode, so the resumed run
    extends the exact original stream.
    """
    if trace_state is None or not config.trace_enabled:
        return None
    upto_seq = int(trace_state["seq"])
    if config.trace_path:
        path = Path(config.trace_path)
        if not path.exists():
            raise CheckpointError(
                f"checkpoint expects a trace at {path}, but the file "
                "does not exist"
            )
        kept = truncate_trace(path, upto_seq)
        if kept != upto_seq:
            raise CheckpointError(
                f"trace at {path} has only {kept} events before seq "
                f"{upto_seq}; it does not match this checkpoint"
            )
        sink = JsonlSink(path, mode="a")
    else:
        # In-memory traces do not survive the original process; the
        # resumed stream continues from the checkpoint's counters.
        sink = MemorySink()
    tracer = Tracer(sinks=[sink], emit_header=False)
    tracer.restore_state(trace_state)
    return tracer
