"""Periodic checkpoint saving with retention.

:func:`save_checkpoint` writes one checkpoint for a trainer's current
state; :class:`Checkpointer` schedules those saves (every N completed
rounds into a directory, pruning old files) and is what
:class:`~repro.fl.trainer.FederatedTrainer` instantiates from the
``FLConfig.checkpoint_*`` knobs.

Trace interaction: the deterministic ``ckpt`` span and ``ckpt.saves``
counter are emitted *before* the tracer state is captured, so they are
part of the checkpointed stream and a resumed run's trace digests
identically to an uninterrupted one.  The save duration and on-disk
size go to ``runtime.ckpt.*`` metrics afterwards — runtime data the
deterministic view masks.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import Any, List, Optional, Union

from repro.ckpt.format import (
    CKPT_SUFFIX,
    checkpoint_paths,
    latest_checkpoint,
    write_checkpoint,
)
from repro.ckpt.state import capture_run_state

__all__ = ["Checkpointer", "save_checkpoint"]


def save_checkpoint(trainer: Any, path: Union[str, Path]) -> Path:
    """Write ``trainer``'s complete run state to ``path``, atomically.

    Call at a round boundary only.  The trace sinks are fsynced first,
    so every event with ``seq`` below the captured counter is durable
    and :func:`~repro.ckpt.state.build_resume_tracer` can rely on it.
    """
    tracer = trainer.tracer
    if tracer.enabled:
        tracer.record_span(
            "ckpt", attrs={"iteration": len(trainer.history)}
        )
        tracer.metrics.counter("ckpt.saves").inc()
        tracer.flush()
    started = perf_counter()
    manifest, arrays, texts = capture_run_state(trainer)
    nbytes = write_checkpoint(path, manifest, arrays, texts)
    if tracer.enabled:
        tracer.metrics.histogram("runtime.ckpt.save_s").observe(
            perf_counter() - started
        )
        tracer.metrics.gauge("runtime.ckpt.bytes").set(nbytes)
    return Path(path)


class Checkpointer:
    """Saves a trainer every N rounds and prunes old checkpoints.

    Files are named ``<prefix>-<iteration:08d>.ckpt`` so lexicographic
    order is chronological; ``keep=0`` retains everything.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every_n_rounds: int = 1,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> None:
        if every_n_rounds < 1:
            raise ValueError("every_n_rounds must be >= 1")
        if keep < 0:
            raise ValueError("keep must be >= 0 (0 = keep all)")
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self.directory = Path(directory)
        self.every_n_rounds = every_n_rounds
        self.keep = keep
        self.prefix = prefix

    def path_for(self, iteration: int) -> Path:
        return self.directory / f"{self.prefix}-{iteration:08d}{CKPT_SUFFIX}"

    def due(self, iteration: int) -> bool:
        """Whether a checkpoint is owed after completed round ``iteration``."""
        return iteration % self.every_n_rounds == 0

    def maybe_save(self, trainer: Any, iteration: int) -> Optional[Path]:
        """Save if round ``iteration`` hits the schedule; prune after."""
        if not self.due(iteration):
            return None
        return self.save(trainer)

    def save(self, trainer: Any) -> Path:
        """Save unconditionally at the trainer's current iteration."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = save_checkpoint(trainer, self.path_for(len(trainer.history)))
        self.prune()
        return path

    def checkpoints(self) -> List[Path]:
        """This checkpointer's files, oldest first."""
        return checkpoint_paths(self.directory, prefix=self.prefix)

    def latest(self) -> Optional[Path]:
        return latest_checkpoint(self.directory, prefix=self.prefix)

    def prune(self) -> List[Path]:
        """Delete all but the newest ``keep`` checkpoints; returns removals."""
        if self.keep == 0:
            return []
        paths = self.checkpoints()
        removed = paths[: -self.keep] if len(paths) > self.keep else []
        for path in removed:
            path.unlink()
        return removed

    def __repr__(self) -> str:
        return (
            f"Checkpointer({str(self.directory)!r}, "
            f"every_n_rounds={self.every_n_rounds}, keep={self.keep})"
        )
