"""``python -m repro.ckpt`` — inspect, verify and diff checkpoints.

    python -m repro.ckpt inspect run/ckpt-00000010.ckpt
    python -m repro.ckpt verify run/*.ckpt
    python -m repro.ckpt diff a.ckpt b.ckpt

``inspect`` prints the manifest summary and member table; ``verify``
digest-checks every member of each file and exits non-zero on the
first failure; ``diff`` compares two checkpoints' manifests and array
payloads and lists every divergence.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.ckpt.format import Checkpoint, CheckpointError, read_checkpoint
from repro.utils.tables import format_table

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description="inspect repro-ckpt/v1 checkpoint containers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="manifest + member summary")
    inspect.add_argument("checkpoint", type=Path)
    inspect.add_argument(
        "--json",
        action="store_true",
        help="dump the raw manifest as JSON instead of the summary",
    )

    verify = sub.add_parser("verify", help="digest-check member payloads")
    verify.add_argument("checkpoints", type=Path, nargs="+")

    diff = sub.add_parser("diff", help="compare two checkpoints")
    diff.add_argument("a", type=Path)
    diff.add_argument("b", type=Path)
    return parser


def _inspect_lines(ckpt: Checkpoint) -> List[str]:
    manifest = ckpt.manifest
    lines = [
        f"checkpoint      {ckpt.path}",
        f"schema          {manifest['schema']}",
        f"iteration       {ckpt.iteration}",
        f"policy          {manifest['policy']['name']}",
        f"n_params        {manifest['n_params']}",
        f"optimizer       {manifest['optimizer']['type']}",
        f"executor        {manifest['executor']['backend']}",
        f"traced          {manifest.get('trace') is not None}",
        "",
        format_table(
            ["member", "bytes", "sha256"],
            [
                [name, entry["bytes"], entry["sha256"][:16]]
                for name, entry in sorted(manifest["members"].items())
            ],
        ),
    ]
    return lines


def _diff_manifest(
    a: Dict[str, Any], b: Dict[str, Any], prefix: str = ""
) -> List[str]:
    problems: List[str] = []
    for key in sorted(set(a) | set(b)):
        label = f"{prefix}{key}"
        if key not in a or key not in b:
            problems.append(f"manifest key {label!r} only in one checkpoint")
        elif isinstance(a[key], dict) and isinstance(b[key], dict):
            problems.extend(_diff_manifest(a[key], b[key], f"{label}."))
        elif a[key] != b[key]:
            problems.append(
                f"manifest {label!r} differs: {a[key]!r} vs {b[key]!r}"
            )
    return problems


def _diff_checkpoints(a: Checkpoint, b: Checkpoint) -> List[str]:
    problems: List[str] = []
    # members/arrays digests are compared via the manifest tables below;
    # array payloads additionally get a value-level comparison.
    skip = ("members",)
    problems.extend(
        _diff_manifest(
            {k: v for k, v in a.manifest.items() if k not in skip},
            {k: v for k, v in b.manifest.items() if k not in skip},
        )
    )
    for key in sorted(set(a.arrays) | set(b.arrays)):
        if key not in a.arrays or key not in b.arrays:
            problems.append(f"array {key!r} only in one checkpoint")
            continue
        left, right = a.arrays[key], b.arrays[key]
        if left.shape != right.shape:
            problems.append(
                f"array {key!r} shape differs: {left.shape} vs {right.shape}"
            )
        elif not np.array_equal(left, right):
            delta = float(np.max(np.abs(left - right)))
            problems.append(
                f"array {key!r} values differ (max abs delta {delta:.3e})"
            )
    for name in sorted(set(a.texts) | set(b.texts)):
        if a.texts.get(name) != b.texts.get(name):
            problems.append(f"text member {name!r} differs")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "inspect":
            ckpt = read_checkpoint(args.checkpoint)
            if args.json:
                print(json.dumps(ckpt.manifest, sort_keys=True, indent=2))
            else:
                print("\n".join(_inspect_lines(ckpt)))
            return 0
        if args.command == "verify":
            for path in args.checkpoints:
                ckpt = read_checkpoint(path, verify=True)
                print(
                    f"OK {path} (iteration {ckpt.iteration}, "
                    f"{len(ckpt.manifest['members'])} members)"
                )
            return 0
        if args.command == "diff":
            problems = _diff_checkpoints(
                read_checkpoint(args.a), read_checkpoint(args.b)
            )
            if problems:
                for problem in problems:
                    print(problem)
                return 1
            print("checkpoints are identical")
            return 0
    except (CheckpointError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
