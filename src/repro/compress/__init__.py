"""Update compression: the paper's *orthogonal* communication axis.

CMFL reduces *how many* updates are uploaded; the related work it
contrasts against (Konecny et al.'s structured and sketched updates)
reduces *how many bits each update costs*.  This package implements
that axis -- uniform quantization, top-k and random sparsification --
behind a common codec interface with honest wire-size accounting, plus
a wrapper that composes any codec with any upload policy, so the two
approaches can be combined exactly as the paper suggests.
"""

from repro.compress.codecs import (
    Codec,
    CompressedUpdate,
    IdentityCodec,
    QuantizationCodec,
    RandomSparsifier,
    TopKSparsifier,
)
from repro.compress.pipeline import CompressionPipeline

__all__ = [
    "Codec",
    "CompressedUpdate",
    "IdentityCodec",
    "QuantizationCodec",
    "TopKSparsifier",
    "RandomSparsifier",
    "CompressionPipeline",
]
