"""Composing update compression with upload filtering.

The paper frames the two communication levers as orthogonal: CMFL
decides *whether* to upload, codecs decide *how many bits* the upload
costs.  :class:`CompressionPipeline` composes them: the policy judges
the raw update; if it passes, the codec encodes it and the server
aggregates the *decoded* (lossy) version -- exactly what a deployed
combination would do.  The pipeline keeps its own byte ledger so the
combined footprint can be compared against either lever alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.compress.codecs import Codec
from repro.core.policy import PolicyContext, UploadDecision, UploadPolicy
from repro.nn.serialization import STATUS_MESSAGE_BYTES

__all__ = ["CompressionPipeline", "CompressionStats"]


@dataclass
class CompressionStats:
    """Byte totals and fidelity of one pipeline's traffic."""

    uploaded_bytes: int = 0
    status_bytes: int = 0
    raw_equivalent_bytes: int = 0
    relative_errors: List[float] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Raw float32 bytes over actually-shipped bytes (>1 is a win)."""
        shipped = self.uploaded_bytes + self.status_bytes
        if shipped == 0:
            return float("inf")
        return self.raw_equivalent_bytes / shipped

    @property
    def mean_relative_error(self) -> float:
        if not self.relative_errors:
            return 0.0
        return float(np.mean(self.relative_errors))


class CompressionPipeline(UploadPolicy):
    """An upload policy that also compresses whatever it uploads.

    Wraps an inner policy (vanilla / Gaia / CMFL) and a codec.  The
    decision comes from the inner policy on the *raw* update; on upload
    the update is encoded and immediately decoded, and the lossy result
    replaces the raw vector in place (so the server aggregates what it
    would actually receive).  Wire sizes are tallied in ``stats``.
    """

    def __init__(self, inner: UploadPolicy, codec: Codec) -> None:
        self.inner = inner
        self.codec = codec
        self.stats = CompressionStats()
        self.name = f"{inner.name}+{codec.name}"

    def decide(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        decision = self.inner.decide(update, ctx)
        raw_bytes = 4 * update.size
        if not decision.upload:
            self.stats.status_bytes += STATUS_MESSAGE_BYTES
            return decision
        compressed = self.codec.encode(update)
        decoded = self.codec.decode(compressed)
        norm = float(np.linalg.norm(update))
        if norm > 0:
            self.stats.relative_errors.append(
                float(np.linalg.norm(decoded - update)) / norm
            )
        self.stats.uploaded_bytes += compressed.wire_bytes
        self.stats.raw_equivalent_bytes += raw_bytes
        # The server must aggregate what actually crossed the wire.
        update[...] = decoded
        return decision
