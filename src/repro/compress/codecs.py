"""Lossy update codecs with wire-size accounting.

Every codec maps a float update vector to a :class:`CompressedUpdate`
(carrying its wire size in bytes) and back.  Decoding is lossy for all
but the identity codec; round-trip error is what the paper's related
work trades against bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "Codec",
    "CompressedUpdate",
    "IdentityCodec",
    "QuantizationCodec",
    "RandomSparsifier",
    "TopKSparsifier",
]

#: Bytes of framing per compressed message (ids, shapes, scales).
CODEC_HEADER_BYTES = 24
#: Bytes per index when a sparse codec ships coordinates.
INDEX_BYTES = 4


@dataclass(frozen=True)
class CompressedUpdate:
    """An encoded update plus everything needed to decode it."""

    payload: np.ndarray
    indices: Optional[np.ndarray]
    n_params: int
    scale: float
    offset: float
    wire_bytes: int


class Codec:
    """Interface: ``encode`` to a wire object, ``decode`` back to floats."""

    name = "codec"

    def encode(self, update: np.ndarray) -> CompressedUpdate:
        raise NotImplementedError

    def decode(self, compressed: CompressedUpdate) -> np.ndarray:
        raise NotImplementedError


def _as_vector(update: np.ndarray) -> np.ndarray:
    vec = np.asarray(update, dtype=float).reshape(-1)
    if vec.size == 0:
        raise ValueError("cannot encode an empty update")
    return vec


class IdentityCodec(Codec):
    """No compression: 4 bytes per parameter (the FL wire default)."""

    name = "identity"

    def encode(self, update: np.ndarray) -> CompressedUpdate:
        vec = _as_vector(update)
        return CompressedUpdate(
            payload=vec.copy(),
            indices=None,
            n_params=vec.size,
            scale=1.0,
            offset=0.0,
            wire_bytes=CODEC_HEADER_BYTES + 4 * vec.size,
        )

    def decode(self, compressed: CompressedUpdate) -> np.ndarray:
        return compressed.payload.copy()


class QuantizationCodec(Codec):
    """Uniform b-bit quantization over the update's value range.

    The probabilistic-quantization scheme of the paper's "sketched
    updates" reference.  ``stochastic=True`` (default) rounds each value
    up or down with probability proportional to its distance, making the
    decoded vector *unbiased*.  This matters when composing with CMFL:
    deterministic rounding snaps the many near-zero coordinates of every
    update to the same lattice level, giving the aggregated feedback a
    spurious uniform sign there and wrecking the sign-alignment
    relevance (see ``examples/compressed_cmfl.py``).
    """

    name = "quantization"

    def __init__(
        self, bits: int = 8, stochastic: bool = True, rng: RngLike = None
    ) -> None:
        if not 1 <= bits <= 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits
        self.stochastic = stochastic
        self._rng = ensure_rng(rng)

    def encode(self, update: np.ndarray) -> CompressedUpdate:
        vec = _as_vector(update)
        lo = float(vec.min())
        hi = float(vec.max())
        span = hi - lo
        levels = (1 << self.bits) - 1
        if span == 0.0:
            codes = np.zeros(vec.size, dtype=np.uint16)
            scale = 0.0
        else:
            scale = span / levels
            exact = (vec - lo) / scale
            if self.stochastic:
                floor = np.floor(exact)
                codes = (
                    floor + (self._rng.random(vec.size) < (exact - floor))
                ).astype(np.uint16)
            else:
                codes = np.rint(exact).astype(np.uint16)
        wire = CODEC_HEADER_BYTES + int(np.ceil(vec.size * self.bits / 8))
        return CompressedUpdate(
            payload=codes,
            indices=None,
            n_params=vec.size,
            scale=scale,
            offset=lo,
            wire_bytes=wire,
        )

    def decode(self, compressed: CompressedUpdate) -> np.ndarray:
        return compressed.offset + compressed.payload.astype(float) * compressed.scale


class TopKSparsifier(Codec):
    """Keep only the k largest-magnitude coordinates (structured updates)."""

    name = "topk"

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def _k(self, n: int) -> int:
        return max(1, int(round(self.fraction * n)))

    def encode(self, update: np.ndarray) -> CompressedUpdate:
        vec = _as_vector(update)
        k = self._k(vec.size)
        idx = np.argpartition(np.abs(vec), -k)[-k:]
        idx = np.sort(idx)
        wire = CODEC_HEADER_BYTES + k * (4 + INDEX_BYTES)
        return CompressedUpdate(
            payload=vec[idx].copy(),
            indices=idx,
            n_params=vec.size,
            scale=1.0,
            offset=0.0,
            wire_bytes=wire,
        )

    def decode(self, compressed: CompressedUpdate) -> np.ndarray:
        out = np.zeros(compressed.n_params, dtype=float)
        out[compressed.indices] = compressed.payload
        return out


class RandomSparsifier(Codec):
    """Keep a random coordinate subset, rescaled to stay unbiased.

    The surviving coordinates are divided by the keep-fraction so the
    expected decoded vector equals the input (the property aggregation
    relies on).
    """

    name = "random_sparse"

    def __init__(self, fraction: float = 0.1, rng: RngLike = None) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self._rng = ensure_rng(rng)

    def encode(self, update: np.ndarray) -> CompressedUpdate:
        vec = _as_vector(update)
        k = max(1, int(round(self.fraction * vec.size)))
        idx = np.sort(self._rng.choice(vec.size, size=k, replace=False))
        keep = k / vec.size
        wire = CODEC_HEADER_BYTES + k * (4 + INDEX_BYTES)
        return CompressedUpdate(
            payload=vec[idx] / keep,
            indices=idx,
            n_params=vec.size,
            scale=1.0,
            offset=0.0,
            wire_bytes=wire,
        )

    def decode(self, compressed: CompressedUpdate) -> np.ndarray:
        out = np.zeros(compressed.n_params, dtype=float)
        out[compressed.indices] = compressed.payload
        return out
