"""Wire messages of the master/slave protocol and their sizes."""

from __future__ import annotations

from enum import Enum

from repro.nn.serialization import STATUS_MESSAGE_BYTES, update_nbytes

__all__ = ["MessageKind", "message_size"]

#: Fixed framing overhead per message (headers, ids, round number).
HEADER_BYTES = 32


class MessageKind(Enum):
    """Protocol message types.

    MODEL_BROADCAST carries the global model *and* the feedback global
    update u_bar (CMFL's only protocol change to vanilla FL, and it
    rides the broadcast the server sends anyway).  UPDATE is a full
    client update; STATUS the tiny "trained but withheld" notice.
    """

    MODEL_BROADCAST = "model_broadcast"
    UPDATE = "update"
    STATUS = "status"


def message_size(kind: MessageKind, n_params: int, with_feedback: bool = True) -> int:
    """Bytes on the wire for one message of ``kind``.

    ``with_feedback`` doubles the broadcast payload (model + previous
    global update); vanilla FL broadcasts the model only.
    """
    if n_params < 0:
        raise ValueError("n_params must be >= 0")
    if kind is MessageKind.MODEL_BROADCAST:
        payload = update_nbytes(n_params) * (2 if with_feedback else 1)
        return HEADER_BYTES + payload
    if kind is MessageKind.UPDATE:
        return HEADER_BYTES + update_nbytes(n_params)
    if kind is MessageKind.STATUS:
        return HEADER_BYTES + STATUS_MESSAGE_BYTES
    raise ValueError(f"unknown message kind: {kind}")
