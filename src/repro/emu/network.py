"""Link and compute models for the cluster emulation.

Defaults approximate the paper's m4.xlarge EC2 instances: high-
bandwidth stable links (the paper chose EC2 over real phones exactly
because bandwidth does not affect the footprint metric) and roughly
1.25 s per client-side learning iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InstrumentedLink", "LinkModel", "NodeComputeModel"]


@dataclass(frozen=True)
class LinkModel:
    """A point-to-point link: fixed latency plus bandwidth-limited transfer."""

    bandwidth_bps: float = 1e9  # EC2-like
    latency_s: float = 5e-4

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to move ``n_bytes`` across the link."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        return self.latency_s + 8.0 * n_bytes / self.bandwidth_bps


#: A mobile-grade link for the "what if this ran on real phones"
#: sensitivity analysis (LTE uplink-ish).
MOBILE_LINK = LinkModel(bandwidth_bps=5e6, latency_s=0.05)


class InstrumentedLink:
    """A :class:`LinkModel` wrapper that streams transfer metrics.

    Counts every ``transfer_time`` call and its byte volume into the
    given :class:`~repro.obs.metrics.MetricsRegistry` under
    ``emu.<name>.transfers`` / ``emu.<name>.bytes`` — both byte totals
    are pure functions of the run, so they stay in the deterministic
    metric namespace.  All other attribute access delegates to the
    wrapped link, so an ``InstrumentedLink`` drops in anywhere a
    ``LinkModel`` is accepted.
    """

    def __init__(self, link: LinkModel, metrics, name: str = "link") -> None:
        self.link = link
        self.metrics = metrics
        self.name = name

    def transfer_time(self, n_bytes: int) -> float:
        seconds = self.link.transfer_time(n_bytes)
        self.metrics.counter(f"emu.{self.name}.transfers").inc()
        self.metrics.counter(f"emu.{self.name}.bytes").inc(n_bytes)
        return seconds

    def __getattr__(self, attr: str):
        return getattr(self.link, attr)

    def __repr__(self) -> str:
        return f"InstrumentedLink({self.link!r}, name={self.name!r})"


@dataclass(frozen=True)
class NodeComputeModel:
    """Per-client computation cost model.

    ``train_seconds_per_sample`` covers one forward/backward pass of one
    sample in one local epoch; ``relevance_seconds_per_param`` the
    sign-comparison cost per model parameter (measured to be tens of
    nanoseconds in our micro-benchmark, matching the paper's
    "<1.6 microseconds per check" at their model size).
    """

    train_seconds_per_sample: float = 2e-3
    relevance_seconds_per_param: float = 2e-9

    def __post_init__(self) -> None:
        if self.train_seconds_per_sample <= 0:
            raise ValueError("train_seconds_per_sample must be positive")
        if self.relevance_seconds_per_param < 0:
            raise ValueError("relevance_seconds_per_param must be >= 0")

    def local_training_time(self, n_samples: int, local_epochs: int) -> float:
        if n_samples < 0 or local_epochs < 0:
            raise ValueError("counts must be >= 0")
        return self.train_seconds_per_sample * n_samples * local_epochs

    def relevance_check_time(self, n_params: int) -> float:
        if n_params < 0:
            raise ValueError("n_params must be >= 0")
        return self.relevance_seconds_per_param * n_params
