"""The master/slave cluster emulator.

Wraps a :class:`~repro.fl.trainer.FederatedTrainer` and replays each
synchronous round through the link/compute models:

1. the master broadcasts the model (+ feedback) to every slave;
2. every slave trains locally and runs its upload-policy check;
3. uploading slaves send a full UPDATE, filtered slaves a STATUS;
4. the barrier closes when the slowest slave's upload lands.

The emulator keeps a byte ledger per message kind and a per-round
timing record, which together generate Fig. 7a (accuracy vs rounds on
the cluster), Fig. 7b (uploaded data volume at given accuracies) and
the Sec. V-C computation-overhead numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.emu.messages import MessageKind, message_size
from repro.emu.network import LinkModel, NodeComputeModel
from repro.fl.history import RoundRecord
from repro.fl.trainer import FederatedTrainer

__all__ = ["ClusterEmulator", "EmulationReport", "RoundTiming"]


@dataclass
class RoundTiming:
    """Wall-clock decomposition of one emulated round (seconds)."""

    iteration: int
    broadcast_time: float
    slowest_compute_time: float
    slowest_upload_time: float
    relevance_check_time: float

    @property
    def total(self) -> float:
        return self.broadcast_time + self.slowest_compute_time + self.slowest_upload_time


@dataclass
class EmulationReport:
    """Aggregate outcome of an emulated run."""

    n_clients: int
    n_params: int
    simulated_seconds: float = 0.0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    timings: List[RoundTiming] = field(default_factory=list)

    @property
    def uploaded_megabytes(self) -> float:
        """Upstream full-update traffic in MB (the Fig. 7b y-axis)."""
        return self.bytes_by_kind.get(MessageKind.UPDATE.value, 0) / 1e6

    @property
    def upstream_megabytes(self) -> float:
        """All upstream traffic (updates + status notices) in MB."""
        up = self.bytes_by_kind.get(MessageKind.UPDATE.value, 0)
        up += self.bytes_by_kind.get(MessageKind.STATUS.value, 0)
        return up / 1e6

    def relevance_overhead_fraction(self) -> float:
        """Mean (relevance-check time / local-compute time) per round."""
        if not self.timings:
            raise ValueError("no rounds emulated")
        fractions = [
            t.relevance_check_time / t.slowest_compute_time
            for t in self.timings
            if t.slowest_compute_time > 0
        ]
        if not fractions:
            raise ValueError("no rounds with positive compute time")
        return float(np.mean(fractions))


class ClusterEmulator:
    """Replays federated rounds through network and compute models."""

    def __init__(
        self,
        trainer: FederatedTrainer,
        link: Optional[LinkModel] = None,
        compute: Optional[NodeComputeModel] = None,
        feedback_in_broadcast: bool = True,
    ) -> None:
        self.trainer = trainer
        self.link = link or LinkModel()
        self.compute = compute or NodeComputeModel()
        self.feedback_in_broadcast = feedback_in_broadcast
        self.report = EmulationReport(
            n_clients=len(trainer.clients),
            n_params=trainer.server.n_params,
        )

    def _account(self, kind: MessageKind, count: int = 1) -> int:
        size = message_size(
            kind, self.report.n_params, with_feedback=self.feedback_in_broadcast
        )
        total = size * count
        key = kind.value
        self.report.bytes_by_kind[key] = self.report.bytes_by_kind.get(key, 0) + total
        # Mirror the ledger into the trainer's trace, one counter pair
        # per message kind.  Message counts and sizes are pure functions
        # of the run, so these live in the deterministic namespace; the
        # names are a registered prefix family ("emu.messages.",
        # "emu.bytes." in repro.obs.names.METRIC_PREFIXES), which is
        # what lets these f-strings through the metric-name-registry
        # lint rule.
        metrics = self.trainer.tracer.metrics
        metrics.counter(f"emu.messages.{key}").inc(count)
        metrics.counter(f"emu.bytes.{key}").inc(total)
        return total

    def run_round(self, t: int) -> RoundRecord:
        """Execute one federated round and emulate its cluster timeline."""
        record = self.trainer.run_round(t)
        n_params = self.report.n_params

        broadcast_bytes = self._account(
            MessageKind.MODEL_BROADCAST, count=self.report.n_clients
        )
        # The master serialises broadcasts per slave; slaves receive in
        # parallel, so the barrier cost is one transfer.
        broadcast_time = self.link.transfer_time(
            broadcast_bytes // max(self.report.n_clients, 1)
        )

        compute_times = [
            self.compute.local_training_time(
                c.n_samples, self.trainer.config.local_epochs
            )
            for c in self.trainer.clients
        ]
        check_time = self.compute.relevance_check_time(n_params)

        uploaded = set(record.uploaded_ids)
        upload_times = []
        for client in self.trainer.clients:
            kind = (
                MessageKind.UPDATE
                if client.client_id in uploaded
                else MessageKind.STATUS
            )
            size = self._account(kind)
            upload_times.append(self.link.transfer_time(size))

        timing = RoundTiming(
            iteration=t,
            broadcast_time=broadcast_time,
            slowest_compute_time=max(compute_times) + check_time,
            slowest_upload_time=max(upload_times),
            relevance_check_time=check_time,
        )
        self.report.timings.append(timing)
        self.report.simulated_seconds += timing.total
        # Emulated times are model-derived (not wall clock), hence
        # deterministic attrs rather than rt.
        self.trainer.tracer.event(
            "emu_round",
            attrs={
                "iteration": t,
                "broadcast_time": timing.broadcast_time,
                "slowest_compute_time": timing.slowest_compute_time,
                "slowest_upload_time": timing.slowest_upload_time,
                "relevance_check_time": timing.relevance_check_time,
                "total": timing.total,
            },
        )
        return record

    def run(self, rounds: int) -> EmulationReport:
        """Emulate ``rounds`` synchronous iterations."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        start = len(self.trainer.history) + 1
        for t in range(start, start + rounds):
            self.run_round(t)
        return self.report
