"""Discrete-event master/slave cluster emulation (paper Sec. V-C).

The paper's EC2 deployment measures *network footprint* (uploaded
rounds and bytes), explicitly not wall-clock transfer time; an
event-driven emulation measures the same quantities deterministically.
The emulator wraps a federated trainer with a link model (bandwidth +
latency per node), a compute model (per-sample training cost, per-
parameter relevance-check cost) and byte-level message accounting,
producing the per-round timeline behind Figs. 7a/7b and the
computation-overhead micro-benchmark.
"""

from repro.emu.network import LinkModel, NodeComputeModel
from repro.emu.messages import MessageKind, message_size
from repro.emu.cluster import ClusterEmulator, EmulationReport, RoundTiming

__all__ = [
    "LinkModel",
    "NodeComputeModel",
    "MessageKind",
    "message_size",
    "ClusterEmulator",
    "EmulationReport",
    "RoundTiming",
]
