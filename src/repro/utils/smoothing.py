"""Series smoothing helpers used when reading noisy accuracy curves."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["moving_average", "running_max"]


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Trailing moving average with a warm-up (partial windows at the start).

    The output has the same length as the input; entry ``i`` averages
    ``values[max(0, i - window + 1) : i + 1]``.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("moving_average expects a 1-D sequence")
    if arr.size == 0 or window == 1:
        return arr.copy()
    csum = np.cumsum(arr)
    out = np.empty_like(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def running_max(values: Sequence[float]) -> np.ndarray:
    """Elementwise running maximum (monotone envelope of a curve)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("running_max expects a 1-D sequence")
    return np.maximum.accumulate(arr) if arr.size else arr.copy()
