"""Deterministic random-number plumbing.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``.  Experiments derive independent child
generators from a single root seed so that runs are reproducible yet
components do not share streams.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import numpy as np

__all__ = ["child_rngs", "ensure_rng", "restore_generator", "spawn_seed"]

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed,
    or an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def child_rngs(rng: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are spawned through ``SeedSequence`` so their streams do not
    overlap regardless of how many draws each consumer makes.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=2)
    sequence = np.random.SeedSequence(entropy=[int(s) for s in seeds])
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


def spawn_seed(rng: RngLike) -> int:
    """Draw a fresh 63-bit seed from ``rng`` (for handing to subprocesses)."""
    return int(ensure_rng(rng).integers(0, 2**63 - 1))


def restore_generator(state: Dict[str, Any]) -> np.random.Generator:
    """Rebuild a ``Generator`` from a ``bit_generator.state`` snapshot.

    The snapshot (``gen.bit_generator.state``) is a plain JSON-safe dict
    naming the bit-generator class and its counter state; this is how
    checkpoints and the process executor move RNG stream positions
    between processes without pickling generator objects.
    """
    name = state.get("bit_generator")
    bit_cls = getattr(np.random, str(name), None)
    if bit_cls is None or not isinstance(name, str):
        raise ValueError(f"unknown bit generator {name!r} in RNG state")
    gen = np.random.Generator(bit_cls())
    gen.bit_generator.state = state
    return gen
