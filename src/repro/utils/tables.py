"""ASCII table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report;
this module keeps that rendering in one place.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["format_table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
