"""Crash-safe artifact writes: tmp file + fsync + atomic rename.

A bare ``open(path, "w")`` truncates its target the moment it opens, so
a process killed mid-write (or mid-flush) leaves a half-written file
behind — a silently poisoned run history, trace or benchmark baseline.
:func:`atomic_write` closes that window: content goes to a temporary
file in the same directory, is fsynced to stable storage, and only then
renamed over the target with ``os.replace``.  Readers therefore observe
either the complete old content or the complete new content, never a
mix; a crash at any point leaves the target untouched.

This module is the single place in the library allowed to open files
for writing directly (enforced by the ``no-bare-artifact-write`` lint
rule); everything else routes one-shot artifact writes through here.
Streaming writers (``repro.obs.sinks.JsonlSink``) are the exception —
they append line-oriented events to their final path and use
:func:`fsync_file` at flush points instead.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_file",
]

PathLike = Union[str, Path]

_ALLOWED_MODES = ("w", "wb")


def fsync_file(fh: IO) -> None:
    """Flush Python and OS buffers of an open file to stable storage."""
    fh.flush()
    os.fsync(fh.fileno())


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: PathLike, mode: str = "w") -> Iterator[IO]:
    """Context manager yielding a handle whose content replaces ``path``.

    The handle writes to a temporary file next to the target; on clean
    exit it is fsynced and atomically renamed over ``path`` (and the
    directory entry fsynced).  On any exception the temporary file is
    removed and the target is left exactly as it was.  ``mode`` must be
    ``"w"`` (text, UTF-8) or ``"wb"``.
    """
    if mode not in _ALLOWED_MODES:
        raise ValueError(
            f"mode must be one of {_ALLOWED_MODES} (whole-file replacement "
            f"only), got {mode!r}"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        encoding = None if "b" in mode else "utf-8"
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
            fsync_file(fh)
        os.replace(tmp, target)
        _fsync_dir(target.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    with atomic_write(path, "w") as fh:
        fh.write(text)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_write(path, "wb") as fh:
        fh.write(data)
