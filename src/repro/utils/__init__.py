"""Small shared utilities: seeded RNG plumbing, tables, smoothing, atomic I/O."""

from repro.utils.atomic_io import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    fsync_file,
)
from repro.utils.rng import child_rngs, ensure_rng, restore_generator, spawn_seed
from repro.utils.tables import format_table
from repro.utils.smoothing import moving_average

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_file",
    "child_rngs",
    "ensure_rng",
    "restore_generator",
    "spawn_seed",
    "format_table",
    "moving_average",
]
