"""Small shared utilities: seeded RNG plumbing, tables, smoothing."""

from repro.utils.rng import child_rngs, ensure_rng, spawn_seed
from repro.utils.tables import format_table
from repro.utils.smoothing import moving_average

__all__ = [
    "child_rngs",
    "ensure_rng",
    "spawn_seed",
    "format_table",
    "moving_average",
]
