"""Terminal line plots for experiment curves.

Matplotlib is not a dependency of this library, so the accuracy-vs-
rounds curves of Figs. 4/5/7 render as character rasters: good enough
to see crossovers and stalls directly in a benchmark report.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets its own marker; a legend follows the plot.  Axes
    are linear and shared across series.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("plot too small to be legible")
    cleaned = {}
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=float).reshape(-1)
        ys = np.asarray(ys, dtype=float).reshape(-1)
        if xs.size != ys.size or xs.size == 0:
            raise ValueError(f"series {name!r} is empty or misaligned")
        cleaned[name] = (xs, ys)

    all_x = np.concatenate([xs for xs, _ in cleaned.values()])
    all_y = np.concatenate([ys for _, ys in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, (xs, ys)) in enumerate(cleaned.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        cols = np.clip(((xs - x_lo) / x_span * (width - 1)).round(), 0,
                       width - 1).astype(int)
        rows = np.clip(((ys - y_lo) / y_span * (height - 1)).round(), 0,
                       height - 1).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = [f"{y_hi:>10.3g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:>10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<.3g}".ljust(width - 8) + f"{x_hi:>.3g}")
    lines.append(" " * 12 + f"({x_label} vs {y_label})")
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]} {name}"
        for k, name in enumerate(cleaned)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
