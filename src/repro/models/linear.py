"""Linear models: logistic regression for MTL tasks and convex analyses."""

from __future__ import annotations

from repro.nn.layers.dense import Dense
from repro.nn.module import Sequential
from repro.utils.rng import RngLike

__all__ = ["make_logistic_regression"]


def make_logistic_regression(
    n_features: int, rng: RngLike = None, zero_init: bool = False
) -> Sequential:
    """Single-logit linear classifier (pair with SigmoidBinaryCrossEntropy).

    ``zero_init`` starts from the origin, the conventional choice for
    convex convergence experiments.
    """
    layer = Dense(
        n_features,
        1,
        rng=rng,
        weight_init="zeros" if zero_init else "glorot_uniform",
        name="logreg",
    )
    return Sequential([layer])
