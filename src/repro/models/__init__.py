"""Ready-made model architectures matching the paper's workloads."""

from repro.models.digits_cnn import make_digits_cnn
from repro.models.nwp_lstm import make_nwp_lstm
from repro.models.linear import make_logistic_regression

__all__ = ["make_digits_cnn", "make_nwp_lstm", "make_logistic_regression"]
