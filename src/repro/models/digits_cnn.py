"""The paper's MNIST CNN (Sec. V-A workload 1).

Two 5x5 convolution layers (each followed by ReLU and 2x2 max pooling),
a fully connected layer and an output layer, per LeCun et al.'s classic
architecture.  Channel and hidden widths are configurable so the
default stays laptop-fast; pass larger values for paper-scale runs.
"""

from __future__ import annotations

from typing import Tuple

from repro.nn.activations import ReLU
from repro.nn.layers.conv import Conv2D, MaxPool2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.reshape import Flatten
from repro.nn.module import Sequential
from repro.utils.rng import RngLike, child_rngs

__all__ = ["make_digits_cnn"]


def make_digits_cnn(
    image_size: int = 28,
    n_classes: int = 10,
    channels: Tuple[int, int] = (8, 16),
    hidden: int = 64,
    rng: RngLike = None,
) -> Sequential:
    """Build the two-conv-layer digit CNN.

    The spatial pipeline for a 28x28 input: 5x5 valid conv -> 24,
    2x2 pool -> 12, 5x5 valid conv -> 8, 2x2 pool -> 4, then flatten.
    """
    c1, c2 = channels
    rngs = child_rngs(rng, 4)
    after_conv1 = image_size - 4
    if after_conv1 % 2:
        raise ValueError(f"image_size {image_size} breaks the 2x2 pooling grid")
    after_pool1 = after_conv1 // 2
    after_conv2 = after_pool1 - 4
    if after_conv2 < 2 or after_conv2 % 2:
        raise ValueError(f"image_size {image_size} too small for two conv+pool stages")
    after_pool2 = after_conv2 // 2
    flat_features = c2 * after_pool2 * after_pool2
    return Sequential(
        [
            Conv2D(1, c1, kernel_size=5, rng=rngs[0], name="conv1"),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, kernel_size=5, rng=rngs[1], name="conv2"),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(flat_features, hidden, rng=rngs[2], name="fc1"),
            ReLU(),
            Dense(hidden, n_classes, rng=rngs[3], name="out"),
        ]
    )
