"""The paper's next-word-prediction LSTM (Sec. V-A workload 2).

A word-level 2-layer LSTM language model: after reading a fixed-length
word window it predicts the next word.  The paper uses 256 units per
layer; the default here is smaller for laptop-scale runs and fully
configurable.
"""

from __future__ import annotations

from repro.nn.layers.dense import Dense
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.recurrent import LSTM
from repro.nn.module import Sequential
from repro.utils.rng import RngLike, child_rngs

__all__ = ["make_nwp_lstm"]


def make_nwp_lstm(
    vocab_size: int,
    embedding_dim: int = 16,
    hidden: int = 32,
    n_layers: int = 2,
    rng: RngLike = None,
) -> Sequential:
    """Build the embedding -> stacked LSTM -> softmax-logits model."""
    if n_layers < 1:
        raise ValueError("n_layers must be >= 1")
    rngs = child_rngs(rng, n_layers + 2)
    layers = [Embedding(vocab_size, embedding_dim, rng=rngs[0])]
    in_size = embedding_dim
    for i in range(n_layers):
        last = i == n_layers - 1
        layers.append(
            LSTM(
                in_size,
                hidden,
                rng=rngs[1 + i],
                return_sequences=not last,
                name=f"lstm{i + 1}",
            )
        )
        in_size = hidden
    layers.append(Dense(hidden, vocab_size, rng=rngs[-1], name="out"))
    return Sequential(layers)
