"""Token vocabulary with stable integer ids."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["Vocabulary"]


class Vocabulary:
    """Bidirectional token <-> id map.

    Id 0 is reserved for the out-of-vocabulary token ``<unk>``.
    """

    UNK = "<unk>"

    def __init__(self, tokens: Iterable[str]) -> None:
        self._id_to_token: List[str] = [self.UNK]
        self._token_to_id: Dict[str, int] = {self.UNK: 0}
        for tok in tokens:
            if tok not in self._token_to_id:
                self._token_to_id[tok] = len(self._id_to_token)
                self._id_to_token.append(tok)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        """Token strings -> id array; unknown tokens map to ``<unk>``."""
        return np.asarray(
            [self._token_to_id.get(t, 0) for t in tokens], dtype=np.int64
        )

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Id array -> token strings."""
        out = []
        for i in ids:
            if not 0 <= int(i) < len(self._id_to_token):
                raise ValueError(f"id {i} out of range")
            out.append(self._id_to_token[int(i)])
        return out

    def id_of(self, token: str) -> int:
        """Id of ``token`` (0 if unknown)."""
        return self._token_to_id.get(token, 0)

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"
