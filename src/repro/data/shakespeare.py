"""Synthetic role-based dialogue corpus (Shakespeare stand-in).

The paper builds its next-word-prediction dataset from Shakespeare's
plays, one speaking role per client, which makes each client's word
distribution heavily role-specific.  This module reproduces that
structure synthetically:

- a shared vocabulary of real English *function* words plus
  syllable-generated pseudo-English *content* words grouped into topics;
- each role draws a sparse Dirichlet mixture over topics, so roles talk
  about different things (the non-IID axis);
- sentences interleave Zipf-distributed function words with
  topic-conditioned content words, and each content word has a
  preferred successor, giving the LSTM a learnable bigram structure.

Samples are 10-token windows predicting the following token, exactly
the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.dataset import Dataset
from repro.data.vocab import Vocabulary
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["DialogueCorpus", "make_dialogue_corpus"]

FUNCTION_WORDS = [
    "the", "and", "to", "of", "i", "you", "my", "a", "that", "in",
    "is", "not", "me", "it", "for", "with", "be", "your", "this", "his",
    "but", "he", "have", "as", "thou", "him", "so", "will", "what", "thy",
    "all", "her", "no", "by", "do", "shall", "if", "are", "we", "thee",
    "on", "lord", "our", "king", "good", "now", "sir", "from", "come", "at",
]

EOS = "<eos>"

_ONSETS = ["b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j",
           "k", "l", "m", "n", "p", "pr", "qu", "r", "s", "st", "t", "tr",
           "v", "w", "wh", "y"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "ee", "oa", "ou"]
_CODAS = ["", "d", "ght", "l", "ll", "m", "n", "nd", "r", "rd", "s", "st",
          "t", "th", "ve"]


def _pseudo_word(gen: np.random.Generator, n_syllables: int) -> str:
    parts = []
    for _ in range(n_syllables):
        parts.append(gen.choice(_ONSETS))
        parts.append(gen.choice(_NUCLEI))
    parts.append(gen.choice(_CODAS))
    return "".join(parts)


def _zipf_weights(n: int, exponent: float = 1.1) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks**-exponent
    return w / w.sum()


@dataclass
class DialogueCorpus:
    """A generated corpus ready for federated next-word prediction.

    ``sequences`` holds ``(n, seq_len)`` token-id windows, ``next_words``
    the token to predict, and ``roles`` the speaking-role (= client) id
    of each window.
    """

    vocab: Vocabulary
    sequences: np.ndarray
    next_words: np.ndarray
    roles: np.ndarray
    seq_len: int

    @property
    def n_roles(self) -> int:
        return int(self.roles.max()) + 1

    def as_dataset(self) -> Dataset:
        return Dataset(self.sequences, self.next_words)

    def role_dataset(self, role: int) -> Dataset:
        idx = np.flatnonzero(self.roles == role)
        if idx.size == 0:
            raise ValueError(f"role {role} has no samples")
        return Dataset(self.sequences[idx], self.next_words[idx])


def make_dialogue_corpus(
    n_roles: int = 100,
    words_per_role: int = 120,
    n_topics: int = 12,
    words_per_topic: int = 40,
    seq_len: int = 10,
    topic_alpha: float = 0.25,
    bigram_strength: float = 0.7,
    function_word_prob: float = 0.35,
    rng: RngLike = None,
) -> DialogueCorpus:
    """Generate a role-partitioned dialogue corpus.

    ``words_per_role`` is the approximate length of each role's token
    stream; it must exceed ``seq_len`` so every role yields at least one
    training window (the paper keeps roles with >= 20 words).
    ``bigram_strength`` is the probability of following a content word's
    preferred successor -- the learnable signal a next-word predictor
    exploits; ``function_word_prob`` the share of shared function words.
    """
    if not 0.0 <= bigram_strength <= 1.0:
        raise ValueError("bigram_strength must be in [0, 1]")
    if not 0.0 <= function_word_prob < 1.0:
        raise ValueError("function_word_prob must be in [0, 1)")
    if n_roles < 1 or n_topics < 1 or words_per_topic < 2:
        raise ValueError("invalid corpus configuration")
    if words_per_role <= seq_len:
        raise ValueError(
            f"words_per_role ({words_per_role}) must exceed seq_len ({seq_len})"
        )
    gen = ensure_rng(rng)

    # --- vocabulary -----------------------------------------------------
    content_words: List[List[str]] = []
    seen = set(FUNCTION_WORDS)
    for _ in range(n_topics):
        topic_words: List[str] = []
        while len(topic_words) < words_per_topic:
            w = _pseudo_word(gen, int(gen.integers(1, 3)))
            if w not in seen:
                seen.add(w)
                topic_words.append(w)
        content_words.append(topic_words)
    all_tokens = [EOS] + FUNCTION_WORDS + [w for t in content_words for w in t]
    vocab = Vocabulary(all_tokens)

    func_ids = vocab.encode(FUNCTION_WORDS)
    func_weights = _zipf_weights(len(func_ids))
    topic_ids = [vocab.encode(t) for t in content_words]
    topic_weights = [_zipf_weights(len(t)) for t in topic_ids]
    eos_id = vocab.id_of(EOS)

    # Each content word prefers a fixed successor within its topic: the
    # learnable bigram signal.
    successor = {}
    for ids in topic_ids:
        shifted = np.roll(ids, -1)
        for a, b in zip(ids, shifted):
            successor[int(a)] = int(b)

    # --- per-role generation --------------------------------------------
    sequences: List[np.ndarray] = []
    next_words: List[int] = []
    roles: List[int] = []
    for role in range(n_roles):
        mixture = gen.dirichlet(np.full(n_topics, topic_alpha))
        stream: List[int] = []
        pending_successor: int | None = None
        while len(stream) < words_per_role:
            sentence_len = int(gen.integers(6, 15))
            for _ in range(sentence_len):
                if pending_successor is not None and gen.random() < bigram_strength:
                    stream.append(pending_successor)
                    pending_successor = successor.get(pending_successor)
                    continue
                if gen.random() < function_word_prob:
                    stream.append(int(gen.choice(func_ids, p=func_weights)))
                    pending_successor = None
                else:
                    topic = int(gen.choice(n_topics, p=mixture))
                    word = int(
                        gen.choice(topic_ids[topic], p=topic_weights[topic])
                    )
                    stream.append(word)
                    pending_successor = successor.get(word)
            stream.append(eos_id)
            pending_successor = None
        tokens = np.asarray(stream, dtype=np.int64)
        for start in range(0, tokens.size - seq_len):
            sequences.append(tokens[start : start + seq_len])
            next_words.append(int(tokens[start + seq_len]))
            roles.append(role)

    return DialogueCorpus(
        vocab=vocab,
        sequences=np.stack(sequences),
        next_words=np.asarray(next_words, dtype=np.int64),
        roles=np.asarray(roles, dtype=np.int64),
        seq_len=seq_len,
    )
