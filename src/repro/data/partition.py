"""Client partitioners.

The paper's non-IID MNIST split sorts samples by label and hands each of
the 100 clients one contiguous 600-sample slice, so most clients see one
or two digit classes only (:func:`label_shard_partition` with
``shards_per_client=1``).  Dirichlet and IID partitioners are provided
for ablations, and :func:`group_partition` implements the
one-role-per-client Shakespeare split.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "dirichlet_partition",
    "group_partition",
    "iid_partition",
    "label_shard_partition",
]


def _validate(n_items: int, n_clients: int) -> None:
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    if n_items < n_clients:
        raise ValueError(
            f"cannot split {n_items} samples across {n_clients} clients"
        )


def iid_partition(
    n_samples: int, n_clients: int, rng: RngLike = None
) -> List[np.ndarray]:
    """Uniformly random, near-equal-size partition."""
    _validate(n_samples, n_clients)
    order = np.arange(n_samples)
    ensure_rng(rng).shuffle(order)
    return [np.sort(part) for part in np.array_split(order, n_clients)]


def label_shard_partition(
    labels: Sequence[int],
    n_clients: int,
    shards_per_client: int = 1,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Sort-by-label shard split (the paper's pathological non-IID MNIST split).

    Samples are sorted by label, cut into ``n_clients * shards_per_client``
    contiguous shards, and each client receives ``shards_per_client``
    randomly chosen shards.
    """
    labels = np.asarray(labels)
    _validate(labels.size, n_clients)
    if shards_per_client < 1:
        raise ValueError("shards_per_client must be >= 1")
    n_shards = n_clients * shards_per_client
    if labels.size < n_shards:
        raise ValueError(
            f"{labels.size} samples cannot form {n_shards} shards"
        )
    sorted_idx = np.argsort(labels, kind="stable")
    shards = np.array_split(sorted_idx, n_shards)
    order = np.arange(n_shards)
    ensure_rng(rng).shuffle(order)
    parts: List[np.ndarray] = []
    for c in range(n_clients):
        mine = order[c * shards_per_client : (c + 1) * shards_per_client]
        parts.append(np.sort(np.concatenate([shards[s] for s in mine])))
    return parts


def dirichlet_partition(
    labels: Sequence[int],
    n_clients: int,
    alpha: float = 0.5,
    rng: RngLike = None,
    min_samples: int = 1,
) -> List[np.ndarray]:
    """Dirichlet(alpha) label-skew partition; smaller alpha = more skew.

    Retries until every client holds at least ``min_samples`` samples.
    """
    labels = np.asarray(labels)
    _validate(labels.size, n_clients)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    gen = ensure_rng(rng)
    classes = np.unique(labels)
    for _ in range(100):
        buckets: List[List[int]] = [[] for _ in range(n_clients)]
        for cls in classes:
            idx = np.flatnonzero(labels == cls)
            gen.shuffle(idx)
            props = gen.dirichlet(np.full(n_clients, alpha))
            cuts = (np.cumsum(props) * idx.size).astype(int)[:-1]
            for client, chunk in enumerate(np.split(idx, cuts)):
                buckets[client].extend(chunk.tolist())
        if all(len(b) >= min_samples for b in buckets):
            return [np.sort(np.asarray(b, dtype=int)) for b in buckets]
    raise RuntimeError(
        "dirichlet_partition failed to give every client "
        f">= {min_samples} samples after 100 attempts"
    )


def group_partition(groups: Sequence[int]) -> List[np.ndarray]:
    """One client per distinct group id (e.g. one Shakespeare role each)."""
    groups = np.asarray(groups)
    if groups.size == 0:
        raise ValueError("groups cannot be empty")
    return [np.flatnonzero(groups == g) for g in np.unique(groups)]
