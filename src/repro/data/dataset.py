"""A minimal in-memory dataset with deterministic batching."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Dataset", "train_test_split"]


class Dataset:
    """Paired arrays ``x`` (features) and ``y`` (targets) of equal length."""

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"x has {len(x)} rows but y has {len(y)}")
        if len(x) == 0:
            raise ValueError("dataset cannot be empty")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """New dataset restricted to ``indices`` (copies the slices)."""
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise ValueError("cannot build an empty subset")
        return Dataset(self.x[idx].copy(), self.y[idx].copy())

    def batches(
        self, batch_size: int, rng: RngLike = None, shuffle: bool = True
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(x, y)`` minibatches covering the dataset once.

        The final batch may be smaller than ``batch_size``.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            ensure_rng(rng).shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]

    def __repr__(self) -> str:
        return f"Dataset(n={len(self)}, x_shape={self.x.shape[1:]})"


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng: RngLike = None
) -> Tuple[Dataset, Dataset]:
    """Random split into (train, test); both parts are non-empty."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(dataset)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("dataset too small to split")
    order = np.arange(n)
    ensure_rng(rng).shuffle(order)
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])
