"""Procedurally rendered handwritten-digit stand-in for MNIST.

Each digit 0-9 has a 7x5 stroke bitmap (a classic seven-segment-style
glyph font).  A sample is produced by upscaling the glyph, applying a
random rotation, shift and intensity jitter, and adding pixel noise --
enough within-class variation that the paper's CNN has something to
learn, while the between-class structure keeps the task solvable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["binarize_images", "make_digit_dataset", "render_digit"]

# 7 rows x 5 columns stroke bitmaps for digits 0..9.
_GLYPHS_RAW = [
    # 0
    ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    # 1
    ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    # 2
    ["01110", "10001", "00001", "00110", "01000", "10000", "11111"],
    # 3
    ["11110", "00001", "00001", "01110", "00001", "00001", "11110"],
    # 4
    ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    # 5
    ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    # 6
    ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    # 7
    ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    # 8
    ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    # 9
    ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
]

GLYPHS = np.array(
    [[[int(ch) for ch in row] for row in glyph] for glyph in _GLYPHS_RAW],
    dtype=float,
)

N_CLASSES = 10


def render_digit(
    digit: int,
    rng: RngLike = None,
    image_size: int = 28,
    max_rotation_deg: float = 10.0,
    max_shift: int = 2,
    noise_std: float = 0.05,
) -> np.ndarray:
    """Render one ``(image_size, image_size)`` sample of ``digit`` in [0, 1]."""
    if not 0 <= digit < N_CLASSES:
        raise ValueError(f"digit must be in [0, {N_CLASSES}), got {digit}")
    if image_size < 16:
        raise ValueError("image_size must be >= 16")
    gen = ensure_rng(rng)

    scale = max(1, (image_size - 2 * max_shift - 2) // 7)
    glyph = np.kron(GLYPHS[digit], np.ones((scale, scale)))
    # Slight stroke-weight variation.
    glyph = ndimage.gaussian_filter(glyph, sigma=gen.uniform(0.4, 0.9))

    canvas = np.zeros((image_size, image_size))
    gh, gw = glyph.shape
    top = (image_size - gh) // 2
    left = (image_size - gw) // 2
    canvas[top : top + gh, left : left + gw] = glyph

    angle = gen.uniform(-max_rotation_deg, max_rotation_deg)
    canvas = ndimage.rotate(canvas, angle, reshape=False, order=1, mode="constant")
    shift = gen.integers(-max_shift, max_shift + 1, size=2)
    canvas = ndimage.shift(canvas, shift, order=1, mode="constant")

    canvas *= gen.uniform(0.8, 1.2)
    canvas += gen.normal(0.0, noise_std, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def make_digit_dataset(
    n_samples: int,
    rng: RngLike = None,
    image_size: int = 28,
    flat: bool = False,
    class_balance: bool = True,
) -> Dataset:
    """Generate a digit dataset.

    Images have shape ``(1, image_size, image_size)`` (NCHW single
    channel), or ``(image_size**2,)`` with ``flat=True``.  Labels are
    the digits 0-9.  ``class_balance=True`` cycles classes so counts
    differ by at most one.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    gen = ensure_rng(rng)
    if class_balance:
        labels = np.arange(n_samples) % N_CLASSES
        gen.shuffle(labels)
    else:
        labels = gen.integers(0, N_CLASSES, size=n_samples)
    images = np.stack(
        [render_digit(int(d), gen, image_size=image_size) for d in labels]
    )
    if flat:
        x = images.reshape(n_samples, -1)
    else:
        x = images[:, None, :, :]
    return Dataset(x, labels.astype(np.int64))


def binarize_images(images: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Threshold grayscale images to {0, 1} (Semeion-style features)."""
    return (np.asarray(images) >= threshold).astype(float)
