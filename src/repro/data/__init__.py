"""Synthetic datasets and partitioners.

Real MNIST / Shakespeare / UCI downloads are unavailable offline, so
each dataset here is a synthetic equivalent engineered to preserve the
property the paper's evaluation depends on: heavy client-specific
(non-IID) skew on top of a learnable shared structure.  See DESIGN.md
section 2 for the substitution rationale.
"""

from repro.data.dataset import Dataset, train_test_split
from repro.data.partition import (
    dirichlet_partition,
    group_partition,
    iid_partition,
    label_shard_partition,
)
from repro.data.synthetic_digits import make_digit_dataset
from repro.data.shakespeare import make_dialogue_corpus
from repro.data.har import make_har_tasks
from repro.data.semeion import make_semeion_tasks
from repro.data.vocab import Vocabulary

__all__ = [
    "Dataset",
    "train_test_split",
    "iid_partition",
    "label_shard_partition",
    "dirichlet_partition",
    "group_partition",
    "make_digit_dataset",
    "make_dialogue_corpus",
    "make_har_tasks",
    "make_semeion_tasks",
    "Vocabulary",
]
