"""Synthetic Semeion handwritten-digit tasks.

The Semeion dataset is 1593 handwritten digits scanned to 16x16 binary
images; the paper predicts *zero vs. every other digit* across 15
clients holding 10-200 samples each.  We reuse the procedural digit
renderer at 16x16, binarise, and give each client a personal writing
style (a per-client rotation bias) so the multi-task structure is real.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset
from repro.data.har import TaskData
from repro.data.synthetic_digits import binarize_images, render_digit
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["make_semeion_tasks"]


def make_semeion_tasks(
    n_clients: int = 15,
    total_samples: int = 1593,
    min_samples: int = 10,
    max_samples: int = 200,
    positive_fraction: float = 0.5,
    outlier_fraction: float = 0.2,
    label_flip_fraction: float = 0.5,
    test_fraction: float = 0.25,
    image_size: int = 16,
    rng: RngLike = None,
) -> List[TaskData]:
    """Generate per-client Semeion-like binary tasks (is the digit a 0?).

    Client sample counts are drawn in ``[min_samples, max_samples]`` and
    rescaled to sum to ``total_samples``.  Each client's digits share a
    style bias (a fixed rotation offset), making tasks related but
    distinct -- the regime MOCHA targets.  A fraction of clients are
    outliers whose *training* labels carry heavy flip noise (their test
    labels stay clean), mirroring the HAR generator.
    """
    if n_clients < 1:
        raise ValueError("need at least 1 client")
    if not 0.0 < positive_fraction < 1.0:
        raise ValueError("positive_fraction must be in (0, 1)")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    gen = ensure_rng(rng)

    raw_counts = gen.integers(min_samples, max_samples + 1, size=n_clients)
    counts = np.maximum(
        min_samples, (raw_counts / raw_counts.sum() * total_samples).astype(int)
    )
    n_outliers = int(round(outlier_fraction * n_clients))
    outlier_flags = np.zeros(n_clients, dtype=bool)
    if n_outliers:
        outlier_flags[gen.choice(n_clients, size=n_outliers, replace=False)] = True

    tasks: List[TaskData] = []
    for client in range(n_clients):
        n = int(counts[client])
        n_test = max(2, int(round(n * test_fraction)))
        total = n + n_test
        style_rotation = float(gen.uniform(-20.0, 20.0))

        labels = (gen.random(total) < positive_fraction).astype(np.int64)
        images = []
        for is_zero in labels:
            digit = 0 if is_zero else int(gen.integers(1, 10))
            img = render_digit(
                digit, gen, image_size=image_size, max_rotation_deg=8.0, max_shift=1
            )
            img = ndimage.rotate(
                img, style_rotation, reshape=False, order=1, mode="constant"
            )
            images.append(img)
        x = binarize_images(np.stack(images), threshold=0.45).reshape(total, -1)
        y_train = labels[:n].copy()
        if outlier_flags[client] and label_flip_fraction > 0:
            flip = gen.random(n) < label_flip_fraction
            y_train[flip] = 1 - y_train[flip]
        tasks.append(
            TaskData(
                train=Dataset(x[:n], y_train),
                test=Dataset(x[n:], labels[n:]),
                is_outlier=bool(outlier_flags[client]),
            )
        )
    return tasks
