"""Synthetic Human-Activity-Recognition tasks (UCI HAR stand-in).

The paper's MTL experiment predicts *sitting vs. every other activity*
from 561 accelerometer features, with 142 clients holding 10-100
samples each.  We generate a Gaussian-prototype equivalent: a global
direction separates the two classes, every client perturbs it slightly
(task heterogeneity), and a configurable fraction of clients are
*outliers* whose class direction is strongly rotated -- the population
whose updates CMFL ends up filtering (paper Fig. 6 finds 37/142 such
clients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["TaskData", "make_har_tasks", "stack_tests"]


@dataclass
class TaskData:
    """One client's (train, test) split plus its ground-truth outlier flag."""

    train: Dataset
    test: Dataset
    is_outlier: bool


def _unit(v: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(v)
    if norm == 0:
        raise ValueError("zero vector cannot be normalised")
    return v / norm


def _make_binary_task(
    gen: np.random.Generator,
    prototype: np.ndarray,
    n_samples: int,
    noise_std: float,
    test_fraction: float,
    is_outlier: bool,
    label_flip_fraction: float,
) -> TaskData:
    n_features = prototype.size
    n_test = max(2, int(round(n_samples * test_fraction)))
    total = n_samples + n_test
    y = (np.arange(total) % 2).astype(np.int64)
    gen.shuffle(y)
    signs = np.where(y == 1, 1.0, -1.0)
    x = signs[:, None] * prototype[None, :] / 2.0
    x += gen.normal(0.0, noise_std, size=(total, n_features))
    y_train = y[:n_samples].copy()
    if is_outlier and label_flip_fraction > 0:
        # Outlier clients have corrupted *training* labels (a faulty
        # labelling pipeline); their test data follows the population
        # distribution, so a clean consensus model serves them too.
        flip = gen.random(n_samples) < label_flip_fraction
        y_train[flip] = 1 - y_train[flip]
    return TaskData(
        train=Dataset(x[:n_samples], y_train),
        test=Dataset(x[n_samples:], y[n_samples:]),
        is_outlier=is_outlier,
    )


def make_har_tasks(
    n_clients: int = 142,
    n_features: int = 561,
    outlier_fraction: float = 0.26,
    min_samples: int = 10,
    max_samples: int = 100,
    noise_std: float = 1.0,
    client_shift_std: float = 0.25,
    label_flip_fraction: float = 0.5,
    informative_fraction: float = 1.0,
    test_fraction: float = 0.25,
    rng: RngLike = None,
) -> List[TaskData]:
    """Generate the per-client HAR-like binary tasks.

    All clients share the global class direction up to a small
    perturbation, but *outlier* clients train on labels corrupted with
    ``label_flip_fraction`` flips: their local optimisations point away
    from the federation (low CMFL relevance) while their clean test data
    still follows the population distribution.
    """
    if n_clients < 2:
        raise ValueError("need at least 2 clients")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    if min_samples < 4 or max_samples < min_samples:
        raise ValueError("invalid sample range")
    if not 0.0 < informative_fraction <= 1.0:
        raise ValueError("informative_fraction must be in (0, 1]")
    gen = ensure_rng(rng)

    # Global class direction, spread over a configurable fraction of the
    # features (real accelerometer statistics are widely correlated).
    n_informative = max(8, int(round(informative_fraction * n_features)))
    informative = gen.choice(n_features, size=min(n_informative, n_features),
                             replace=False)
    mu = np.zeros(n_features)
    mu[informative] = gen.normal(0.0, 1.0, size=informative.size)
    mu = _unit(mu) * 2.0

    n_outliers = int(round(outlier_fraction * n_clients))
    outlier_flags = np.zeros(n_clients, dtype=bool)
    outlier_flags[gen.choice(n_clients, size=n_outliers, replace=False)] = True

    tasks: List[TaskData] = []
    for client in range(n_clients):
        shift = gen.normal(0.0, client_shift_std, size=n_features)
        prototype = mu + shift
        n_samples = int(gen.integers(min_samples, max_samples + 1))
        tasks.append(
            _make_binary_task(
                gen,
                prototype,
                n_samples,
                noise_std,
                test_fraction,
                bool(outlier_flags[client]),
                label_flip_fraction,
            )
        )
    return tasks


def stack_tests(tasks: List[TaskData]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate every task's test split (global evaluation pool)."""
    if not tasks:
        raise ValueError("tasks is empty")
    x = np.concatenate([t.test.x for t in tasks])
    y = np.concatenate([t.test.y for t in tasks])
    return x, y
