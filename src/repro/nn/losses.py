"""Loss functions with fused, numerically stable gradients.

Each loss exposes ``forward(predictions, targets) -> float`` (mean loss
over the batch) and ``backward() -> grad`` w.r.t. the predictions.  The
softmax/sigmoid are fused into the cross-entropy losses so the gradient
is the plain ``probabilities - onehot`` form.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid, softmax
from repro.nn.module import BatchedUnsupported

__all__ = [
    "BatchedLoss",
    "BatchedMeanSquaredError",
    "BatchedSigmoidBinaryCrossEntropy",
    "BatchedSoftmaxCrossEntropy",
    "Loss",
    "MeanSquaredError",
    "SigmoidBinaryCrossEntropy",
    "SoftmaxCrossEntropy",
]


class Loss:
    """Base class: call ``forward`` then ``backward`` once per step."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def batched(self) -> "BatchedLoss":
        """Build this loss's batched-leading-axis counterpart.

        Losses without one raise
        :class:`~repro.nn.module.BatchedUnsupported`, which the batched
        executor treats as "fall back to the per-client path".
        """
        raise BatchedUnsupported(
            f"{type(self).__name__} has no batched counterpart"
        )

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class BatchedLoss:
    """Per-client loss over stacked predictions.

    ``forward`` takes ``(clients, batch, ...)`` predictions/targets and
    returns a ``(clients,)`` float64 vector whose every entry is
    bitwise equal to the serial loss on that client's slice — each
    client's mean reduces over its own contiguous row, never across the
    client axis.  ``backward`` returns the stacked prediction gradient,
    scaled per client by that client's element count exactly as the
    serial loss scales by ``targets.size``.
    """

    def forward(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Multi-class cross-entropy over logits with integer class targets.

    ``predictions``: logits ``(batch, classes)``;
    ``targets``: integer labels ``(batch,)``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets)
        if predictions.ndim != 2:
            raise ValueError(f"expected 2-D logits, got shape {predictions.shape}")
        if targets.shape != (predictions.shape[0],):
            raise ValueError(
                f"targets shape {targets.shape} does not match batch "
                f"{predictions.shape[0]}"
            )
        if not np.issubdtype(targets.dtype, np.integer):
            raise TypeError("SoftmaxCrossEntropy expects integer class targets")
        self._probs = softmax(predictions, axis=1)
        self._targets = targets
        picked = self._probs[np.arange(targets.size), targets]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(self._targets.size), self._targets] -= 1.0
        return grad / self._targets.size

    def batched(self) -> "BatchedSoftmaxCrossEntropy":
        return BatchedSoftmaxCrossEntropy()


class BatchedSoftmaxCrossEntropy(BatchedLoss):
    """Counterpart of :class:`SoftmaxCrossEntropy` over ``(C, batch,
    classes)`` logits and ``(C, batch)`` integer targets."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        targets = np.asarray(targets)
        if predictions.ndim != 3:
            raise ValueError(
                f"expected 3-D stacked logits, got shape {predictions.shape}"
            )
        if targets.shape != predictions.shape[:2]:
            raise ValueError(
                f"targets shape {targets.shape} does not match stacked "
                f"batch {predictions.shape[:2]}"
            )
        if not np.issubdtype(targets.dtype, np.integer):
            raise TypeError("SoftmaxCrossEntropy expects integer class targets")
        self._probs = softmax(predictions, axis=2)
        self._targets = targets
        c, n = targets.shape
        picked = self._probs[
            np.arange(c)[:, None], np.arange(n)[None, :], targets
        ]
        return -np.mean(np.log(np.clip(picked, 1e-12, None)), axis=1)

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        c, n = self._targets.shape
        grad = self._probs.copy()
        grad[
            np.arange(c)[:, None], np.arange(n)[None, :], self._targets
        ] -= 1.0
        return grad / n


class SigmoidBinaryCrossEntropy(Loss):
    """Binary cross-entropy over a single logit per example.

    ``predictions``: logits ``(batch,)`` or ``(batch, 1)``;
    ``targets``: labels in {0, 1} of matching shape.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._shape: tuple | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        self._shape = predictions.shape
        logits = predictions.reshape(-1)
        targets = np.asarray(targets, dtype=float).reshape(-1)
        if logits.shape != targets.shape:
            raise ValueError(
                f"predictions {predictions.shape} and targets do not align"
            )
        # log(1 + exp(-|z|)) + max(z, 0) - z*y  is the stable BCE form.
        loss = np.log1p(np.exp(-np.abs(logits))) + np.maximum(logits, 0.0)
        loss -= logits * targets
        self._probs = sigmoid(logits)
        self._targets = targets
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None or self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = (self._probs - self._targets) / self._targets.size
        return grad.reshape(self._shape)

    def batched(self) -> "BatchedSigmoidBinaryCrossEntropy":
        return BatchedSigmoidBinaryCrossEntropy()


class BatchedSigmoidBinaryCrossEntropy(BatchedLoss):
    """Counterpart of :class:`SigmoidBinaryCrossEntropy` over stacked
    ``(C, batch)`` or ``(C, batch, 1)`` logits."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._shape: tuple | None = None

    def forward(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        if predictions.ndim < 2:
            raise ValueError(
                f"expected stacked logits with a leading client axis, got "
                f"shape {predictions.shape}"
            )
        self._shape = predictions.shape
        c = predictions.shape[0]
        logits = predictions.reshape(c, -1)
        targets = np.asarray(targets, dtype=float).reshape(c, -1)
        if logits.shape != targets.shape:
            raise ValueError(
                f"predictions {predictions.shape} and targets do not align"
            )
        # Same stable BCE form as the serial loss, elementwise.
        loss = np.log1p(np.exp(-np.abs(logits))) + np.maximum(logits, 0.0)
        loss -= logits * targets
        self._probs = sigmoid(logits)
        self._targets = targets
        return np.mean(loss, axis=1)

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None or self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = (self._probs - self._targets) / self._targets.shape[1]
        return grad.reshape(self._shape)


class MeanSquaredError(Loss):
    """Mean of squared differences, averaged over every element."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def batched(self) -> "BatchedMeanSquaredError":
        return BatchedMeanSquaredError()


class BatchedMeanSquaredError(BatchedLoss):
    """Counterpart of :class:`MeanSquaredError`: each client's loss is
    the flat mean over its own ``(batch, ...)`` block."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        targets = np.asarray(targets, dtype=float)
        if predictions.ndim < 2:
            raise ValueError(
                f"expected stacked predictions with a leading client axis, "
                f"got shape {predictions.shape}"
            )
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._diff = predictions - targets
        sq = self._diff**2
        return np.mean(sq.reshape(sq.shape[0], -1), axis=1)

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff[0].size
