"""Loss functions with fused, numerically stable gradients.

Each loss exposes ``forward(predictions, targets) -> float`` (mean loss
over the batch) and ``backward() -> grad`` w.r.t. the predictions.  The
softmax/sigmoid are fused into the cross-entropy losses so the gradient
is the plain ``probabilities - onehot`` form.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid, softmax

__all__ = [
    "Loss",
    "MeanSquaredError",
    "SigmoidBinaryCrossEntropy",
    "SoftmaxCrossEntropy",
]


class Loss:
    """Base class: call ``forward`` then ``backward`` once per step."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Multi-class cross-entropy over logits with integer class targets.

    ``predictions``: logits ``(batch, classes)``;
    ``targets``: integer labels ``(batch,)``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets)
        if predictions.ndim != 2:
            raise ValueError(f"expected 2-D logits, got shape {predictions.shape}")
        if targets.shape != (predictions.shape[0],):
            raise ValueError(
                f"targets shape {targets.shape} does not match batch "
                f"{predictions.shape[0]}"
            )
        if not np.issubdtype(targets.dtype, np.integer):
            raise TypeError("SoftmaxCrossEntropy expects integer class targets")
        self._probs = softmax(predictions, axis=1)
        self._targets = targets
        picked = self._probs[np.arange(targets.size), targets]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(self._targets.size), self._targets] -= 1.0
        return grad / self._targets.size


class SigmoidBinaryCrossEntropy(Loss):
    """Binary cross-entropy over a single logit per example.

    ``predictions``: logits ``(batch,)`` or ``(batch, 1)``;
    ``targets``: labels in {0, 1} of matching shape.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._shape: tuple | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        self._shape = predictions.shape
        logits = predictions.reshape(-1)
        targets = np.asarray(targets, dtype=float).reshape(-1)
        if logits.shape != targets.shape:
            raise ValueError(
                f"predictions {predictions.shape} and targets do not align"
            )
        # log(1 + exp(-|z|)) + max(z, 0) - z*y  is the stable BCE form.
        loss = np.log1p(np.exp(-np.abs(logits))) + np.maximum(logits, 0.0)
        loss -= logits * targets
        self._probs = sigmoid(logits)
        self._targets = targets
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None or self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = (self._probs - self._targets) / self._targets.size
        return grad.reshape(self._shape)


class MeanSquaredError(Loss):
    """Mean of squared differences, averaged over every element."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
