"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named trainable array together with its accumulated gradient.

    ``data`` and ``grad`` always share shape and dtype.  Layers
    accumulate into ``grad`` during ``backward``; optimizers read it and
    callers reset it via :meth:`zero_grad`.
    """

    __slots__ = ("name", "data", "grad")

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.name = name
        self.data = np.asarray(data, dtype=float)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
