"""Elementwise activation layers and their stable functional forms."""

from __future__ import annotations

import numpy as np

from repro.nn.module import BatchedParamBinder, BatchedStateless, Module

__all__ = ["ReLU", "Sigmoid", "Tanh", "sigmoid", "softmax"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


class ReLU(Module):
    """max(0, x)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._mask = x > 0
        # maximum(x, 0.0) selects exactly what where(mask, x, 0.0)
        # would (+0.0 for every non-positive input) in one pass.
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)

    def batched(self, binder: BatchedParamBinder) -> BatchedStateless:
        del binder  # parameter-free
        return BatchedStateless(ReLU())


class Sigmoid(Module):
    """Logistic activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._out = sigmoid(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._out * (1.0 - self._out)

    def batched(self, binder: BatchedParamBinder) -> BatchedStateless:
        del binder  # parameter-free
        return BatchedStateless(Sigmoid())


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._out**2)

    def batched(self, binder: BatchedParamBinder) -> BatchedStateless:
        del binder  # parameter-free
        return BatchedStateless(Tanh())
