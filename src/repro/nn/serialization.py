"""Flat-vector views of model parameters.

The federated engine works exclusively on flattened parameter vectors:
a client *update* is ``flatten(local) - flatten(global)`` and the server
applies aggregated updates by assigning a flat vector back.  Byte
accounting for the communication-footprint experiments also lives here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module

__all__ = [
    "assign_flat_parameters",
    "flatten_gradients",
    "flatten_parameters",
    "parameter_count",
    "update_nbytes",
]

#: Bytes per parameter on the wire.  The paper's prototype ships float32
#: weight matrices; training happens in float64 locally but transfers
#: are accounted at 4 bytes/parameter.
WIRE_BYTES_PER_PARAM = 4

#: Size of the tiny "I skipped this round" status message a CMFL/Gaia
#: client sends instead of a full update (Sec. V-C: "negligible when
#: compared with an entire local update").
STATUS_MESSAGE_BYTES = 64


def parameter_count(module: Module) -> int:
    """Total number of scalar parameters in ``module``."""
    return sum(p.size for p in module.parameters())


def _checked_out(out: np.ndarray, total: int) -> np.ndarray:
    """Validate a caller-supplied flat destination buffer."""
    if out.shape != (total,) or out.dtype != np.dtype(float):
        raise ValueError(
            f"out must be a float64 vector of shape ({total},), got "
            f"shape {out.shape} dtype {out.dtype}"
        )
    return out


def flatten_parameters(
    module: Module, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Concatenate all parameters into one 1-D float vector.

    Allocates a fresh vector unless ``out`` (a preallocated float64
    vector of the right length) is given, in which case the parameters
    are written into it and it is returned.  The federated hot path
    flattens once per client per round, so the ``out=`` form halves the
    per-client allocation traffic (see ``FLClient.compute_update``).
    """
    params = module.parameters()
    if not params:
        raise ValueError("module has no parameters to flatten")
    total = sum(p.size for p in params)
    if out is None:
        out = np.empty(total, dtype=float)
    else:
        _checked_out(out, total)
    offset = 0
    for p in params:
        out[offset : offset + p.size] = p.data.reshape(-1)
        offset += p.size
    return out


def assign_flat_parameters(module: Module, flat: np.ndarray) -> None:
    """Write a flat vector produced by :func:`flatten_parameters` back.

    The assignment copies slice-by-slice into the existing parameter
    buffers and never allocates beyond a dtype-coercing view, so the
    caller's vector may be reused (or live in shared memory) freely.
    """
    flat = np.asarray(flat, dtype=float)
    expected = parameter_count(module)
    if flat.ndim != 1 or flat.size != expected:
        raise ValueError(
            f"expected a flat vector of length {expected}, got shape {flat.shape}"
        )
    offset = 0
    for p in module.parameters():
        chunk = flat[offset : offset + p.size]
        p.data[...] = chunk.reshape(p.data.shape)
        offset += p.size


def flatten_gradients(
    module: Module, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Concatenate all parameter gradients into one 1-D vector.

    Like :func:`flatten_parameters`, ``out=`` writes into a
    preallocated buffer instead of allocating.
    """
    params = module.parameters()
    if not params:
        raise ValueError("module has no parameters")
    total = sum(p.size for p in params)
    if out is None:
        out = np.empty(total, dtype=float)
    else:
        _checked_out(out, total)
    offset = 0
    for p in params:
        out[offset : offset + p.size] = p.grad.reshape(-1)
        offset += p.size
    return out


def update_nbytes(n_params: int) -> int:
    """Wire size of a full update carrying ``n_params`` parameters."""
    if n_params < 0:
        raise ValueError("n_params must be >= 0")
    return n_params * WIRE_BYTES_PER_PARAM
