"""First-order optimizers over ``Parameter`` lists."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Adam", "Momentum", "Optimizer", "SGD"]


class Optimizer:
    """Base optimizer: subclasses implement the per-parameter update rule.

    ``step(lr=...)`` applies one update using the accumulated gradients;
    the learning rate can be overridden per step, which is how the
    federated trainer implements the paper's eta_t = eta_0 / sqrt(t)
    schedule.

    ``state_dict``/``load_state_dict`` snapshot the *slot* state
    (momentum velocity, Adam moments) that the flat parameter vector
    does not carry — what checkpoints must persist so a resumed run
    steps identically.  The shared layout is
    ``{"type", "scalars": {...}, "slots": {name: [array per parameter,
    in parameter order]}}``; stateless optimizers have empty scalars
    and slots.
    """

    def __init__(self, parameters: List[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)  # ckpt: transient — bound at build; values live in the workspace
        self.lr = lr  # ckpt: transient — constructor constant

    def step(self, lr: Optional[float] = None) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def state_dict(self) -> Dict[str, Any]:
        """Serialisable slot-state snapshot (see the class docstring)."""
        return {"type": type(self).__name__, "scalars": {}, "slots": {}}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (stateless default)."""
        self._check_state_type(state)
        if state.get("scalars") or state.get("slots"):
            raise ValueError(
                f"{type(self).__name__} carries no slot state, but the "
                "snapshot does"
            )

    def _check_state_type(self, state: Dict[str, Any]) -> None:
        expected = type(self).__name__
        if state.get("type") != expected:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, "
                f"not {expected!r}"
            )

    def _load_slot(
        self,
        slot_name: str,
        arrays: List[np.ndarray],
        target: Dict[int, np.ndarray],
    ) -> None:
        """Copy ``arrays`` (parameter order) into an id-keyed slot dict."""
        if len(arrays) != len(self.parameters):
            raise ValueError(
                f"slot {slot_name!r} has {len(arrays)} arrays for "
                f"{len(self.parameters)} parameters"
            )
        for p, value in zip(self.parameters, arrays):
            value = np.asarray(value)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"slot {slot_name!r}: array shape {value.shape} does "
                    f"not match parameter shape {p.data.shape}"
                )
            target[id(p)][...] = value


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(
        self, parameters: List[Parameter], lr: float, weight_decay: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        self.weight_decay = weight_decay  # ckpt: transient — constructor constant

    def step(self, lr: Optional[float] = None) -> None:
        eta = self.lr if lr is None else lr
        for p in self.parameters:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            p.data -= eta * grad


class Momentum(Optimizer):
    """SGD with classical (heavy-ball) momentum."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum  # ckpt: transient — constructor constant
        self.weight_decay = weight_decay  # ckpt: transient — constructor constant
        self._velocity: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.parameters
        }

    def step(self, lr: Optional[float] = None) -> None:
        eta = self.lr if lr is None else lr
        for p in self.parameters:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v = self._velocity[id(p)]
            v *= self.momentum
            v -= eta * grad
            p.data += v

    def state_dict(self) -> Dict[str, Any]:
        return {
            "type": type(self).__name__,
            "scalars": {},
            "slots": {
                "velocity": [
                    self._velocity[id(p)].copy() for p in self.parameters
                ]
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._check_state_type(state)
        self._load_slot(
            "velocity", state["slots"]["velocity"], self._velocity
        )


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1  # ckpt: transient — constructor constant
        self.beta2 = beta2  # ckpt: transient — constructor constant
        self.eps = eps  # ckpt: transient — constructor constant
        self._t = 0
        self._m: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.parameters
        }
        self._v: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.parameters
        }

    def step(self, lr: Optional[float] = None) -> None:
        eta = self.lr if lr is None else lr
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p in self.parameters:
            m = self._m[id(p)]
            v = self._v[id(p)]
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= eta * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "type": type(self).__name__,
            "scalars": {"t": self._t},
            "slots": {
                "m": [self._m[id(p)].copy() for p in self.parameters],
                "v": [self._v[id(p)].copy() for p in self.parameters],
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._check_state_type(state)
        self._t = int(state["scalars"]["t"])
        self._load_slot("m", state["slots"]["m"], self._m)
        self._load_slot("v", state["slots"]["v"], self._v)
