"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so model
construction is deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "get_initializer",
    "glorot_uniform",
    "he_normal",
    "normal",
    "orthogonal",
    "zeros",
]


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    """(fan_in, fan_out) for dense and convolutional weight shapes."""
    if len(shape) < 1:
        raise ValueError("initialiser needs a non-scalar shape")
    if len(shape) == 1:
        return int(shape[0]), int(shape[0])
    if len(shape) == 2:
        return int(shape[0]), int(shape[1])
    # Convolution (out_channels, in_channels, kh, kw).
    receptive = int(np.prod(shape[2:]))
    return int(shape[1]) * receptive, int(shape[0]) * receptive


def zeros(shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
    del rng
    return np.zeros(shape, dtype=float)


def normal(shape: Sequence[int], rng: RngLike = None, std: float = 0.05) -> np.ndarray:
    return ensure_rng(rng).normal(0.0, std, size=shape)


def glorot_uniform(shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform; the TF default the paper's models used."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return ensure_rng(rng).uniform(-limit, limit, size=shape)


def he_normal(shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
    """He-normal, suited to ReLU stacks."""
    fan_in, _ = _fans(shape)
    return ensure_rng(rng).normal(0.0, np.sqrt(2.0 / max(fan_in, 1)), size=shape)


def orthogonal(shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
    """Orthogonal init for recurrent kernels (2-D shapes only)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    gen = ensure_rng(rng)
    rows, cols = int(shape[0]), int(shape[1])
    a = gen.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return np.ascontiguousarray(q[:rows, :cols])


INITIALIZERS = {
    "zeros": zeros,
    "normal": normal,
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "orthogonal": orthogonal,
}


def get_initializer(name: str):
    """Look up an initialiser by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; choices: {sorted(INITIALIZERS)}"
        ) from None
