"""Prediction metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "binary_accuracy", "perplexity"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``(batch, classes)`` logits against integer labels."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError("labels must be 1-D and match the batch size")
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(np.argmax(logits, axis=1) == labels))


def binary_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Accuracy of single-logit binary predictions (threshold at 0)."""
    logits = np.asarray(logits).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must align")
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean((logits > 0).astype(int) == labels.astype(int)))


def perplexity(mean_cross_entropy: float) -> float:
    """Perplexity from a mean cross-entropy in nats."""
    return float(np.exp(mean_cross_entropy))
