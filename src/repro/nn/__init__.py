"""A from-scratch numpy neural-network substrate.

The paper trains its models in TensorFlow; CMFL itself only ever sees
flattened update vectors, so any correct SGD learner reproduces the
algorithm's behaviour.  This package provides exactly that: a small,
fully backpropagated layer library (dense, convolution, pooling, LSTM,
embedding, dropout), losses, optimizers and the flat-vector parameter
(de)serialisation the federated engine is built on.

Every layer follows the same contract:

- ``forward(x, training=...)`` caches whatever the backward pass needs;
- ``backward(grad_output)`` accumulates parameter gradients into
  ``Parameter.grad`` and returns the gradient w.r.t. the layer input.

All gradients are verified against finite differences in the test suite
(see :mod:`repro.nn.gradcheck`).
"""

from repro.nn.parameter import Parameter
from repro.nn.module import (
    BatchedModule,
    BatchedParamBinder,
    BatchedSequential,
    BatchedUnsupported,
    Module,
    Sequential,
)
from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D, MaxPool2D
from repro.nn.layers.recurrent import LSTM
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.reshape import Flatten
from repro.nn.losses import (
    BatchedLoss,
    Loss,
    MeanSquaredError,
    SigmoidBinaryCrossEntropy,
    SoftmaxCrossEntropy,
)
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer
from repro.nn.schedules import ConstantLR, InverseSqrtLR, StepLR
from repro.nn.serialization import (
    assign_flat_parameters,
    flatten_parameters,
    parameter_count,
    update_nbytes,
)
from repro.nn.metrics import accuracy, binary_accuracy

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "BatchedModule",
    "BatchedParamBinder",
    "BatchedSequential",
    "BatchedUnsupported",
    "BatchedLoss",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "LSTM",
    "Embedding",
    "Dropout",
    "Flatten",
    "Loss",
    "SoftmaxCrossEntropy",
    "SigmoidBinaryCrossEntropy",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "ConstantLR",
    "InverseSqrtLR",
    "StepLR",
    "flatten_parameters",
    "assign_flat_parameters",
    "parameter_count",
    "update_nbytes",
    "accuracy",
    "binary_accuracy",
]
