"""Module base class, the ``Sequential`` container, and the
batched-leading-axis counterpart machinery.

Serial modules process one client's minibatch at a time.  The batched
executor backend (see :mod:`repro.fl.batched`) instead stacks C
same-architecture clients into a leading client axis and runs each
round step as a handful of large numpy ops.  The bridge is
:meth:`Module.batched`: given a :class:`BatchedParamBinder` it returns
a :class:`BatchedModule` whose ``forward``/``backward`` take
``(C, batch, ...)`` tensors and whose parameters/gradients are strided
views into one stacked ``(C, n_params)`` pair of flat vectors.

The contract every batched counterpart must honour: for each client
``c``, slicing its inputs/params out and running the serial layer must
give **bitwise-identical** outputs and gradient accumulations — all
reductions stay per-client (no cross-client sums), and every kernel is
chosen so numpy performs the same per-element floating-point operation
sequence as the serial path (stacked GEMMs loop the same BLAS call per
slice; elementwise ops are stacking-invariant; reduction axes keep the
same length and memory layout).  This is what lets the ``batched``
executor produce run histories digest-identical to serial.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.parameter import Parameter

__all__ = [
    "BatchedModule",
    "BatchedParamBinder",
    "BatchedSequential",
    "BatchedStateless",
    "BatchedUnsupported",
    "Module",
    "Sequential",
]


class BatchedUnsupported(NotImplementedError):
    """A module (or loss/optimizer) has no batched-leading-axis path.

    The batched executor catches this at bind time and falls back to
    the per-client compute path, so raising it is always safe.
    """


class BatchedParamBinder:
    """Allocates stacked parameter/gradient views for batched modules.

    Owns one ``(n_clients, n_params)`` float64 array pair — ``data``
    (stacked flat parameters, row ``c`` is client ``c``'s flat vector
    in :func:`repro.nn.serialization.flatten_parameters` order) and
    ``grad`` (the matching stacked gradients).  ``bind`` hands each
    parameter, **in ``Module.parameters()`` order**, a
    ``(n_clients, *param_shape)`` view into each; because rows are
    contiguous, every per-client slice of a bound view has exactly the
    memory layout of the serial parameter array, which is what keeps
    stacked GEMMs bitwise-identical per client.
    """

    def __init__(self, n_clients: int, n_params: int) -> None:
        if n_clients < 1 or n_params < 0:
            # n_params == 0 is legal: a parameter-free module stack.
            raise ValueError(
                "n_clients must be positive and n_params non-negative"
            )
        self.n_clients = n_clients
        self.n_params = n_params
        self.data = np.zeros((n_clients, n_params), dtype=float)
        self.grad = np.zeros((n_clients, n_params), dtype=float)
        self._offset = 0

    def bind(self, param: Parameter) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked ``(data_view, grad_view)`` for ``param``; advances
        the flat-vector cursor by ``param.size``."""
        size = param.size
        if self._offset + size > self.n_params:
            raise ValueError(
                f"binder overflow: parameter {param.name!r} ({size} values) "
                f"does not fit at offset {self._offset} of {self.n_params}"
            )
        shape = (self.n_clients,) + param.data.shape
        sl = slice(self._offset, self._offset + size)
        data_view = self.data[:, sl].reshape(shape)
        grad_view = self.grad[:, sl].reshape(shape)
        # Splitting the contiguous per-row slice must stay a view; a
        # silent copy would detach the module from the stacked vectors.
        if data_view.base is None or grad_view.base is None:
            raise RuntimeError(
                f"stacked view for {param.name!r} materialised a copy"
            )
        self._offset += size
        return data_view, grad_view

    def finish(self) -> None:
        """Assert every flat slot was bound (call after building)."""
        if self._offset != self.n_params:
            raise ValueError(
                f"binder bound {self._offset} of {self.n_params} values; "
                "batched layers must bind every parameter in "
                "Module.parameters() order"
            )


class BatchedModule:
    """Base class for batched-leading-axis module counterparts.

    Mirrors the :class:`Module` contract with every tensor carrying a
    leading client axis: ``forward`` takes ``(C, batch, ...)`` and
    caches what ``backward`` needs; ``backward`` accumulates into the
    stacked gradient views and returns the stacked input gradient.
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def head_backward(self, grad_output: np.ndarray) -> Optional[np.ndarray]:
        """Network-head backward: same contract as
        :meth:`Module.head_backward`, one leading client axis."""
        return self.backward(grad_output)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BatchedStateless(BatchedModule):
    """Batched adapter for parameter-free, stacking-invariant modules.

    Wraps a **fresh** serial instance of an elementwise/shape-only
    layer (ReLU, Sigmoid, Tanh) whose forward/backward already accept
    arbitrary shapes and compute each element independently — running
    it on ``(C, batch, ...)`` is bitwise-identical to running each
    client slice separately.  A fresh instance is required so the
    batched path never clobbers the serial workspace's forward caches.
    """

    def __init__(self, inner: Module) -> None:
        if inner.parameters():
            raise ValueError(
                f"{type(inner).__name__} has parameters; it needs a real "
                "batched counterpart, not the stateless adapter"
            )
        self._inner = inner

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self._inner.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self._inner.backward(grad_output)

    def __repr__(self) -> str:
        return f"BatchedStateless({type(self._inner).__name__})"


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` (caching activations needed by
    the backward pass) and :meth:`backward` (accumulating parameter
    gradients, returning the input gradient).  The forward cache is
    single-use: call ``forward`` then ``backward`` once per step.
    """

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module, in a stable order."""
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of every parameter array, keyed ``"<position>:<name>"``.

        Position-keyed because parameter *names* repeat across layers
        (every Linear has a ``weight``); :meth:`parameters` guarantees a
        stable order, so the position disambiguates while the name keeps
        the dict readable and guards against restoring into a different
        architecture.
        """
        return {
            f"{i}:{p.name}": p.data.copy()
            for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameter values from :meth:`state_dict` output.

        The state must cover exactly this module's parameters (same
        positions, names and shapes); values are copied into the
        existing arrays so optimizer slot bindings stay intact.
        """
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries, module has "
                f"{len(params)} parameters"
            )
        for i, p in enumerate(params):
            key = f"{i}:{p.name}"
            if key not in state:
                raise ValueError(f"state is missing parameter {key!r}")
            value = np.asarray(state[key])
            if value.shape != p.data.shape:
                raise ValueError(
                    f"parameter {key!r}: state shape {value.shape} does "
                    f"not match {p.data.shape}"
                )
            p.data[...] = value

    def batched(self, binder: BatchedParamBinder) -> BatchedModule:
        """Build this module's batched-leading-axis counterpart.

        Must call ``binder.bind`` once per parameter, in
        :meth:`parameters` order.  Modules without a batched path raise
        :class:`BatchedUnsupported`; the batched executor treats that
        as "fall back to the per-client path".
        """
        raise BatchedUnsupported(
            f"{type(self).__name__} has no batched counterpart"
        )

    def head_backward(self, grad_output: np.ndarray) -> Optional[np.ndarray]:
        """Backward pass when this module is the network head.

        The head (first) layer's *input* gradient is dead work — no
        caller of a training step consumes it — so layers whose input
        gradient is separable (Dense, Conv2D, Embedding) override this
        to accumulate parameter gradients only and return None.
        Parameter gradients are bitwise-unchanged, which is why the
        trainer's histories are unaffected.  The default falls back to
        the full :meth:`backward`.
        """
        return self.backward(grad_output)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:
        n = sum(p.size for p in self.parameters())
        return f"{type(self).__name__}(parameters={n})"


class Sequential(Module):
    """Feed-forward composition of layers.

    ``forward`` threads the input through each layer in order and
    ``backward`` runs the chain rule in reverse.
    """

    def __init__(self, layers: Iterable[Module]) -> None:
        self.layers: List[Module] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def head_backward(self, grad_output: np.ndarray) -> Optional[np.ndarray]:
        grad = grad_output
        for layer in reversed(self.layers[1:]):
            grad = layer.backward(grad)
        return self.layers[0].head_backward(grad)

    def batched(self, binder: BatchedParamBinder) -> "BatchedSequential":
        return BatchedSequential(
            [layer.batched(binder) for layer in self.layers]
        )

    def __repr__(self) -> str:
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"Sequential([{inner}])"


class BatchedSequential(BatchedModule):
    """Batched counterpart of :class:`Sequential`: same chain rule, one
    leading client axis on every tensor."""

    def __init__(self, layers: Iterable[BatchedModule]) -> None:
        self.layers: List[BatchedModule] = list(layers)
        if not self.layers:
            raise ValueError("BatchedSequential requires at least one layer")

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def head_backward(self, grad_output: np.ndarray) -> Optional[np.ndarray]:
        grad = grad_output
        for layer in reversed(self.layers[1:]):
            grad = layer.backward(grad)
        return self.layers[0].head_backward(grad)

    def __repr__(self) -> str:
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"BatchedSequential([{inner}])"
