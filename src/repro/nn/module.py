"""Module base class and the ``Sequential`` container."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module", "Sequential"]


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` (caching activations needed by
    the backward pass) and :meth:`backward` (accumulating parameter
    gradients, returning the input gradient).  The forward cache is
    single-use: call ``forward`` then ``backward`` once per step.
    """

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module, in a stable order."""
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of every parameter array, keyed ``"<position>:<name>"``.

        Position-keyed because parameter *names* repeat across layers
        (every Linear has a ``weight``); :meth:`parameters` guarantees a
        stable order, so the position disambiguates while the name keeps
        the dict readable and guards against restoring into a different
        architecture.
        """
        return {
            f"{i}:{p.name}": p.data.copy()
            for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameter values from :meth:`state_dict` output.

        The state must cover exactly this module's parameters (same
        positions, names and shapes); values are copied into the
        existing arrays so optimizer slot bindings stay intact.
        """
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries, module has "
                f"{len(params)} parameters"
            )
        for i, p in enumerate(params):
            key = f"{i}:{p.name}"
            if key not in state:
                raise ValueError(f"state is missing parameter {key!r}")
            value = np.asarray(state[key])
            if value.shape != p.data.shape:
                raise ValueError(
                    f"parameter {key!r}: state shape {value.shape} does "
                    f"not match {p.data.shape}"
                )
            p.data[...] = value

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:
        n = sum(p.size for p in self.parameters())
        return f"{type(self).__name__}(parameters={n})"


class Sequential(Module):
    """Feed-forward composition of layers.

    ``forward`` threads the input through each layer in order and
    ``backward`` runs the chain rule in reverse.
    """

    def __init__(self, layers: Iterable[Module]) -> None:
        self.layers: List[Module] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __repr__(self) -> str:
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"Sequential([{inner}])"
