"""Module base class and the ``Sequential`` container."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module", "Sequential"]


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` (caching activations needed by
    the backward pass) and :meth:`backward` (accumulating parameter
    gradients, returning the input gradient).  The forward cache is
    single-use: call ``forward`` then ``backward`` once per step.
    """

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module, in a stable order."""
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:
        n = sum(p.size for p in self.parameters())
        return f"{type(self).__name__}(parameters={n})"


class Sequential(Module):
    """Feed-forward composition of layers.

    ``forward`` threads the input through each layer in order and
    ``backward`` runs the chain rule in reverse.
    """

    def __init__(self, layers: Iterable[Module]) -> None:
        self.layers: List[Module] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __repr__(self) -> str:
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"Sequential([{inner}])"
