"""Token embedding lookup layer."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.initializers import normal
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike

__all__ = ["Embedding"]


class Embedding(Module):
    """Map integer token ids ``(batch, time)`` to vectors ``(batch, time, dim)``."""

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        rng: RngLike = None,
        name: str = "embedding",
    ) -> None:
        if vocab_size < 1 or embedding_dim < 1:
            raise ValueError("vocab_size and embedding_dim must be positive")
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            normal((vocab_size, embedding_dim), rng, std=0.05), name=f"{name}.weight"
        )
        self._ids: np.ndarray | None = None

    def parameters(self) -> List[Parameter]:
        return [self.weight]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        ids = np.asarray(x)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"Embedding expects integer ids, got dtype {ids.dtype}")
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.vocab_size:
            raise ValueError("token id out of range for vocabulary")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.weight.grad, self._ids, grad_output)
        # Token ids are not differentiable; return a zero placeholder of
        # the input's shape for API uniformity.
        return np.zeros(self._ids.shape, dtype=float)
