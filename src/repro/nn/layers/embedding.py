"""Token embedding lookup layer."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.initializers import normal
from repro.nn.module import BatchedModule, BatchedParamBinder, Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike

__all__ = ["BatchedEmbedding", "Embedding"]


class Embedding(Module):
    """Map integer token ids ``(batch, time)`` to vectors ``(batch, time, dim)``."""

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        rng: RngLike = None,
        name: str = "embedding",
    ) -> None:
        if vocab_size < 1 or embedding_dim < 1:
            raise ValueError("vocab_size and embedding_dim must be positive")
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            normal((vocab_size, embedding_dim), rng, std=0.05), name=f"{name}.weight"
        )
        self._ids: np.ndarray | None = None

    def parameters(self) -> List[Parameter]:
        return [self.weight]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        ids = np.asarray(x)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"Embedding expects integer ids, got dtype {ids.dtype}")
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.vocab_size:
            raise ValueError("token id out of range for vocabulary")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.weight.grad, self._ids, grad_output)
        # Token ids are not differentiable; return a zero placeholder of
        # the input's shape for API uniformity.
        return np.zeros(self._ids.shape, dtype=float)

    def head_backward(self, grad_output: np.ndarray) -> None:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(self.weight.grad, self._ids, grad_output)
        return None  # zero placeholder elided (see Module.head_backward)

    def batched(self, binder: BatchedParamBinder) -> "BatchedEmbedding":
        return BatchedEmbedding(self, binder)


class BatchedEmbedding(BatchedModule):
    """Leading-client-axis counterpart of :class:`Embedding`.

    Gathers each client's token vectors from its own table row of the
    stacked ``(C, vocab, dim)`` weight view; the scatter-add in
    ``backward`` pairs a broadcast client index with the token ids, so
    ``np.add.at`` iterates the ids in flat C order — per client the
    identical in-order accumulation the serial layer performs, and
    never across clients (distinct tables).
    """

    def __init__(self, layer: Embedding, binder: BatchedParamBinder) -> None:
        self.vocab_size = layer.vocab_size
        self.embedding_dim = layer.embedding_dim
        self._w, self._dw = binder.bind(layer.weight)  # (C, vocab, dim)
        self._ids: np.ndarray | None = None

    def _client_index(self, ids: np.ndarray) -> np.ndarray:
        shape = (-1,) + (1,) * (ids.ndim - 1)
        return np.arange(self._w.shape[0]).reshape(shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        ids = np.asarray(x)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"Embedding expects integer ids, got dtype {ids.dtype}")
        if ids.ndim < 2 or ids.shape[0] != self._w.shape[0]:
            raise ValueError(
                f"expected ids (clients={self._w.shape[0]}, ...), got {ids.shape}"
            )
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.vocab_size:
            raise ValueError("token id out of range for vocabulary")
        self._ids = ids
        return self._w[self._client_index(ids), ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        ids = self._ids
        c_idx = np.broadcast_to(self._client_index(ids), ids.shape)
        np.add.at(self._dw, (c_idx, ids), grad_output)
        return np.zeros(ids.shape, dtype=float)

    def head_backward(self, grad_output: np.ndarray) -> None:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        ids = self._ids
        c_idx = np.broadcast_to(self._client_index(ids), ids.shape)
        np.add.at(self._dw, (c_idx, ids), grad_output)
        return None  # zero placeholder elided (see Module.head_backward)
