"""Concrete layer implementations."""

from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D, MaxPool2D
from repro.nn.layers.recurrent import LSTM
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.reshape import Flatten

__all__ = ["Dense", "Conv2D", "MaxPool2D", "LSTM", "Embedding", "Dropout", "Flatten"]
