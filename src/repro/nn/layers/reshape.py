"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.module import BatchedModule, BatchedParamBinder, Module

__all__ = ["BatchedFlatten", "BatchedLastStep", "Flatten", "LastStep"]


class Flatten(Module):
    """Collapse all axes but the batch axis: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self) -> None:
        self._in_shape: Tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._in_shape)

    def batched(self, binder: BatchedParamBinder) -> "BatchedFlatten":
        del binder  # parameter-free
        return BatchedFlatten()


class BatchedFlatten(BatchedModule):
    """Counterpart of :class:`Flatten` keeping the leading client axis:
    ``(C, N, ...) -> (C, N, prod(...))`` — pure data movement."""

    def __init__(self) -> None:
        self._in_shape: Tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim < 3:
            raise ValueError(f"expected >= 3-D input, got shape {x.shape}")
        self._in_shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._in_shape)


class LastStep(Module):
    """Select the final timestep of a ``(batch, time, features)`` sequence."""

    def __init__(self) -> None:
        self._in_shape: Tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 3:
            raise ValueError(f"expected 3-D input, got shape {x.shape}")
        self._in_shape = x.shape
        return x[:, -1, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        grad = np.zeros(self._in_shape, dtype=grad_output.dtype)
        grad[:, -1, :] = grad_output
        return grad

    def batched(self, binder: BatchedParamBinder) -> "BatchedLastStep":
        del binder  # parameter-free
        return BatchedLastStep()


class BatchedLastStep(BatchedModule):
    """Counterpart of :class:`LastStep` keeping the leading client axis:
    selects ``x[:, :, -1, :]`` of a ``(C, batch, time, features)``
    sequence — pure data movement."""

    def __init__(self) -> None:
        self._in_shape: Tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        self._in_shape = x.shape
        return x[:, :, -1, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        grad = np.zeros(self._in_shape, dtype=grad_output.dtype)
        grad[:, :, -1, :] = grad_output
        return grad
