"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["Flatten", "LastStep"]


class Flatten(Module):
    """Collapse all axes but the batch axis: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self) -> None:
        self._in_shape: Tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._in_shape)


class LastStep(Module):
    """Select the final timestep of a ``(batch, time, features)`` sequence."""

    def __init__(self) -> None:
        self._in_shape: Tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 3:
            raise ValueError(f"expected 3-D input, got shape {x.shape}")
        self._in_shape = x.shape
        return x[:, -1, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        grad = np.zeros(self._in_shape, dtype=grad_output.dtype)
        grad[:, -1, :] = grad_output
        return grad
