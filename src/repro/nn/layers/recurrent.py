"""LSTM layer with full backpropagation through time."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.module import BatchedModule, BatchedParamBinder, Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, child_rngs

__all__ = ["BatchedLSTM", "LSTM"]


class LSTM(Module):
    """A single LSTM layer over ``(batch, time, features)`` inputs.

    Gate ordering inside the fused kernels is ``[input, forget, cell,
    output]``.  With ``return_sequences=True`` the layer emits the full
    hidden sequence ``(batch, time, hidden)``; otherwise only the final
    hidden state ``(batch, hidden)``.  The forget-gate bias is
    initialised to 1, the standard trick for stable early training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: RngLike = None,
        return_sequences: bool = True,
        name: str = "lstm",
    ) -> None:
        if input_size < 1 or hidden_size < 1:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        rng_x, rng_h = child_rngs(rng, 2)
        h = hidden_size
        self.w_x = Parameter(
            glorot_uniform((input_size, 4 * h), rng_x), name=f"{name}.w_x"
        )
        recurrent = np.concatenate(
            [orthogonal((h, h), rng_h) for _ in range(4)], axis=1
        )
        self.w_h = Parameter(recurrent, name=f"{name}.w_h")
        bias = np.zeros(4 * h, dtype=float)
        bias[h : 2 * h] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name=f"{name}.bias")
        self._cache: dict | None = None

    def parameters(self) -> List[Parameter]:
        return [self.w_x, self.w_h, self.bias]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(
                f"expected input (batch, time, {self.input_size}), got {x.shape}"
            )
        n, t, _ = x.shape
        h = self.hidden_size
        hs = np.zeros((t + 1, n, h), dtype=float)
        cs = np.zeros((t + 1, n, h), dtype=float)
        gates = np.zeros((t, n, 4 * h), dtype=float)
        for step in range(t):
            z = x[:, step, :] @ self.w_x.data + hs[step] @ self.w_h.data + self.bias.data
            i = sigmoid(z[:, :h])
            f = sigmoid(z[:, h : 2 * h])
            g = np.tanh(z[:, 2 * h : 3 * h])
            o = sigmoid(z[:, 3 * h :])
            cs[step + 1] = f * cs[step] + i * g
            hs[step + 1] = o * np.tanh(cs[step + 1])
            gates[step] = np.concatenate([i, f, g, o], axis=1)
        self._cache = {"x": x, "hs": hs, "cs": cs, "gates": gates}
        if self.return_sequences:
            return hs[1:].transpose(1, 0, 2)
        return hs[-1].copy()

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        hs = self._cache["hs"]
        cs = self._cache["cs"]
        gates = self._cache["gates"]
        n, t, _ = x.shape
        h = self.hidden_size

        if self.return_sequences:
            if grad_output.shape != (n, t, h):
                raise ValueError(
                    f"expected gradient shape {(n, t, h)}, got {grad_output.shape}"
                )
            grad_h_seq = grad_output.transpose(1, 0, 2)
        else:
            if grad_output.shape != (n, h):
                raise ValueError(
                    f"expected gradient shape {(n, h)}, got {grad_output.shape}"
                )
            grad_h_seq = np.zeros((t, n, h), dtype=float)
            grad_h_seq[-1] = grad_output

        dx = np.zeros_like(x)
        dh_next = np.zeros((n, h), dtype=float)
        dc_next = np.zeros((n, h), dtype=float)
        for step in range(t - 1, -1, -1):
            i = gates[step][:, :h]
            f = gates[step][:, h : 2 * h]
            g = gates[step][:, 2 * h : 3 * h]
            o = gates[step][:, 3 * h :]
            c = cs[step + 1]
            tanh_c = np.tanh(c)

            dh = grad_h_seq[step] + dh_next
            dc = dc_next + dh * o * (1.0 - tanh_c**2)

            di = dc * g * i * (1.0 - i)
            df = dc * cs[step] * f * (1.0 - f)
            dg = dc * i * (1.0 - g**2)
            do = dh * tanh_c * o * (1.0 - o)
            dz = np.concatenate([di, df, dg, do], axis=1)

            self.w_x.grad += x[:, step, :].T @ dz
            self.w_h.grad += hs[step].T @ dz
            self.bias.grad += dz.sum(axis=0)

            dx[:, step, :] = dz @ self.w_x.data.T
            dh_next = dz @ self.w_h.data.T
            dc_next = dc * f
        return dx

    def batched(self, binder: BatchedParamBinder) -> "BatchedLSTM":
        return BatchedLSTM(self, binder)


class BatchedLSTM(BatchedModule):
    """Leading-client-axis counterpart of :class:`LSTM`.

    Inputs are ``(clients, batch, time, features)``.  The recurrence is
    still stepped serially over time (it is inherently sequential), but
    each step's four matmuls run once over the whole client stack
    instead of once per client.  Per-client operand slices keep the
    serial shapes and strides — including the strided
    ``x[:, :, step, :]`` time slice, whose per-client layout matches
    the serial ``x[:, step, :]`` — so every gate, state and gradient is
    bitwise equal to the serial layer per client; the bias gradient
    reduces with ``sum(axis=1)``, never across clients.
    """

    def __init__(self, layer: LSTM, binder: BatchedParamBinder) -> None:
        self.input_size = layer.input_size
        self.hidden_size = layer.hidden_size
        self.return_sequences = layer.return_sequences
        self._w_x, self._dw_x = binder.bind(layer.w_x)  # (C, in, 4h)
        self._w_h, self._dw_h = binder.bind(layer.w_h)  # (C, h, 4h)
        self._b, self._db = binder.bind(layer.bias)  # (C, 4h)
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 4 or x.shape[3] != self.input_size:
            raise ValueError(
                "expected input (clients, batch, time, "
                f"{self.input_size}), got {x.shape}"
            )
        c, n, t, _ = x.shape
        h = self.hidden_size
        hs = np.zeros((t + 1, c, n, h), dtype=float)
        cs = np.zeros((t + 1, c, n, h), dtype=float)
        gates = np.zeros((t, c, n, 4 * h), dtype=float)
        bias = self._b[:, None, :]
        for step in range(t):
            z = x[:, :, step, :] @ self._w_x + hs[step] @ self._w_h + bias
            i = sigmoid(z[:, :, :h])
            f = sigmoid(z[:, :, h : 2 * h])
            g = np.tanh(z[:, :, 2 * h : 3 * h])
            o = sigmoid(z[:, :, 3 * h :])
            cs[step + 1] = f * cs[step] + i * g
            hs[step + 1] = o * np.tanh(cs[step + 1])
            gates[step] = np.concatenate([i, f, g, o], axis=2)
        self._cache = {"x": x, "hs": hs, "cs": cs, "gates": gates}
        if self.return_sequences:
            return hs[1:].transpose(1, 2, 0, 3)
        return hs[-1].copy()

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        hs = self._cache["hs"]
        cs = self._cache["cs"]
        gates = self._cache["gates"]
        c, n, t, _ = x.shape
        h = self.hidden_size

        if self.return_sequences:
            if grad_output.shape != (c, n, t, h):
                raise ValueError(
                    f"expected gradient shape {(c, n, t, h)}, got "
                    f"{grad_output.shape}"
                )
            grad_h_seq = grad_output.transpose(2, 0, 1, 3)
        else:
            if grad_output.shape != (c, n, h):
                raise ValueError(
                    f"expected gradient shape {(c, n, h)}, got "
                    f"{grad_output.shape}"
                )
            grad_h_seq = np.zeros((t, c, n, h), dtype=float)
            grad_h_seq[-1] = grad_output

        dx = np.zeros_like(x)
        dh_next = np.zeros((c, n, h), dtype=float)
        dc_next = np.zeros((c, n, h), dtype=float)
        for step in range(t - 1, -1, -1):
            i = gates[step][:, :, :h]
            f = gates[step][:, :, h : 2 * h]
            g = gates[step][:, :, 2 * h : 3 * h]
            o = gates[step][:, :, 3 * h :]
            cell = cs[step + 1]
            tanh_c = np.tanh(cell)

            dh = grad_h_seq[step] + dh_next
            dc = dc_next + dh * o * (1.0 - tanh_c**2)

            di = dc * g * i * (1.0 - i)
            df = dc * cs[step] * f * (1.0 - f)
            dg = dc * i * (1.0 - g**2)
            do = dh * tanh_c * o * (1.0 - o)
            dz = np.concatenate([di, df, dg, do], axis=2)

            self._dw_x += x[:, :, step, :].transpose(0, 2, 1) @ dz
            self._dw_h += hs[step].transpose(0, 2, 1) @ dz
            self._db += dz.sum(axis=1)

            dx[:, :, step, :] = dz @ self._w_x.transpose(0, 2, 1)
            dh_next = dz @ self._w_h.transpose(0, 2, 1)
            dc_next = dc * f
        return dx
