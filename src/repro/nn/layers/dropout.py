"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import BatchedModule, BatchedParamBinder, Module
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["BatchedDropout", "Dropout"]


class Dropout(Module):
    """Randomly zero activations during training, scaling survivors by 1/(1-p).

    Inference (``training=False``) is the identity, so no rescaling is
    needed at test time.
    """

    def __init__(self, rate: float, rng: RngLike = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def batched(self, binder: BatchedParamBinder) -> "BatchedDropout":
        del binder  # parameter-free
        return BatchedDropout(self)


class BatchedDropout(BatchedModule):
    """Leading-client-axis counterpart of :class:`Dropout`.

    Draws one stacked mask per step from the serial layer's own stream.
    Dropout already places a model outside the cross-backend bitwise
    contract — thread/process replicas each own an independent copy of
    the layer stream — and the batched path is no different: the single
    ``(C, ...)`` draw consumes the stream in a different order than C
    serial per-client passes would.  Inference is the exact identity on
    every backend.
    """

    def __init__(self, layer: Dropout) -> None:
        self._layer = layer
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self._layer.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self._layer.rate
        self._mask = (self._layer._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
