"""2-D convolution and max pooling, implemented with im2col.

Inputs use the NCHW layout: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn.initializers import get_initializer
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike

__all__ = ["Conv2D", "MaxPool2D", "col2im", "im2col"]


def im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> Tuple[np.ndarray, int, int]:
    """Unfold sliding windows of ``x`` into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(batch, channels * kh * kw, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(f"kernel ({kh}x{kw}) larger than input ({h}x{w})")
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int
) -> np.ndarray:
    """Fold column gradients back into an image-shaped gradient.

    Inverse (adjoint) of :func:`im2col`: overlapping windows accumulate.
    """
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    dx = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols6[:, :, i, j]
            )
    return dx


class Conv2D(Module):
    """Valid-padding 2-D convolution (optionally with symmetric zero padding)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: RngLike = None,
        weight_init: str = "glorot_uniform",
        name: str = "conv",
    ) -> None:
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid kernel_size/stride/padding")
        init = get_initializer(weight_init)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init((out_channels, in_channels, kernel_size, kernel_size), rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(
            np.zeros(out_channels, dtype=float), name=f"{name}.bias"
        )
        self._cols: np.ndarray | None = None
        self._x_padded_shape: Tuple[int, int, int, int] | None = None
        self._out_hw: Tuple[int, int] | None = None

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        if self.padding:
            pad = self.padding
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        cols, out_h, out_w = im2col(x, self.kernel_size, self.kernel_size, self.stride)
        self._cols = cols
        self._x_padded_shape = x.shape
        self._out_hw = (out_h, out_w)
        w_rows = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("fk,nkl->nfl", w_rows, cols)
        out += self.bias.data[None, :, None]
        return out.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._out_hw is None or self._x_padded_shape is None:
            raise RuntimeError("backward called before forward")
        n = grad_output.shape[0]
        out_h, out_w = self._out_hw
        grad_flat = grad_output.reshape(n, self.out_channels, out_h * out_w)
        dw = np.einsum("nfl,nkl->fk", grad_flat, self._cols)
        self.weight.grad += dw.reshape(self.weight.data.shape)
        self.bias.grad += grad_flat.sum(axis=(0, 2))
        w_rows = self.weight.data.reshape(self.out_channels, -1)
        dcols = np.einsum("fk,nfl->nkl", w_rows, grad_flat)
        dx = col2im(
            dcols, self._x_padded_shape, self.kernel_size, self.kernel_size, self.stride
        )
        if self.padding:
            pad = self.padding
            dx = dx[:, :, pad:-pad, pad:-pad]
        return dx


class MaxPool2D(Module):
    """Non-overlapping max pooling (``stride == kernel_size``).

    The input spatial extent must be divisible by the pool size; the
    paper's models (28x28 images, 2x2 pools) satisfy this.
    """

    def __init__(self, pool_size: int = 2) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._mask: np.ndarray | None = None
        self._in_shape: Tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"input {h}x{w} not divisible by pool size {p}")
        self._in_shape = x.shape
        blocks = x.reshape(n, c, h // p, p, w // p, p)
        out = blocks.max(axis=(3, 5))
        # Mask of the (first) maximal element in each block, used to route
        # the gradient back in ``backward``.
        expanded = out[:, :, :, None, :, None]
        mask = blocks == expanded  # (n, c, oh, p, ow, p)
        # Keep only the first max per block so ties do not duplicate gradient.
        flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // p, w // p, p * p)
        first = np.zeros_like(flat)
        idx = flat.argmax(axis=-1)
        np.put_along_axis(first, idx[..., None], True, axis=-1)
        self._mask = first.reshape(n, c, h // p, w // p, p, p)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None or self._in_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._in_shape
        p = self.pool_size
        grad_blocks = grad_output[:, :, :, :, None, None] * self._mask
        return grad_blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
