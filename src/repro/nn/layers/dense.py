"""Fully connected layer."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.initializers import get_initializer
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike

__all__ = ["Dense"]


class Dense(Module):
    """Affine map ``y = x @ W + b`` over the last axis.

    Accepts inputs of shape ``(batch, in_features)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: RngLike = None,
        weight_init: str = "glorot_uniform",
        use_bias: bool = True,
        name: str = "dense",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        init = get_initializer(weight_init)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init((in_features, out_features), rng), name=f"{name}.weight"
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=float), name=f"{name}.bias")
            if use_bias
            else None
        )
        self._x: np.ndarray | None = None

    def parameters(self) -> List[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (batch, {self.in_features}), got {x.shape}"
            )
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T
