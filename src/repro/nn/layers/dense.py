"""Fully connected layer."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.initializers import get_initializer
from repro.nn.module import BatchedModule, BatchedParamBinder, Module
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike

__all__ = ["BatchedDense", "Dense"]


class Dense(Module):
    """Affine map ``y = x @ W + b`` over the last axis.

    Accepts inputs of shape ``(batch, in_features)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: RngLike = None,
        weight_init: str = "glorot_uniform",
        use_bias: bool = True,
        name: str = "dense",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        init = get_initializer(weight_init)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init((in_features, out_features), rng), name=f"{name}.weight"
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=float), name=f"{name}.bias")
            if use_bias
            else None
        )
        self._x: np.ndarray | None = None

    def parameters(self) -> List[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (batch, {self.in_features}), got {x.shape}"
            )
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T

    def head_backward(self, grad_output: np.ndarray) -> None:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return None  # input gradient elided (see Module.head_backward)

    def batched(self, binder: BatchedParamBinder) -> "BatchedDense":
        return BatchedDense(self, binder)


class BatchedDense(BatchedModule):
    """Leading-client-axis counterpart of :class:`Dense`.

    Takes ``(clients, batch, in)`` inputs against stacked weight views
    ``(clients, in, out)``.  Every per-client slice of the stacked
    operands has exactly the shape and strides of the serial operands,
    so the 3-D ``matmul`` dispatches the identical per-slice GEMM and
    each client's output/gradients are bitwise equal to the serial
    layer run on that client's slice; the bias-gradient ``sum(axis=1)``
    accumulates over the batch axis in the same element order as the
    serial ``sum(axis=0)``.
    """

    def __init__(self, layer: Dense, binder: BatchedParamBinder) -> None:
        self.in_features = layer.in_features
        self.out_features = layer.out_features
        self._w, self._dw = binder.bind(layer.weight)
        if layer.bias is not None:
            self._b, self._db = binder.bind(layer.bias)
        else:
            self._b = None
            self._db = None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ValueError(
                f"expected input (clients, batch, {self.in_features}), "
                f"got {x.shape}"
            )
        self._x = x
        out = x @ self._w
        if self._b is not None:
            out = out + self._b[:, None, :]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self._dw += self._x.transpose(0, 2, 1) @ grad_output
        if self._db is not None:
            self._db += grad_output.sum(axis=1)
        return grad_output @ self._w.transpose(0, 2, 1)

    def head_backward(self, grad_output: np.ndarray) -> None:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self._dw += self._x.transpose(0, 2, 1) @ grad_output
        if self._db is not None:
            self._db += grad_output.sum(axis=1)
        return None  # input gradient elided (see Module.head_backward)
