"""Finite-difference gradient verification.

Used by the test suite to prove every layer's backward pass against a
numerical derivative of the loss.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.losses import Loss
from repro.nn.module import Module

__all__ = [
    "check_input_gradient",
    "check_module_gradients",
    "max_relative_error",
    "numerical_gradient",
]


def numerical_gradient(
    f: Callable[[], float], array: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        f_plus = f()
        array[idx] = original - eps
        f_minus = f()
        array[idx] = original
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Max elementwise |a - n| / max(1, |a|, |n|)."""
    denom = np.maximum(1.0, np.maximum(np.abs(analytic), np.abs(numeric)))
    return float(np.max(np.abs(analytic - numeric) / denom))


def check_module_gradients(
    module: Module,
    loss: Loss,
    x: np.ndarray,
    targets: np.ndarray,
    eps: float = 1e-6,
) -> float:
    """Return the worst relative error across all parameters of ``module``.

    Runs one forward/backward pass to obtain analytic gradients, then
    perturbs every parameter entry with central differences.  Intended
    for tiny modules only (cost is O(parameters) forward passes).
    """
    module.zero_grad()
    out = module.forward(x, training=False)
    loss.forward(out, targets)
    module.backward(loss.backward())

    worst = 0.0
    for p in module.parameters():
        analytic = p.grad.copy()

        def f() -> float:
            return loss.forward(module.forward(x, training=False), targets)

        numeric = numerical_gradient(f, p.data, eps=eps)
        worst = max(worst, max_relative_error(analytic, numeric))
    return worst


def check_input_gradient(
    module: Module,
    loss: Loss,
    x: np.ndarray,
    targets: np.ndarray,
    eps: float = 1e-6,
) -> float:
    """Worst relative error of the gradient w.r.t. the module input."""
    module.zero_grad()
    out = module.forward(x, training=False)
    loss.forward(out, targets)
    analytic = module.backward(loss.backward())

    def f() -> float:
        return loss.forward(module.forward(x, training=False), targets)

    numeric = numerical_gradient(f, x, eps=eps)
    return max_relative_error(analytic, numeric)
