"""Learning-rate schedules.

The paper sets eta_t = eta_0 / sqrt(t) for the vanilla-FL experiments
(Sec. V-A) and a constant eta = 1e-4 for the MOCHA experiments
(Sec. V-B); both live here.  Iteration indices are 1-based, matching
the paper's notation.
"""

from __future__ import annotations

__all__ = ["ConstantLR", "InverseSqrtLR", "LRSchedule", "StepLR"]


class LRSchedule:
    """Maps a 1-based iteration index to a learning rate."""

    def __call__(self, t: int) -> float:
        if t < 1:
            raise ValueError(f"iteration index is 1-based, got {t}")
        return self.value(t)

    def value(self, t: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """eta_t = eta_0."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def value(self, t: int) -> float:
        return self.lr

    def __repr__(self) -> str:
        return f"ConstantLR({self.lr})"


class InverseSqrtLR(LRSchedule):
    """eta_t = eta_0 / sqrt(t) -- the schedule Theorem 1's remark 2 uses."""

    def __init__(self, lr0: float) -> None:
        if lr0 <= 0:
            raise ValueError(f"lr0 must be positive, got {lr0}")
        self.lr0 = lr0

    def value(self, t: int) -> float:
        return self.lr0 / (t**0.5)

    def __repr__(self) -> str:
        return f"InverseSqrtLR({self.lr0})"


class StepLR(LRSchedule):
    """eta multiplied by ``gamma`` every ``step_size`` iterations."""

    def __init__(self, lr0: float, step_size: int, gamma: float = 0.5) -> None:
        if lr0 <= 0 or step_size < 1 or not 0 < gamma <= 1:
            raise ValueError("invalid StepLR configuration")
        self.lr0 = lr0
        self.step_size = step_size
        self.gamma = gamma

    def value(self, t: int) -> float:
        return self.lr0 * self.gamma ** ((t - 1) // self.step_size)

    def __repr__(self) -> str:
        return f"StepLR({self.lr0}, step_size={self.step_size}, gamma={self.gamma})"
