"""repro: a full reproduction of CMFL (Wang, Wang & Li, ICDCS 2019).

The package is organised in layers:

- :mod:`repro.nn` -- a from-scratch numpy neural-network substrate
  (layers, losses, optimizers, full backprop).
- :mod:`repro.data` -- synthetic stand-ins for the paper's datasets
  (MNIST-like digits, Shakespeare-like dialogue, HAR-like activity data,
  Semeion-like digits) plus non-IID partitioners.
- :mod:`repro.fl` -- the synchronous federated-learning engine with
  communication accounting.
- :mod:`repro.core` -- the paper's contribution: the CMFL relevance
  measure, threshold schedules and upload policy.
- :mod:`repro.baselines` -- vanilla FL and Gaia significance filtering.
- :mod:`repro.mtl` -- MOCHA-style federated multi-task learning.
- :mod:`repro.emu` -- a discrete-event master/slave cluster emulation
  standing in for the paper's 30-node EC2 testbed.
- :mod:`repro.analysis` -- the paper's measurement machinery
  (Normalized Model Divergence, delta-update, saving, CDFs).
- :mod:`repro.experiments` -- one runnable module per paper figure/table.
"""

from repro.core.relevance import relevance
from repro.core.policy import CMFLPolicy
from repro.baselines.gaia import GaiaPolicy
from repro.baselines.vanilla import VanillaPolicy
from repro.fl.trainer import FederatedTrainer
from repro.fl.config import FLConfig

__version__ = "1.0.0"

__all__ = [
    "relevance",
    "CMFLPolicy",
    "GaiaPolicy",
    "VanillaPolicy",
    "FederatedTrainer",
    "FLConfig",
    "__version__",
]
