"""Theorem 1: empirical convergence check on a convex problem.

The paper proves (for convex losses, with eta_t and v_t decaying like
1/sqrt(t)) that CMFL's time-average regret vanishes.  We verify the
*empirical signature*: federated logistic regression under CMFL has a
time-average regret (1/T) sum |f(x_t) - f(x*)| that decays with T and
stays within a constant factor of the Theorem-1 bound shape.

The optimum f(x*) is obtained by centralised full-batch training to
(numerical) convergence on the pooled data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.convergence import RegretTracker, theoretical_bound
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.experiments.workloads import resolve_scale
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import SGD
from repro.nn.schedules import InverseSqrtLR
from repro.utils.rng import child_rngs
from repro.utils.tables import format_table

__all__ = ["ConvergenceResult", "main", "run"]

_ROUNDS = {"test": 12, "bench": 80, "paper": 400}


def _make_problem(seed: int, n_samples: int = 400, n_features: int = 12):
    rngs = child_rngs(seed, 3)
    w_true = rngs[0].normal(size=n_features)
    x = rngs[1].normal(size=(n_samples, n_features))
    logits = x @ w_true
    y = (rngs[2].random(n_samples) < 1.0 / (1.0 + np.exp(-logits))).astype(int)
    return Dataset(x, y)


def _optimal_loss(data: Dataset, iters: int = 3000) -> float:
    """Full-batch gradient descent to near-optimum on the pooled data."""
    model = make_logistic_regression(data.x.shape[1], zero_init=True)
    loss = SigmoidBinaryCrossEntropy()
    opt = SGD(model.parameters(), lr=0.5)
    value = float("inf")
    for _ in range(iters):
        model.zero_grad()
        out = model.forward(data.x, training=True)
        value = loss.forward(out, data.y)
        model.backward(loss.backward())
        opt.step()
    return value


@dataclass
class ConvergenceResult:
    scale: str
    time_average_regret: np.ndarray
    bound_shape: np.ndarray

    @property
    def is_decaying(self) -> bool:
        avg = self.time_average_regret
        head = max(1, avg.size // 4)
        return float(avg[-1]) < float(np.mean(avg[:head]))

    def report(self) -> str:
        avg = self.time_average_regret
        rows = [
            ["time-average regret (T=1/4)", f"{np.mean(avg[: max(1, avg.size // 4)]):.4f}", "-"],
            ["time-average regret (final)", f"{avg[-1]:.4f}", "-> 0 as T grows"],
            ["decaying", str(self.is_decaying), "Theorem 1 requires yes"],
            ["bound shape (final/initial)",
             f"{self.bound_shape[-1] / self.bound_shape[0]:.3f}",
             "~1/sqrt(T) for the paper's schedules"],
        ]
        return format_table(
            ["metric", "ours", "expectation"],
            rows,
            title=f"Theorem 1 -- empirical convergence check (scale={self.scale})",
        )


def run(scale: Optional[str] = None, seed: int = 5) -> ConvergenceResult:
    """Run the convex convergence experiment."""
    scale = resolve_scale(scale)
    rounds = _ROUNDS[scale]
    data = _make_problem(seed)
    f_star = _optimal_loss(data)

    n_clients = 8
    rngs = child_rngs(seed + 1, n_clients + 1)
    model = make_logistic_regression(data.x.shape[1], zero_init=True)
    workspace = ModelWorkspace(
        model,
        SigmoidBinaryCrossEntropy(),
        SGD(model.parameters(), lr=0.3),
        metric=binary_accuracy,
    )
    parts = iid_partition(len(data), n_clients, rng=rngs[0])
    clients = [
        FLClient(i, data.subset(p), rng=rngs[i + 1]) for i, p in enumerate(parts)
    ]
    config = FLConfig(
        rounds=rounds,
        local_epochs=1,
        batch_size=16,
        lr=InverseSqrtLR(0.3),
        eval_every=1,
    )
    trainer = FederatedTrainer(
        workspace,
        clients,
        CMFLPolicy(InverseSqrtThreshold(0.8)),
        config,
        eval_fn=lambda w: w.evaluate(data.x, data.y),
    )
    tracker = RegretTracker(optimal_loss=f_star)
    for t in range(1, rounds + 1):
        record = trainer.run_round(t)
        tracker.observe(record.test_loss)

    etas = np.asarray([0.3 / np.sqrt(t) for t in range(1, rounds + 1)])
    thresholds = np.asarray([0.8 / np.sqrt(t) for t in range(1, rounds + 1)])
    return ConvergenceResult(
        scale=scale,
        time_average_regret=tracker.time_average_regret(),
        bound_shape=theoretical_bound(etas, thresholds),
    )


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
