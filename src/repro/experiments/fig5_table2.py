"""Fig. 5 + Table II: CMFL applied to federated multi-task learning.

The paper applies CMFL to MOCHA on two MTL workloads -- Human Activity
Recognition (142 clients) and Semeion Handwritten Digit (15 clients) --
and reports savings of 4.3/5.7x (HAR at 85%/91%) and 1.97/3.3x (SHD at
75%/84%), plus a 1.03-1.04x *accuracy improvement* from excluding
outlier updates.

Our MTL substrate uses the shared-base decomposition (see
:mod:`repro.mtl.mocha`); outlier clients carry corrupted training
labels, so excluding their updates keeps the shared base clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.saving import best_reached_accuracy, rounds_to_accuracy
from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import ConstantThreshold
from repro.data.har import make_har_tasks
from repro.data.semeion import make_semeion_tasks
from repro.experiments.workloads import resolve_scale
from repro.fl.history import RunHistory
from repro.mtl.mocha import MochaTrainer, MTLConfig
from repro.utils.tables import format_table

__all__ = [
    "Fig5Result",
    "MTLComparison",
    "har_config",
    "main",
    "make_tasks",
    "run",
    "run_dataset",
    "shd_config",
]

#: Relevance thresholds.  The paper tunes 0.75 (HAR) / 0.2 (SHD); our
#: relevance distributions sit elsewhere (HAR drifts cluster near 0.5,
#: Semeion's sparse binary features push alignment toward 0.85), so the
#: tuned values differ but play the same role: just below the clean
#: clients' typical relevance.
CMFL_THRESHOLDS = {"har": 0.53, "semeion": 0.83}

#: Accuracy targets per dataset (paper: HAR 85%/91%, SHD 75%/84%).
TARGETS = {"har": (0.80, 0.84), "semeion": (0.75, 0.80)}

_HAR_SIZES = {
    "test": dict(n_clients=12, n_features=40),
    "bench": dict(n_clients=40, n_features=120),
    "paper": dict(n_clients=142, n_features=561),
}
_SHD_SIZES = {
    "test": dict(n_clients=6, total_samples=180),
    "bench": dict(n_clients=15, total_samples=800),
    "paper": dict(n_clients=15, total_samples=1593),
}
_ROUNDS = {"test": 6, "bench": 40, "paper": 200}


def har_config(scale: str, seed: int = 1) -> MTLConfig:
    return MTLConfig(
        rounds=_ROUNDS[scale],
        local_epochs=1,
        batch_size=5,
        lr=0.002,
        personal_retention=0.5,
        eval_every=2,
        seed=seed,
    )


def shd_config(scale: str, seed: int = 3) -> MTLConfig:
    return MTLConfig(
        rounds=_ROUNDS[scale],
        local_epochs=2,
        batch_size=5,
        lr=0.05,
        personal_retention=0.5,
        eval_every=2,
        seed=seed,
    )


def make_tasks(dataset: str, scale: str, seed: int = 0):
    """Fresh task list for ``dataset`` in {"har", "semeion"}."""
    if dataset == "har":
        return make_har_tasks(
            min_samples=10, max_samples=60, rng=seed, **_HAR_SIZES[scale]
        )
    if dataset == "semeion":
        return make_semeion_tasks(rng=seed, **_SHD_SIZES[scale])
    raise ValueError(f"unknown dataset {dataset!r}")


@dataclass
class MTLComparison:
    """Vanilla-MOCHA vs MOCHA+CMFL on one dataset."""

    dataset: str
    targets: Tuple[float, float]
    vanilla: RunHistory
    cmfl: RunHistory
    skips_outliers: float
    skips_clean: float

    def saving(self, target: float) -> Optional[float]:
        phi_v = rounds_to_accuracy(self.vanilla, target)
        phi_c = rounds_to_accuracy(self.cmfl, target)
        if phi_v is None or phi_c is None or phi_c == 0:
            return None
        return phi_v / phi_c

    def accuracy_ratio(self) -> float:
        base = best_reached_accuracy(self.vanilla)
        if base == 0:
            raise ValueError("vanilla never evaluated")
        return best_reached_accuracy(self.cmfl) / base

    def report(self) -> str:
        paper = {
            "har": ((4.3, 5.7), 1.03),
            "semeion": ((1.97, 3.3), 1.04),
        }
        (paper_low, paper_high), paper_acc = paper[self.dataset]
        rows = []
        for i, target in enumerate(self.targets):
            s = self.saving(target)
            rows.append(
                [
                    f"saving@{target}",
                    "-" if s is None else f"{s:.2f}",
                    f"{(paper_low, paper_high)[i]:.2f}",
                ]
            )
        rows.append(
            ["accuracy ratio", f"{self.accuracy_ratio():.3f}", f"{paper_acc:.2f}"]
        )
        rows.append(
            [
                "mean skips outlier/clean",
                f"{self.skips_outliers:.1f} / {self.skips_clean:.1f}",
                "eliminations concentrate on outliers",
            ]
        )
        rows.append(
            [
                "total phi (vanilla/cmfl)",
                f"{self.vanilla.final.accumulated_rounds} / "
                f"{self.cmfl.final.accumulated_rounds}",
                "-",
            ]
        )
        return format_table(
            ["metric", "ours", "paper"],
            rows,
            title=f"Fig 5 / Table II -- MOCHA+CMFL on {self.dataset}",
        )


@dataclass
class Fig5Result:
    scale: str
    comparisons: Dict[str, MTLComparison]

    def report(self) -> str:
        return "\n\n".join(c.report() for c in self.comparisons.values())


def run_dataset(dataset: str, scale: str) -> MTLComparison:
    """Run vanilla MOCHA and MOCHA+CMFL on one dataset."""
    config = har_config(scale) if dataset == "har" else shd_config(scale)
    vanilla = MochaTrainer(
        make_tasks(dataset, scale), VanillaPolicy(), config
    ).run()
    tasks = make_tasks(dataset, scale)
    trainer = MochaTrainer(
        tasks, CMFLPolicy(ConstantThreshold(CMFL_THRESHOLDS[dataset])), config
    )
    cmfl = trainer.run()
    skips = np.asarray(trainer.ledger.elimination_counts(len(tasks)), dtype=float)
    outliers = np.asarray([t.is_outlier for t in tasks])
    skips_outliers = float(skips[outliers].mean()) if outliers.any() else 0.0
    skips_clean = float(skips[~outliers].mean()) if (~outliers).any() else 0.0
    return MTLComparison(
        dataset=dataset,
        targets=TARGETS[dataset],
        vanilla=vanilla,
        cmfl=cmfl,
        skips_outliers=skips_outliers,
        skips_clean=skips_clean,
    )


def run(scale: Optional[str] = None) -> Fig5Result:
    """Reproduce Fig. 5 and Table II at the requested scale."""
    scale = resolve_scale(scale)
    return Fig5Result(
        scale=scale,
        comparisons={
            "har": run_dataset("har", scale),
            "semeion": run_dataset("semeion", scale),
        },
    )


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
