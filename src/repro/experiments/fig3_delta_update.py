"""Fig. 3: CDF of the normalized difference between sequential global updates.

CMFL's feedback trick estimates the current global update with the
previous one (Eq. 8).  The paper validates this by showing
||u_{t+1} - u_t|| / ||u_t|| is below 0.05 for >99% (MNIST CNN) and
>93% (NWP LSTM) of iterations.

Note on our smaller scale: with 10-30 clients instead of 100 the global
update averages fewer locals, so round-to-round variation is larger and
the sub-0.05 mass smaller than the paper's; what must survive is the
*concentration near small values* that makes the previous update a
usable estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.cdf import empirical_cdf, fraction_below, quantile
from repro.baselines.vanilla import VanillaPolicy
from repro.experiments.workloads import DigitsWorkload, NWPWorkload, resolve_scale
from repro.utils.tables import format_table

__all__ = ["Fig3Result", "main", "run"]

_ROUNDS = {"test": 4, "bench": 25, "paper": 500}


@dataclass
class Fig3Result:
    """Delta-update samples per workload."""

    scale: str
    deltas: Dict[str, np.ndarray]

    def stats(self, model: str) -> Dict[str, float]:
        d = self.deltas[model]
        return {
            "fraction_below_0.05": fraction_below(d, 0.05),
            "median": quantile(d, 0.5),
            "max": float(np.max(d)),
        }

    def cdf(self, model: str):
        return empirical_cdf(self.deltas[model])

    def report(self) -> str:
        paper = {"digits_cnn": (0.99, 0.67), "nwp_lstm": (0.93, 0.21)}
        rows = []
        for model, d in self.deltas.items():
            s = self.stats(model)
            frac_paper, max_paper = paper[model]
            rows.append(
                [
                    model,
                    f"{s['median']:.3f}",
                    f"{s['fraction_below_0.05']:.2f}",
                    f"{frac_paper:.2f}",
                    f"{s['max']:.2f}",
                    f"{max_paper:.2f}",
                ]
            )
        return format_table(
            ["model", "median dU (ours)", "frac<0.05 (ours)",
             "frac<0.05 (paper)", "max (ours)", "max (paper)"],
            rows,
            title=f"Fig 3 -- Delta-Update between sequential global updates "
            f"(scale={self.scale})",
        )


def run(scale: Optional[str] = None) -> Fig3Result:
    """Reproduce Fig. 3 at the requested scale."""
    scale = resolve_scale(scale)
    rounds = _ROUNDS[scale]

    deltas: Dict[str, np.ndarray] = {}
    for name, workload in (
        ("digits_cnn", DigitsWorkload(scale=scale)),
        ("nwp_lstm", NWPWorkload(scale=scale)),
    ):
        trainer = workload.make_trainer(
            VanillaPolicy(), rounds=rounds, eval_every=rounds
        )
        trainer.run(rounds)
        observed = trainer.server.estimator.delta_updates
        if not observed:
            raise RuntimeError(f"no delta updates recorded for {name}")
        deltas[name] = np.asarray(observed)
    return Fig3Result(scale=scale, deltas=deltas)


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
