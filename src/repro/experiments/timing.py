"""Round-throughput timing: the machine-readable perf baseline.

Times the federated round hot path (the compute fan-out plus the
ordered decide/aggregate reduction) under each execution backend of
:mod:`repro.fl.executor` on two workloads:

* ``digits_cnn`` — the paper's digit-CNN federation at bench scale
  (compute-heavy clients; where the process backend pays off), and
* ``linear`` — a logistic-regression federation (tiny per-client
  steps; an upper bound on per-task engine overhead).

``run_timing`` returns a JSON-ready payload recording, per backend,
wall-clock sec/round (the **median** over per-round samples, which are
also recorded — one scheduler hiccup must not move the regression
gate), clients/sec and the speedup over serial, plus a history digest
proving the backends produced bitwise-identical runs.
``tools/bench_timing.py`` writes it to ``BENCH_timing.json`` at the
repo root and ``tools/bench_compare.py`` diffs two such baselines.

A micro section times the ``im2col`` unfold with and without a trailing
``np.ascontiguousarray`` — the measurement behind dropping that call
(see :func:`repro.nn.layers.conv.im2col`) — the stacked-vs-looped
kernels behind the ``batched`` backend, and the checkpoint
save/restore path of :mod:`repro.ckpt` (sec per save, bytes on disk).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.experiments.workloads import DigitsWorkload
from repro.fl.client import FLClient
from repro.fl.config import EXECUTOR_BACKENDS, FLConfig
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.layers.conv import im2col
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.utils.atomic_io import atomic_write_text
from repro.utils.rng import child_rngs

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_BACKENDS",
    "TIMING_WORKLOADS",
    "format_report",
    "history_digest",
    "make_digits_timing_trainer",
    "make_linear_timing_trainer",
    "run_timing",
    "time_async_vs_sync",
    "time_backend",
    "time_batched_kernels",
    "time_checkpoint",
    "time_im2col",
    "time_lint",
    "time_obs_overhead",
    "write_baseline",
]

BENCH_SCHEMA = "repro-bench-timing/v1"

DEFAULT_BACKENDS = EXECUTOR_BACKENDS

#: Never evaluate during timed rounds: evaluation runs on the parent
#: workspace identically under every backend and would only blur the
#: per-round compute signal.
_NO_EVAL = 10**9

_TIMING_SEED = 23


def make_digits_timing_trainer(
    backend: str = "serial", workers: int = 0
) -> FederatedTrainer:
    """The digit-CNN federation at bench scale (30 clients), CMFL policy."""
    workload = DigitsWorkload(scale="bench")
    return workload.make_trainer(
        CMFLPolicy(InverseSqrtThreshold(0.8)),
        executor=backend,
        executor_workers=workers,
        eval_every=_NO_EVAL,
    )


def make_linear_timing_trainer(
    backend: str = "serial", workers: int = 0
) -> FederatedTrainer:
    """A 30-client logistic-regression federation with tiny local steps."""
    n_clients, n_features, per_client = 30, 64, 80
    rngs = child_rngs(_TIMING_SEED, n_clients + 3)
    w_true = rngs[0].normal(size=n_features)
    x = rngs[1].normal(size=(n_clients * per_client, n_features))
    y = (x @ w_true > 0).astype(np.int64)
    data = Dataset(x, y)
    model = make_logistic_regression(n_features, rng=rngs[2])
    workspace = ModelWorkspace(
        model, SigmoidBinaryCrossEntropy(), SGD(model.parameters(), 0.3)
    )
    parts = iid_partition(len(data), n_clients, rng=_TIMING_SEED)
    clients = [
        FLClient(i, data.subset(p), rng=rngs[3 + i])
        for i, p in enumerate(parts)
    ]
    config = FLConfig(
        rounds=100,
        local_epochs=2,
        batch_size=8,
        lr=ConstantLR(0.3),
        eval_every=_NO_EVAL,
        executor=backend,
        executor_workers=workers,
    )
    return FederatedTrainer(
        workspace, clients, CMFLPolicy(InverseSqrtThreshold(0.8)), config
    )


TIMING_WORKLOADS: Dict[str, Callable[[str, int], FederatedTrainer]] = {
    "digits_cnn": make_digits_timing_trainer,
    "linear": make_linear_timing_trainer,
}


def history_digest(trainer: FederatedTrainer) -> str:
    """SHA-256 over everything a backend could perturb.

    Covers per-round losses, scores, upload decisions and the final
    global parameter bytes; equal digests mean bitwise-equal runs.
    """
    h = hashlib.sha256()
    for r in trainer.history:
        h.update(np.float64(r.mean_train_loss).tobytes())
        h.update(np.float64(r.mean_score).tobytes())
        h.update(np.asarray(r.uploaded_ids, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(trainer.server.global_params).tobytes())
    return h.hexdigest()


def time_backend(
    workload: str,
    backend: str,
    workers: int = 0,
    rounds: int = 3,
    warmup: int = 1,
) -> Dict[str, object]:
    """Time ``rounds`` rounds of ``workload`` under ``backend``.

    ``warmup`` untimed rounds absorb one-time costs (worker-pool
    startup, replica builds) so sec/round reflects the steady state.
    Rounds are timed individually; ``sec_per_round`` is the median of
    the per-round samples (all recorded in the payload), so a single
    noisy round cannot flip the throughput regression gate.
    """
    if workload not in TIMING_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; choices: "
            f"{tuple(TIMING_WORKLOADS)}"
        )
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    trainer = TIMING_WORKLOADS[workload](backend, workers)
    try:
        if warmup > 0:
            trainer.run(warmup)
        # Time each round on its own and report the **median**: one
        # scheduler hiccup or GC pause then skews a single sample, not
        # the headline number the regression gate compares.
        samples = []
        for _ in range(rounds):
            start = perf_counter()
            trainer.run(1)
            samples.append(perf_counter() - start)
        digest = history_digest(trainer)
    finally:
        trainer.close()
    sec_per_round = float(np.median(samples))
    n_clients = len(trainer.clients)
    return {
        "backend": backend,
        "workers_requested": workers,
        "rounds_timed": rounds,
        "n_clients": n_clients,
        "n_params": trainer.workspace.n_params,
        "sec_per_round": sec_per_round,
        "sec_per_round_samples": samples,
        "clients_per_sec": n_clients / sec_per_round,
        "history_digest": digest,
    }


def time_im2col(reps: int = 200) -> Dict[str, object]:
    """Measure the im2col unfold with vs without ``ascontiguousarray``.

    The unfold reshapes a transposed strided window view, which NumPy
    must materialise as a fresh C-contiguous array whenever the kernel
    covers more than one element — so the historical trailing
    ``np.ascontiguousarray`` was a no-op copy check.  This measurement
    (recorded in ``BENCH_timing.json``) backs the decision to drop it.
    """
    rng = np.random.default_rng(_TIMING_SEED)
    # The digits-CNN first-layer shape at bench scale.
    x = rng.normal(size=(32, 4, 20, 20))
    kh = kw = 5

    def _strided(arr):
        return im2col(arr, kh, kw, 1)[0]

    def _ascontiguous(arr):
        return np.ascontiguousarray(im2col(arr, kh, kw, 1)[0])

    variants = (("strided_view", _strided), ("ascontiguousarray", _ascontiguous))
    totals = {name: 0.0 for name, _ in variants}
    for _, fn in variants:
        fn(x)  # warm the allocator
    # Interleave the variants so cache/CPU state biases neither side.
    for _ in range(reps):
        for name, fn in variants:
            start = perf_counter()
            fn(x)
            totals[name] += perf_counter() - start
    timings = {name: totals[name] / reps * 1e3 for name in totals}
    cols = _strided(x)
    return {
        "input_shape": list(x.shape),
        "kernel": [kh, kw],
        "reps": reps,
        "strided_view_ms": timings["strided_view"],
        "ascontiguousarray_ms": timings["ascontiguousarray"],
        "result_is_contiguous": bool(cols.flags["C_CONTIGUOUS"]),
        "kept": "strided_view",
    }


def time_batched_kernels(
    reps: int = 50, n_clients: int = 30
) -> Dict[str, object]:
    """Stacked vs per-client-looped kernels behind the batched backend.

    Measures the two compute shapes the ``batched`` executor vectorizes
    at digits-CNN bench scale: the dense GEMM as one 3-D ``np.matmul``
    over a leading client axis vs a Python loop of 2-D GEMMs, and the
    convolution unfold as one folded ``im2col`` over ``C * batch``
    images vs ``C`` per-client calls.  Also asserts the stacked results
    equal the looped ones bitwise — the micro-scale version of the
    backend's digest guarantee.
    """
    rng = np.random.default_rng(_TIMING_SEED)
    # Dense GEMM at roughly the digits-CNN head shape.
    x = rng.normal(size=(n_clients, 32, 128))
    w = rng.normal(size=(n_clients, 128, 64))
    # First-conv unfold shape per client.
    imgs = rng.normal(size=(n_clients, 8, 4, 20, 20))
    kh = kw = 5

    def _gemm_looped():
        return np.stack([x[c] @ w[c] for c in range(n_clients)])

    def _gemm_stacked():
        return np.matmul(x, w)

    def _im2col_looped():
        return [im2col(imgs[c], kh, kw, 1)[0] for c in range(n_clients)]

    def _im2col_folded():
        folded = imgs.reshape((-1,) + imgs.shape[2:])
        return im2col(folded, kh, kw, 1)[0]

    variants = (
        ("gemm_looped", _gemm_looped),
        ("gemm_stacked", _gemm_stacked),
        ("im2col_looped", _im2col_looped),
        ("im2col_folded", _im2col_folded),
    )
    totals = {name: 0.0 for name, _ in variants}
    for _, fn in variants:
        fn()  # warm the allocator
    # Interleave so cache/CPU state biases no variant.
    for _ in range(reps):
        for name, fn in variants:
            start = perf_counter()
            fn()
            totals[name] += perf_counter() - start
    ms = {name: totals[name] / reps * 1e3 for name in totals}
    gemm_equal = np.array_equal(_gemm_looped(), _gemm_stacked())
    cols_folded = _im2col_folded()
    n_per = imgs.shape[1]
    cols_equal = all(
        np.array_equal(cols_c, cols_folded[c * n_per:(c + 1) * n_per])
        for c, cols_c in enumerate(_im2col_looped())
    )
    return {
        "n_clients": n_clients,
        "reps": reps,
        "gemm_shape": [list(x.shape), list(w.shape)],
        "gemm_looped_ms": ms["gemm_looped"],
        "gemm_stacked_ms": ms["gemm_stacked"],
        "gemm_speedup": ms["gemm_looped"] / ms["gemm_stacked"],
        "gemm_bitwise_equal": bool(gemm_equal),
        "im2col_shape": list(imgs.shape),
        "im2col_looped_ms": ms["im2col_looped"],
        "im2col_folded_ms": ms["im2col_folded"],
        "im2col_speedup": ms["im2col_looped"] / ms["im2col_folded"],
        "im2col_bitwise_equal": bool(cols_equal),
    }


def time_checkpoint(reps: int = 5, rounds: int = 2) -> Dict[str, object]:
    """Measure the :mod:`repro.ckpt` save and load/verify paths.

    Runs the linear federation for a couple of rounds so the captured
    state is realistic (non-trivial feedback history, ledger, run
    history), then times ``save_checkpoint`` and digest-verifying
    ``read_checkpoint`` against a temp file.  Records bytes on disk so
    baseline diffs catch container-format size regressions too.
    """
    from repro.ckpt import read_checkpoint, save_checkpoint

    if reps < 1:
        raise ValueError("reps must be >= 1")
    trainer = make_linear_timing_trainer()
    try:
        trainer.run(rounds)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "bench.ckpt"
            save_checkpoint(trainer, path)  # warm allocator + dir entry
            save_total = 0.0
            for _ in range(reps):
                start = perf_counter()
                save_checkpoint(trainer, path)
                save_total += perf_counter() - start
            nbytes = path.stat().st_size
            load_total = 0.0
            for _ in range(reps):
                start = perf_counter()
                read_checkpoint(path)
                load_total += perf_counter() - start
    finally:
        trainer.close()
    return {
        "reps": reps,
        "rounds_before_save": rounds,
        "n_params": trainer.workspace.n_params,
        "n_clients": len(trainer.clients),
        "bytes_on_disk": nbytes,
        "sec_per_save": save_total / reps,
        "sec_per_load_verify": load_total / reps,
    }


def time_lint() -> Dict[str, object]:
    """Whole-program lint over ``src/repro``, cold vs warm cache.

    The warm figure is the second run against the cache the cold run
    just wrote: every file re-hashes but nothing re-parses, and the
    flow phase reuses its per-module findings.  ``speedup`` (cold over
    warm) is the number gated by ``tools/bench_compare.py``.
    """
    from repro.lint import ProjectAnalyzer, load_config

    target = Path(__file__).resolve().parents[1]  # .../src/repro
    config = load_config(target)
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "lint_cache.json"
        start = perf_counter()
        cold = ProjectAnalyzer(
            config=config, cache_path=cache, jobs=2
        ).analyze([str(target)])
        cold_s = perf_counter() - start
        start = perf_counter()
        warm = ProjectAnalyzer(
            config=config, cache_path=cache, jobs=2
        ).analyze([str(target)])
        warm_s = perf_counter() - start
    return {
        "files": cold.stats["files"],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "warm_cache_hits": warm.stats["cache_hits"],
        "findings": len(warm.violations),
    }


def time_obs_overhead(
    population: int = 100_000,
    cohort: int = 100,
    rounds: int = 16,
    sample_rate: float = 0.01,
) -> Dict[str, object]:
    """What the observability layer itself costs at population scale.

    Runs the store-backed scale federation three ways — tracing off,
    tracing with per-client spans head-sampled at ``sample_rate``, and
    tracing at full sampling — and records clients/sec for each.  The
    bench gate (``tools/bench_compare.py --max-obs-overhead``) holds
    the *sampled* mode's throughput cost to a few percent: sampling is
    what makes tracing affordable at scale.  ``identical_histories``
    asserts the tracer changed nothing about the run itself.

    The measurement is built to survive a noisy host, because the
    signal (a few hundred extra dict/hash operations per round) is
    tiny against scheduler jitter at ~60 ms/round: the three trainers
    run their timed rounds **interleaved round-robin** and each mode
    gets one untimed warm-up round.  ``overhead_vs_off`` is the
    **median of per-slot ratios** — within one round-robin slot the
    three modes run back-to-back under the same ambient load, so the
    slot-local ratio cancels drift (thermal, co-tenancy) that would
    corrupt any comparison of whole-run aggregates; the median then
    shrugs off slots where a context switch landed mid-round.
    ``sec_per_round`` is the minimum sample (the least-contaminated
    absolute estimate); clients/sec derives from it and is reported
    for context, not used for the overhead figure.
    """
    from repro.experiments.scale import make_scale_trainer

    modes = (
        ("off", False, 1.0),
        ("sampled", True, sample_rate),
        ("full", True, 1.0),
    )
    trainers = {}
    entries: Dict[str, Dict[str, object]] = {}
    try:
        for name, trace, rate in modes:
            trainers[name] = make_scale_trainer(
                population, cohort, trace=trace, trace_sample=rate
            )
            entries[name] = {
                "trace": trace,
                "sample": rate,
                "sec_per_round_samples": [],
            }
            trainers[name].run(1)  # warm-up, untimed
        for _ in range(rounds):
            for name, _, _ in modes:
                start = perf_counter()
                trainers[name].run(1)
                entries[name]["sec_per_round_samples"].append(
                    perf_counter() - start
                )
        digests = {
            name: history_digest(trainer)
            for name, trainer in trainers.items()
        }
        for name, _, _ in modes:
            samples = entries[name]["sec_per_round_samples"]
            sec = float(min(samples))
            events = trainers[name].tracer.memory_events()
            entries[name].update(
                sec_per_round=sec,
                clients_per_sec=cohort / sec,
                n_events=len(events) if events is not None else 0,
            )
    finally:
        for trainer in trainers.values():
            trainer.close()
    off_samples = entries["off"]["sec_per_round_samples"]
    for name in ("sampled", "full"):
        ratios = [
            mode_s / off_s
            for mode_s, off_s in zip(
                entries[name]["sec_per_round_samples"], off_samples
            )
        ]
        entries[name]["overhead_vs_off"] = float(np.median(ratios)) - 1.0
    return {
        "population": population,
        "cohort": cohort,
        "rounds": rounds,
        "modes": entries,
        "identical_histories": len(set(digests.values())) == 1,
    }


def time_async_vs_sync(rounds: int = 8) -> Dict[str, object]:
    """The async event engine vs the synchronous loop it wraps.

    Three runs of the linear federation: the plain synchronous trainer,
    its S=0 async twin (which must produce the **identical** history
    digest — the engine's sync-equivalence contract, gated by
    ``tools/bench_compare.py --check-async-digest``), and an S=2
    bounded-staleness run with stragglers, for which events/sec and the
    staleness spread (p50/p99) are recorded.
    """
    from repro.fl.events import AsyncConfig, AsyncFederatedTrainer

    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    sync_trainer = make_linear_timing_trainer()
    try:
        start = perf_counter()
        sync_trainer.run(rounds)
        sync_s = perf_counter() - start
        sync_digest = history_digest(sync_trainer)
    finally:
        sync_trainer.close()

    equiv = AsyncFederatedTrainer(
        make_linear_timing_trainer(), async_config=AsyncConfig()
    )
    try:
        start = perf_counter()
        equiv.run(rounds)
        equiv_s = perf_counter() - start
        equiv_digest = history_digest(equiv.trainer)
    finally:
        equiv.close()

    stale = AsyncFederatedTrainer(
        make_linear_timing_trainer(),
        async_config=AsyncConfig(staleness_bound=2, speed_sigma=1.0),
    )
    try:
        start = perf_counter()
        stale.run(rounds)
        stale_s = perf_counter() - start
        staleness = stale.history.staleness()
        # Every processed event: one dispatch per round plus one
        # arrival per surviving upload.
        n_events = rounds + int(
            sum(r.n_clients for r in stale.history)
        )
    finally:
        stale.close()

    return {
        "rounds": rounds,
        "sync_sec_per_round": sync_s / rounds,
        "async_s0_sec_per_round": equiv_s / rounds,
        "overhead_vs_sync": equiv_s / sync_s - 1.0,
        "sync_digest": sync_digest,
        "async_s0_digest": equiv_digest,
        "identical": equiv_digest == sync_digest,
        "stale": {
            "staleness_bound": 2,
            "sec_per_round": stale_s / rounds,
            "n_events": n_events,
            "events_per_sec": n_events / stale_s,
            "staleness_p50": float(np.percentile(staleness, 50)),
            "staleness_p99": float(np.percentile(staleness, 99)),
            "staleness_max": int(staleness.max()),
        },
    }


def run_timing(
    backends: Sequence[str] = DEFAULT_BACKENDS,
    workers: int = 4,
    rounds: int = 3,
    warmup: int = 1,
    workloads: Sequence[str] = ("digits_cnn", "linear"),
) -> Dict[str, object]:
    """The full timing sweep: every backend on every workload."""
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "workers": workers,
            "rounds_timed": rounds,
            "warmup_rounds": warmup,
            "backends": list(backends),
        },
        "workloads": {},
        "micro": {
            "im2col": time_im2col(),
            "batched_kernels": time_batched_kernels(),
            "checkpoint": time_checkpoint(),
            "lint": time_lint(),
            "obs_overhead": time_obs_overhead(),
            "async_vs_sync": time_async_vs_sync(),
        },
    }
    for workload in workloads:
        per_backend: Dict[str, object] = {}
        for backend in backends:
            per_backend[backend] = time_backend(
                workload, backend, workers=workers, rounds=rounds, warmup=warmup
            )
        serial = per_backend.get("serial")
        for entry in per_backend.values():
            entry["speedup_vs_serial"] = (
                serial["sec_per_round"] / entry["sec_per_round"]
                if serial is not None
                else None
            )
        digests = {e["history_digest"] for e in per_backend.values()}
        payload["workloads"][workload] = {
            "backends": per_backend,
            "identical_histories": len(digests) == 1,
        }
    return payload


def write_baseline(payload: Dict[str, object], path: Path) -> None:
    """Persist a timing payload as pretty, diff-stable JSON (atomically)."""
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def format_report(payload: Dict[str, object]) -> str:
    """Human-readable table of a timing payload (for the bench report)."""
    lines = [
        f"round-throughput timing (workers={payload['config']['workers']}, "
        f"cpus={payload['host']['cpu_count']})",
        "",
        f"{'workload':<12} {'backend':<8} {'sec/round':>10} "
        f"{'clients/s':>10} {'speedup':>8}  identical",
    ]
    for workload, data in payload["workloads"].items():
        for backend, entry in data["backends"].items():
            speedup = entry["speedup_vs_serial"]
            lines.append(
                f"{workload:<12} {backend:<8} "
                f"{entry['sec_per_round']:>10.4f} "
                f"{entry['clients_per_sec']:>10.2f} "
                f"{speedup:>7.2f}x  {data['identical_histories']}"
            )
    micro = payload["micro"]["im2col"]
    lines += [
        "",
        "im2col unfold (per call): "
        f"strided_view {micro['strided_view_ms']:.3f} ms vs "
        f"ascontiguousarray {micro['ascontiguousarray_ms']:.3f} ms "
        f"-> kept {micro['kept']}",
    ]
    bk = payload["micro"].get("batched_kernels")
    if bk:
        lines.append(
            f"batched kernels ({bk['n_clients']} clients): "
            f"gemm looped {bk['gemm_looped_ms']:.3f} ms vs "
            f"stacked {bk['gemm_stacked_ms']:.3f} ms "
            f"({bk['gemm_speedup']:.1f}x), "
            f"im2col looped {bk['im2col_looped_ms']:.3f} ms vs "
            f"folded {bk['im2col_folded_ms']:.3f} ms "
            f"({bk['im2col_speedup']:.1f}x)"
        )
    ckpt = payload["micro"].get("checkpoint")
    if ckpt:
        lines.append(
            "checkpoint (linear, "
            f"{ckpt['n_params']} params): "
            f"save {ckpt['sec_per_save'] * 1e3:.2f} ms, "
            f"load+verify {ckpt['sec_per_load_verify'] * 1e3:.2f} ms, "
            f"{ckpt['bytes_on_disk']} bytes on disk"
        )
    lint = payload["micro"].get("lint")
    if lint:
        lines.append(
            f"whole-program lint ({lint['files']} files): "
            f"cold {lint['cold_s']:.2f} s, warm {lint['warm_s']:.2f} s "
            f"-> {lint['speedup']:.1f}x"
        )
    avs = payload["micro"].get("async_vs_sync")
    if avs:
        stale = avs["stale"]
        lines.append(
            f"async engine (linear, {avs['rounds']} rounds): "
            f"S=0 overhead {avs['overhead_vs_sync'] * 100:+.1f}% vs sync, "
            f"digest identical: {avs['identical']}; "
            f"S={stale['staleness_bound']}: "
            f"{stale['events_per_sec']:.0f} events/s, "
            f"staleness p50 {stale['staleness_p50']:.1f} / "
            f"p99 {stale['staleness_p99']:.1f}"
        )
    obs = payload["micro"].get("obs_overhead")
    if obs:
        modes = obs["modes"]
        lines.append(
            f"obs overhead ({obs['population']:,} pop, "
            f"{obs['cohort']} cohort): "
            f"sampled {modes['sampled']['overhead_vs_off'] * 100:+.1f}%, "
            f"full {modes['full']['overhead_vs_off'] * 100:+.1f}% "
            f"clients/sec vs off; "
            f"identical histories: {obs['identical_histories']}"
        )
    return "\n".join(lines)
