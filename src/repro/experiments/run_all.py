"""Run every paper experiment in sequence and print all reports.

Usage:
    python -m repro.experiments.run_all [test|bench|paper]

The positional argument (or $REPRO_SCALE) selects the size preset.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from repro.experiments import (
    ablations,
    convergence_check,
    fig1_divergence,
    fig2_measures,
    fig3_delta_update,
    fig4_table1,
    fig5_table2,
    fig6_outliers,
    fig7_ec2,
    micro_overhead,
)

__all__ = ["main", "run_all"]

EXPERIMENTS = (
    ("fig1_divergence", fig1_divergence),
    ("fig2_measures", fig2_measures),
    ("fig3_delta_update", fig3_delta_update),
    ("fig4_table1", fig4_table1),
    ("fig5_table2", fig5_table2),
    ("fig6_outliers", fig6_outliers),
    ("fig7_ec2", fig7_ec2),
    ("micro_overhead", micro_overhead),
    ("convergence_check", convergence_check),
    ("ablations", ablations),
)


def run_all(scale: Optional[str] = None) -> None:
    """Execute every experiment at ``scale`` and print each report."""
    for name, module in EXPERIMENTS:
        start = time.perf_counter()
        result = module.run(scale)
        elapsed = time.perf_counter() - start
        print(f"\n{'=' * 72}\n{name}  ({elapsed:.1f}s)\n{'=' * 72}")
        print(result.report())


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else None
    run_all(scale)


if __name__ == "__main__":
    main()
