"""Fig. 2: Gaia's significance decays, CMFL's relevance stays stable.

The paper trains the MNIST CNN and plots (a) the average magnitude
significance ||update/model|| of all clients per iteration -- which
decays exponentially, making Gaia's threshold untunable -- and (b) the
average sign-alignment relevance of Eq. (9), which stays flat.

We record both measures for every client's update in every round of a
vanilla run of the digit workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.gaia import gaia_significance
from repro.baselines.vanilla import VanillaPolicy
from repro.core.relevance import relevance
from repro.experiments.workloads import DigitsWorkload, resolve_scale
from repro.utils.tables import format_table

__all__ = ["Fig2Result", "main", "run"]

_ROUNDS = {"test": 4, "bench": 40, "paper": 400}


@dataclass
class Fig2Result:
    """Per-round mean significance (Fig. 2a) and relevance (Fig. 2b)."""

    scale: str
    significance: np.ndarray  # (rounds,)
    relevance: np.ndarray  # (rounds,)

    def significance_decay_factor(self) -> float:
        """significance(first quarter) / significance(last quarter).

        The paper's Fig. 2a shows orders-of-magnitude decay; any value
        well above 1 reproduces the qualitative finding.
        """
        q = max(1, len(self.significance) // 4)
        return float(np.mean(self.significance[:q]) / np.mean(self.significance[-q:]))

    def relevance_drift(self) -> float:
        """|relevance(last quarter) - relevance(first quarter)|, absolute.

        Fig. 2b's claim is stability: this should stay small (the
        measure lives in [0, 1]).
        """
        q = max(1, len(self.relevance) // 4)
        return float(abs(np.mean(self.relevance[-q:]) - np.mean(self.relevance[:q])))

    def report(self) -> str:
        rows = [
            [
                "gaia significance",
                f"{self.significance[0]:.4f}",
                f"{self.significance[-1]:.4f}",
                f"decays {self.significance_decay_factor():.1f}x "
                "(paper: exponential decay)",
            ],
            [
                "cmfl relevance",
                f"{self.relevance[0]:.4f}",
                f"{self.relevance[-1]:.4f}",
                f"drift {self.relevance_drift():.3f} (paper: stable)",
            ],
        ]
        return format_table(
            ["measure", "first round", "last round", "behaviour"],
            rows,
            title=f"Fig 2 -- measure stability over iterations (scale={self.scale})",
        )


def run(scale: Optional[str] = None) -> Fig2Result:
    """Reproduce Figs. 2a/2b at the requested scale."""
    scale = resolve_scale(scale)
    rounds = _ROUNDS[scale]
    workload = DigitsWorkload(scale=scale)
    trainer = workload.make_trainer(VanillaPolicy(), rounds=rounds, eval_every=rounds)

    per_round_sig: list = []
    per_round_rel: list = []
    sig_acc: list = []
    rel_acc: list = []

    def hook(result, decision) -> None:
        del decision
        sig_acc.append(
            gaia_significance(result.update, trainer.server.global_params)
        )
        rel_acc.append(relevance(result.update, trainer.server.feedback))

    trainer.on_decision = hook
    for t in range(1, rounds + 1):
        trainer.run_round(t)
        per_round_sig.append(float(np.mean(sig_acc)))
        per_round_rel.append(float(np.mean(rel_acc)))
        sig_acc.clear()
        rel_acc.clear()

    return Fig2Result(
        scale=scale,
        significance=np.asarray(per_round_sig),
        relevance=np.asarray(per_round_rel),
    )


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
