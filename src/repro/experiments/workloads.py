"""Shared workload builders for the experiment modules.

The paper's two vanilla-FL workloads (Sec. V-A):

1. digit recognition with a two-conv-layer CNN, data sorted by label
   and split so each client sees very few classes (non-IID);
2. next-word prediction with a 2-layer LSTM, one speaking role per
   client.

Each builder returns a fresh :class:`~repro.fl.trainer.FederatedTrainer`
wired to the requested upload policy, so an experiment can run vanilla,
Gaia and CMFL from identical initial conditions (same seeds, same
shards, same initial weights).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core.policy import UploadPolicy
from repro.data.dataset import Dataset, train_test_split
from repro.data.partition import group_partition, label_shard_partition
from repro.data.shakespeare import make_dialogue_corpus
from repro.data.synthetic_digits import make_digit_dataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.digits_cnn import make_digits_cnn
from repro.models.nwp_lstm import make_nwp_lstm
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.optimizers import SGD
from repro.nn.schedules import InverseSqrtLR
from repro.utils.rng import child_rngs

__all__ = ["DigitsWorkload", "NWPWorkload", "Scale", "resolve_scale"]

SCALES = ("test", "bench", "paper")

#: Environment override for the default scale of every experiment.
SCALE_ENV_VAR = "REPRO_SCALE"


def resolve_scale(scale: Optional[str] = None) -> str:
    """Explicit argument > $REPRO_SCALE > "bench"."""
    chosen = scale or os.environ.get(SCALE_ENV_VAR) or "bench"
    if chosen not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {chosen!r}")
    return chosen


@dataclass(frozen=True)
class Scale:
    """Size knobs shared by the experiment presets."""

    n_clients: int
    samples_per_client: int
    rounds: int
    local_epochs: int
    batch_size: int
    eval_every: int


_DIGIT_SCALES = {
    "test": Scale(n_clients=6, samples_per_client=20, rounds=6,
                  local_epochs=1, batch_size=10, eval_every=2),
    "bench": Scale(n_clients=30, samples_per_client=40, rounds=50,
                   local_epochs=2, batch_size=5, eval_every=4),
    # The paper: 100 clients x 600 samples, E=4, B=2.
    "paper": Scale(n_clients=100, samples_per_client=600, rounds=900,
                   local_epochs=4, batch_size=2, eval_every=5),
}

_NWP_SCALES = {
    "test": Scale(n_clients=5, samples_per_client=60, rounds=5,
                  local_epochs=1, batch_size=16, eval_every=2),
    "bench": Scale(n_clients=10, samples_per_client=150, rounds=40,
                   local_epochs=4, batch_size=4, eval_every=5),
    "paper": Scale(n_clients=100, samples_per_client=66, rounds=2000,
                   local_epochs=4, batch_size=2, eval_every=10),
}


@dataclass
class DigitsWorkload:
    """The digit-CNN federation (paper workload 1), reproducibly seeded."""

    scale: str = "bench"
    seed: int = 7
    lr0: float = 0.12
    channels: tuple = (4, 8)
    hidden: int = 32
    image_size: int = 20
    shards_per_client: int = 2
    n_test: int = 250
    params: Scale = field(init=False)

    def __post_init__(self) -> None:
        self.scale = resolve_scale(self.scale)
        self.params = _DIGIT_SCALES[self.scale]
        if self.scale == "paper":
            self.channels = (32, 64)
            self.hidden = 512
            self.image_size = 28
            # The paper's split gives each client one contiguous
            # label-sorted slice.
            self.shards_per_client = 1
            self.n_test = 2000
        rngs = child_rngs(self.seed, 4)
        n_train = self.params.n_clients * self.params.samples_per_client
        self.train = make_digit_dataset(
            n_train, rng=rngs[0], image_size=self.image_size
        )
        self.test = make_digit_dataset(
            self.n_test, rng=rngs[1], image_size=self.image_size
        )
        self.partition = label_shard_partition(
            self.train.y,
            self.params.n_clients,
            shards_per_client=self.shards_per_client,
            rng=rngs[2],
        )

    def make_trainer(self, policy: UploadPolicy, **config_overrides) -> FederatedTrainer:
        """A fresh trainer (fresh model, same data/seeds) for ``policy``."""
        p = self.params
        rngs = child_rngs(self.seed + 1, p.n_clients + 1)
        model = make_digits_cnn(
            image_size=self.image_size,
            channels=self.channels,
            hidden=self.hidden,
            rng=rngs[0],
        )
        workspace = ModelWorkspace(
            model,
            SoftmaxCrossEntropy(),
            SGD(model.parameters(), lr=self.lr0),
            metric=accuracy,
        )
        clients = [
            FLClient(i, self.train.subset(part), rng=rngs[i + 1])
            for i, part in enumerate(self.partition)
        ]
        settings = dict(
            rounds=p.rounds,
            local_epochs=p.local_epochs,
            batch_size=p.batch_size,
            lr=InverseSqrtLR(self.lr0),
            eval_every=p.eval_every,
            seed=self.seed,
        )
        settings.update(config_overrides)
        config = FLConfig(**settings)
        return FederatedTrainer(
            workspace,
            clients,
            policy,
            config,
            eval_fn=lambda w: w.evaluate(self.test.x, self.test.y),
        )


@dataclass
class NWPWorkload:
    """The next-word-prediction LSTM federation (paper workload 2)."""

    scale: str = "bench"
    seed: int = 11
    lr0: float = 2.0
    embedding_dim: int = 16
    hidden: int = 32
    n_topics: int = 6
    words_per_topic: int = 25
    params: Scale = field(init=False)

    def __post_init__(self) -> None:
        self.scale = resolve_scale(self.scale)
        self.params = _NWP_SCALES[self.scale]
        if self.scale == "paper":
            self.embedding_dim = 96
            self.hidden = 256
            self.n_topics = 16
            self.words_per_topic = 100
        rngs = child_rngs(self.seed, 2)
        self.corpus = make_dialogue_corpus(
            n_roles=self.params.n_clients,
            words_per_role=self.params.samples_per_client + self.corpus_seq_len,
            n_topics=self.n_topics,
            words_per_topic=self.words_per_topic,
            rng=rngs[0],
        )
        full = self.corpus.as_dataset()
        # Hold out a global test slice, stratification-free (roles mix).
        self.train_indices_by_role = group_partition(self.corpus.roles)
        _, self.test = train_test_split(full, test_fraction=0.15, rng=rngs[1])

    @property
    def corpus_seq_len(self) -> int:
        return 10

    @property
    def vocab_size(self) -> int:
        return len(self.corpus.vocab)

    def make_trainer(self, policy: UploadPolicy, **config_overrides) -> FederatedTrainer:
        p = self.params
        rngs = child_rngs(self.seed + 1, p.n_clients + 1)
        model = make_nwp_lstm(
            self.vocab_size,
            embedding_dim=self.embedding_dim,
            hidden=self.hidden,
            rng=rngs[0],
        )
        workspace = ModelWorkspace(
            model,
            SoftmaxCrossEntropy(),
            SGD(model.parameters(), lr=self.lr0),
            metric=accuracy,
        )
        full = self.corpus.as_dataset()
        clients = [
            FLClient(i, full.subset(part), rng=rngs[i + 1])
            for i, part in enumerate(self.train_indices_by_role)
        ]
        settings = dict(
            rounds=p.rounds,
            local_epochs=p.local_epochs,
            batch_size=p.batch_size,
            lr=InverseSqrtLR(self.lr0),
            eval_every=p.eval_every,
            seed=self.seed,
        )
        settings.update(config_overrides)
        config = FLConfig(**settings)
        return FederatedTrainer(
            workspace,
            clients,
            policy,
            config,
            eval_fn=lambda w: w.evaluate(self.test.x, self.test.y),
        )
