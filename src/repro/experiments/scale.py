"""Population-scale axis: peak RSS and throughput vs pool size.

The paper's cross-device setting has a huge enrolled population with a
tiny active cohort per round (ROADMAP #2; the Optimal-Client-Sampling
line of work assumes the same regime).  This experiment measures what
that costs under the sharded :class:`~repro.fl.store.ClientStateStore`:
a fixed 100-client cohort federates over populations of 1k / 10k /
100k / 1M clients and we record **peak RSS** and **clients/sec** per
point.  With the store, memory follows the *touched* state — the
shared dataset plus the few shards the cohorts landed in — so RSS must
grow sublinearly in population (the gate in ``tools/bench_compare.py
--max-rss-growth`` holds the 100k point to <= 10x the 1k point).

The workload is deliberately population-independent everywhere except
the store: one fixed synthetic dataset is shared by all clients
through a :class:`~repro.fl.store.CyclicPartition` (O(1) descriptors,
slice views), the cohort is a fixed-``count``
:class:`~repro.fl.sampling.UniformSampler` drawing indices (O(cohort)
per round), and the model is the small logistic regression from the
timing workload.  Anything that still scales with population is
therefore a store regression, which is exactly what the bench gate is
for.

``ru_maxrss`` is a process-lifetime high-water mark, so one process
cannot honestly measure several populations — ``tools/bench_scale.py``
runs each point in a fresh subprocess (``python -m
repro.experiments.scale --population N --json``) and assembles
``BENCH_scale.json``.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
from time import perf_counter
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.fl.config import FLConfig
from repro.fl.sampling import UniformSampler
from repro.fl.store import ClientStateStore, CyclicPartition
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.utils.rng import child_rngs

__all__ = [
    "DEFAULT_POPULATIONS",
    "SCALE_SCHEMA",
    "format_point",
    "main",
    "make_scale_trainer",
    "peak_rss_kib",
    "run_scale_point",
]

SCALE_SCHEMA = "repro-bench-scale/v1"

#: The sweep tools/bench_scale.py runs by default.
DEFAULT_POPULATIONS = (1_000, 10_000, 100_000, 1_000_000)

_SCALE_SEED = 31

#: Rows in the shared dataset — fixed across populations on purpose.
_DATASET_ROWS = 4_096
_N_FEATURES = 64
_SAMPLES_PER_CLIENT = 50

#: Smaller shards than the store default: a cross-device cohort is a
#: sparse random draw, so almost every participant lands in its own
#: shard and the per-shard allocation is the marginal memory cost of
#: one touched client.
_SCALE_SHARD_SIZE = 1_024


def make_scale_trainer(
    population: int,
    cohort: int,
    backend: str = "serial",
    seed: int = _SCALE_SEED,
    trace: bool = False,
    trace_sample: float = 1.0,
    trace_path: Optional[str] = None,
) -> FederatedTrainer:
    """A store-backed federation of ``population`` clients.

    Everything except the store's population knob is constant: same
    dataset, same model, same cohort size — so differences across
    populations isolate what the population model itself costs.  The
    ``trace*`` knobs exist so the sweep can measure what observability
    itself costs at scale (tracing off vs sampled vs full).
    """
    if cohort > population:
        raise ValueError(
            f"cohort {cohort} exceeds population {population}"
        )
    rngs = child_rngs(seed, 4)
    w_true = rngs[0].normal(size=_N_FEATURES)
    x = rngs[1].normal(size=(_DATASET_ROWS, _N_FEATURES))
    y = (x @ w_true > 0).astype(np.int64)
    data = Dataset(x, y)
    model = make_logistic_regression(_N_FEATURES, rng=rngs[2])
    workspace = ModelWorkspace(
        model, SigmoidBinaryCrossEntropy(), SGD(model.parameters(), 0.3)
    )
    store = ClientStateStore(
        population,
        CyclicPartition(data, population, _SAMPLES_PER_CLIENT),
        seed=seed,
        shard_size=_SCALE_SHARD_SIZE,
    )
    config = FLConfig(
        rounds=100,
        local_epochs=2,
        batch_size=10,
        lr=ConstantLR(0.3),
        eval_every=10**9,
        executor=backend,
        trace=trace,
        trace_sample=trace_sample,
        trace_path=trace_path,
    )
    return FederatedTrainer(
        workspace,
        store,
        CMFLPolicy(InverseSqrtThreshold(0.8)),
        config,
        sampler=UniformSampler(count=cohort, rng=rngs[3]),
    )


def peak_rss_kib() -> int:
    """This process's peak resident set, in KiB.

    ``ru_maxrss`` is monotone over the process lifetime, which is why
    every population point must run in a fresh process to be honest.
    (Linux reports KiB; macOS reports bytes and is normalized here.)
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def run_scale_point(
    population: int,
    cohort: int = 100,
    rounds: int = 3,
    backend: str = "serial",
    seed: int = _SCALE_SEED,
    trace: bool = False,
    trace_sample: float = 1.0,
    trace_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run one population point and measure its cost envelope."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    build_start = perf_counter()
    trainer = make_scale_trainer(
        population,
        cohort,
        backend=backend,
        seed=seed,
        trace=trace,
        trace_sample=trace_sample,
        trace_path=trace_path,
    )
    build_s = perf_counter() - build_start
    try:
        samples = []
        for _ in range(rounds):
            start = perf_counter()
            trainer.run(1)
            samples.append(perf_counter() - start)
        store = trainer.store
        from repro.experiments.timing import history_digest

        digest = history_digest(trainer)
        point = {
            "population": population,
            "cohort": cohort,
            "rounds": rounds,
            "backend": backend,
            "build_s": build_s,
            "sec_per_round": float(np.median(samples)),
            "sec_per_round_samples": samples,
            "clients_per_sec": cohort / float(np.median(samples)),
            "peak_rss_kib": peak_rss_kib(),
            "store_nbytes": store.nbytes,
            "materialized_shards": store.materialized_shards,
            "shard_size": store.shard_size,
            "history_digest": digest,
            "trace": {
                "enabled": bool(trainer.tracer.enabled),
                "sample": trace_sample,
            },
        }
    finally:
        trainer.close()
    return point


def format_point(point: Dict[str, object]) -> str:
    """One human-readable sweep row."""
    return (
        f"population {point['population']:>9,}: "
        f"rss {point['peak_rss_kib'] / 1024:8.1f} MiB, "
        f"{point['clients_per_sec']:8.1f} clients/s, "
        f"{point['materialized_shards']:>4} shards "
        f"({point['store_nbytes'] / 1024:.0f} KiB store)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: measure one population point, print JSON or a report row.

    One invocation = one process = one honest ``ru_maxrss``; the sweep
    driver is ``tools/bench_scale.py``.
    """
    parser = argparse.ArgumentParser(description=main.__doc__.splitlines()[0])
    parser.add_argument("--population", type=int, required=True)
    parser.add_argument("--cohort", type=int, default=100)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--backend", default="serial")
    parser.add_argument("--seed", type=int, default=_SCALE_SEED)
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run with tracing on, to measure its memory/time overhead",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="per-client span sampling rate under --trace (default 1.0)",
    )
    parser.add_argument(
        "--trace-path",
        default=None,
        help="stream the trace to this JSONL file (implies --trace)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the point as machine-readable JSON on stdout",
    )
    args = parser.parse_args(argv)
    point = run_scale_point(
        args.population,
        cohort=args.cohort,
        rounds=args.rounds,
        backend=args.backend,
        seed=args.seed,
        trace=args.trace,
        trace_sample=args.trace_sample,
        trace_path=args.trace_path,
    )
    if args.json:
        print(json.dumps(point, sort_keys=True))
    else:
        print(format_point(point))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
