"""Fig. 6: eliminated updates concentrate on a small outlier population.

The paper inspects the HAR run and finds 37 of 142 clients account for
84.5% of all eliminated updates, and that those outliers' local models
diverge far more from the global model (Eq. 7) than the rest.

We reproduce both findings on the HAR MTL run and -- because our
generator knows the ground truth -- additionally score how well
"frequently eliminated" identifies the truly corrupted clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.divergence import normalized_model_divergence
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import ConstantThreshold
from repro.experiments.fig5_table2 import CMFL_THRESHOLDS, har_config, make_tasks
from repro.experiments.workloads import resolve_scale
from repro.mtl.mocha import MochaTrainer
from repro.utils.tables import format_table

__all__ = ["Fig6Result", "main", "run"]


@dataclass
class Fig6Result:
    scale: str
    elimination_counts: np.ndarray
    truth_outlier: np.ndarray
    predicted_outlier: np.ndarray
    divergence_outlier: np.ndarray
    divergence_clean: np.ndarray

    @property
    def elimination_share_of_outliers(self) -> float:
        """Fraction of all eliminations owned by predicted outliers
        (the paper's 84.5%)."""
        total = self.elimination_counts.sum()
        if total == 0:
            return 0.0
        return float(self.elimination_counts[self.predicted_outlier].sum() / total)

    def detection_precision_recall(self) -> tuple:
        """How well elimination frequency finds the corrupted clients."""
        tp = np.count_nonzero(self.predicted_outlier & self.truth_outlier)
        fp = np.count_nonzero(self.predicted_outlier & ~self.truth_outlier)
        fn = np.count_nonzero(~self.predicted_outlier & self.truth_outlier)
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn) if (tp + fn) else 0.0
        return precision, recall

    def report(self) -> str:
        precision, recall = self.detection_precision_recall()
        frac_out = float(np.mean(self.divergence_outlier > 1.0))
        frac_clean = float(np.mean(self.divergence_clean > 1.0))
        rows = [
            ["predicted outliers",
             int(self.predicted_outlier.sum()),
             "paper: 37 of 142"],
            ["eliminations owned by outliers",
             f"{self.elimination_share_of_outliers:.2f}",
             "paper: 0.845"],
            ["outlier d_j > 100% fraction", f"{frac_out:.2f}", "paper: >0.50"],
            ["non-outlier d_j > 100% fraction", f"{frac_clean:.2f}", "paper: 0.15"],
            ["median d_j outliers / clean",
             f"{np.median(self.divergence_outlier):.2f} / "
             f"{np.median(self.divergence_clean):.2f}",
             "outliers diverge more"],
            ["detection precision / recall",
             f"{precision:.2f} / {recall:.2f}",
             "(ground truth known only in simulation)"],
        ]
        return format_table(
            ["metric", "ours", "paper"],
            rows,
            title=f"Fig 6 -- outlier analysis on HAR (scale={self.scale})",
        )


def run(scale: Optional[str] = None) -> Fig6Result:
    """Reproduce Fig. 6 at the requested scale."""
    scale = resolve_scale(scale)
    tasks = make_tasks("har", scale)
    config = har_config(scale)
    trainer = MochaTrainer(
        tasks, CMFLPolicy(ConstantThreshold(CMFL_THRESHOLDS["har"])), config
    )
    trainer.run()

    counts = np.asarray(
        trainer.ledger.elimination_counts(len(tasks)), dtype=float
    )
    truth = np.asarray([t.is_outlier for t in tasks])
    # The paper flags clients with eliminations above a high absolute
    # count; scale-free equivalent: above the 70th percentile (their 37
    # of 142 is the top ~26%).
    cutoff = np.quantile(counts, 0.74)
    predicted = counts > cutoff

    # Divergence of the client-side models from the shared base.
    client_models = [trainer.task_weights(k) for k in range(len(tasks))]
    divergence_matrix = np.stack(
        [
            normalized_model_divergence([m], trainer.base)
            for m in client_models
        ]
    )
    per_client = divergence_matrix  # (clients, params)
    d_out = per_client[predicted].reshape(-1)
    d_clean = per_client[~predicted].reshape(-1)
    if d_out.size == 0 or d_clean.size == 0:
        raise RuntimeError("degenerate outlier split; adjust the cutoff")
    return Fig6Result(
        scale=scale,
        elimination_counts=counts,
        truth_outlier=truth,
        predicted_outlier=predicted,
        divergence_outlier=d_out,
        divergence_clean=d_clean,
    )


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
