"""Sec. V-C micro-benchmark: the relevance check is ~free.

The paper measures the CheckRelevance computation at <1.6 microseconds
(30-client NWP model) against ~1.25 s per client-side learning
iteration: <0.13% overhead.  We time both operations on this machine
with ``time.perf_counter`` over many repetitions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.relevance import relevance
from repro.data.shakespeare import make_dialogue_corpus
from repro.experiments.workloads import resolve_scale
from repro.fl.workspace import ModelWorkspace
from repro.models.nwp_lstm import make_nwp_lstm
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optimizers import SGD
from repro.nn.serialization import flatten_parameters, parameter_count
from repro.utils.tables import format_table

__all__ = ["MicroOverheadResult", "main", "run"]

_REPEATS = {"test": 2, "bench": 5, "paper": 20}


@dataclass
class MicroOverheadResult:
    scale: str
    n_params: int
    relevance_check_seconds: float
    local_iteration_seconds: float

    @property
    def overhead_fraction(self) -> float:
        return self.relevance_check_seconds / self.local_iteration_seconds

    def report(self) -> str:
        rows = [
            ["model parameters", self.n_params, "-"],
            ["relevance check (s)", f"{self.relevance_check_seconds:.2e}",
             "paper: <1.6e-6 (per check)"],
            ["local training iteration (s)",
             f"{self.local_iteration_seconds:.3f}", "paper: ~1.25"],
            ["overhead fraction", f"{self.overhead_fraction:.5f}",
             "paper: <0.0013"],
        ]
        return format_table(
            ["metric", "ours", "paper"],
            rows,
            title=f"Sec V-C -- relevance-check computation overhead "
            f"(scale={self.scale})",
        )


def run(scale: Optional[str] = None) -> MicroOverheadResult:
    """Time the relevance check against one local training iteration."""
    scale = resolve_scale(scale)
    repeats = _REPEATS[scale]

    corpus = make_dialogue_corpus(
        n_roles=4, words_per_role=120, n_topics=6, words_per_topic=25, rng=0
    )
    model = make_nwp_lstm(len(corpus.vocab), embedding_dim=16, hidden=32, rng=1)
    workspace = ModelWorkspace(
        model, SoftmaxCrossEntropy(), SGD(model.parameters(), 0.5)
    )
    n_params = parameter_count(model)
    params = flatten_parameters(model)
    rng = np.random.default_rng(2)
    update = rng.normal(size=n_params)
    feedback = rng.normal(size=n_params)

    start = time.perf_counter()
    for _ in range(repeats * 200):
        # Timing loop: the value is deliberately discarded.
        relevance(update, feedback)  # repro-lint: disable=unused-pure-result
    check_seconds = (time.perf_counter() - start) / (repeats * 200)

    # One "local training iteration" in the paper's sense: E passes of
    # minibatch SGD over the client's whole shard.
    data = corpus.as_dataset()
    n = min(len(data), 150)
    workspace.train_step(data.x[:8], data.y[:8], lr=0.5)  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        workspace.load_flat(params)
        for _epoch in range(2):
            for lo in range(0, n, 8):
                workspace.train_step(
                    data.x[lo : lo + 8], data.y[lo : lo + 8], 0.5
                )
    iter_seconds = (time.perf_counter() - start) / repeats

    return MicroOverheadResult(
        scale=scale,
        n_params=n_params,
        relevance_check_seconds=check_seconds,
        local_iteration_seconds=iter_seconds,
    )


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
