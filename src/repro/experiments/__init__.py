"""One module per paper figure/table, plus shared workload builders.

Every experiment module exposes ``run(scale=...)`` returning a result
object with a ``report()`` method that prints the same rows/series the
paper reports.  ``scale`` selects a preset: ``"test"`` (seconds, for
the test suite), ``"bench"`` (minutes, the default for the benchmark
harness) or ``"paper"`` (the paper's client counts and model sizes).
"""

from repro.experiments.workloads import (
    SCALES,
    DigitsWorkload,
    NWPWorkload,
    Scale,
    resolve_scale,
)

__all__ = ["Scale", "SCALES", "resolve_scale", "DigitsWorkload", "NWPWorkload"]
