"""Straggler/staleness sweep: bounded-staleness async vs synchronous.

The paper's synchronous barrier waits for every participant, so one
slow device prices the whole round (its EC2 emulation, Fig 7, shows
exactly that).  This experiment runs the same CMFL federation under
the event engine (:mod:`repro.fl.events`) across staleness bounds
``S in {0, 2, 8}`` and measures what relaxing the barrier buys and
costs on the virtual timeline:

- **S=0** is the synchronous baseline — bitwise the plain trainer's
  history, produced through the same event machinery;
- **S>0** lets up to ``S+1`` rounds overlap: the virtual finish time
  drops (stragglers no longer serialize the timeline), while the
  staleness column of the history records how old each aggregated
  round's base model was.

Cohorts are availability-sampled: a sinusoidal diurnal trace
(:func:`~repro.fl.sampling.diurnal_trace`) modulates which slice of
the pool is online each round, the cross-device regime of Ribero &
Vikalo 2020.  Straggling and churn come from the latency model's
``speed_sigma``/``drop_rate`` knobs.

A ``--trace-path`` run streams the ``async.*`` instruments; the final
metric values export to OpenMetrics text with::

    python -m repro.experiments.straggler --trace-path /tmp/s.jsonl
    python -m repro.obs export /tmp/s.jsonl
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import RelevanceTrigger, TriggerPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.events import AsyncConfig, AsyncFederatedTrainer
from repro.fl.sampling import AvailabilitySampler, diurnal_trace
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantLR
from repro.utils.rng import child_rngs
from repro.utils.tables import format_table

__all__ = [
    "DEFAULT_BOUNDS",
    "StragglerPoint",
    "StragglerResult",
    "main",
    "make_straggler_engine",
    "run",
]

#: The sweep's staleness bounds: synchronous, mild overlap, deep overlap.
DEFAULT_BOUNDS = (0, 2, 8)

_SEED = 47
_N_FEATURES = 16
_POOL = 24
_COHORT = 8
_SAMPLES_PER_CLIENT = 40


def make_straggler_engine(
    staleness_bound: int,
    rounds: int = 12,
    drop_rate: float = 0.1,
    speed_sigma: float = 1.0,
    seed: int = _SEED,
    trace_path: Optional[str] = None,
) -> AsyncFederatedTrainer:
    """One sweep point: availability-sampled CMFL under bound ``S``.

    Every point is built from the same seeds — the pool, the diurnal
    availability windows and the trigger decisions are identical across
    bounds, so differences isolate what the staleness bound itself does.
    """
    rngs = child_rngs(seed, _POOL + 4)
    w_true = rngs[0].normal(size=_N_FEATURES)
    clients = []
    for i in range(_POOL):
        x = rngs[1].normal(size=(_SAMPLES_PER_CLIENT, _N_FEATURES))
        y = (x @ w_true > 0).astype(np.int64)
        clients.append(FLClient(i, Dataset(x, y), rng=rngs[3 + i]))
    x_test = rngs[1].normal(size=(200, _N_FEATURES))
    test = Dataset(x_test, (x_test @ w_true > 0).astype(np.int64))
    model = make_logistic_regression(_N_FEATURES, rng=rngs[2])
    workspace = ModelWorkspace(
        model,
        SigmoidBinaryCrossEntropy(),
        SGD(model.parameters(), 0.5),
        metric=binary_accuracy,
    )
    config = FLConfig(
        rounds=rounds,
        local_epochs=1,
        batch_size=10,
        lr=ConstantLR(0.3),
        seed=seed,
        trace=trace_path is not None,
        trace_path=trace_path,
    )
    trainer = FederatedTrainer(
        workspace,
        clients,
        TriggerPolicy(RelevanceTrigger(InverseSqrtThreshold(0.8))),
        config,
        sampler=AvailabilitySampler(
            count=_COHORT,
            trace=diurnal_trace(period=8, low=0.3, high=0.9),
            rng=np.random.default_rng(seed + 1),
        ),
        eval_fn=lambda w: w.evaluate(test.x, test.y),
    )
    return AsyncFederatedTrainer(
        trainer,
        async_config=AsyncConfig(
            staleness_bound=staleness_bound,
            staleness_alpha=1.0,
            dispatch_interval_s=0.2,
            drop_rate=drop_rate,
            speed_sigma=speed_sigma,
        ),
    )


@dataclass
class StragglerPoint:
    """One staleness bound's measured outcome."""

    staleness_bound: int
    rounds: int
    virtual_finish_s: float
    staleness_mean: float
    staleness_p50: float
    staleness_p99: float
    staleness_max: int
    upload_fraction: float
    final_test_metric: Optional[float]
    final_train_loss: float

    def row(self) -> List[object]:
        return [
            self.staleness_bound,
            self.rounds,
            f"{self.virtual_finish_s:.1f}",
            f"{self.staleness_mean:.2f}",
            f"{self.staleness_p50:.0f}/{self.staleness_p99:.0f}",
            self.staleness_max,
            f"{self.upload_fraction:.2f}",
            "-"
            if self.final_test_metric is None
            else f"{self.final_test_metric:.3f}",
        ]

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class StragglerResult:
    rounds: int
    drop_rate: float
    speed_sigma: float
    points: List[StragglerPoint] = field(default_factory=list)

    def report(self) -> str:
        table = format_table(
            [
                "S",
                "rounds",
                "virtual finish (s)",
                "staleness mean",
                "p50/p99",
                "max",
                "upload frac",
                "final acc",
            ],
            [p.row() for p in self.points],
            title=(
                f"Straggler sweep (pool {_POOL}, cohort {_COHORT}, "
                f"drop {self.drop_rate}, sigma {self.speed_sigma})"
            ),
        )
        base = self.points[0]
        lines = [table, ""]
        for point in self.points[1:]:
            speedup = base.virtual_finish_s / point.virtual_finish_s
            lines.append(
                f"S={point.staleness_bound} finishes the virtual "
                f"timeline {speedup:.2f}x faster than the synchronous "
                f"barrier (S=0) at mean staleness "
                f"{point.staleness_mean:.2f}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rounds": self.rounds,
            "drop_rate": self.drop_rate,
            "speed_sigma": self.speed_sigma,
            "points": [p.to_dict() for p in self.points],
        }


def run(
    bounds: Sequence[int] = DEFAULT_BOUNDS,
    rounds: int = 12,
    drop_rate: float = 0.1,
    speed_sigma: float = 1.0,
    seed: int = _SEED,
    trace_path: Optional[str] = None,
    trace_bound: int = 2,
) -> StragglerResult:
    """Sweep the staleness bounds; optionally trace the ``trace_bound`` run."""
    result = StragglerResult(
        rounds=rounds, drop_rate=drop_rate, speed_sigma=speed_sigma
    )
    for bound in bounds:
        engine = make_straggler_engine(
            bound,
            rounds=rounds,
            drop_rate=drop_rate,
            speed_sigma=speed_sigma,
            seed=seed,
            trace_path=trace_path if bound == trace_bound else None,
        )
        with engine:
            history = engine.run(rounds)
        staleness = history.staleness()
        final = history.final
        result.points.append(
            StragglerPoint(
                staleness_bound=bound,
                rounds=len(history),
                # S=0 runs record virtual_time 0 (bitwise-sync contract),
                # so the barrier's timeline cost is reconstructed from
                # the engine's clock, which ticked either way.
                virtual_finish_s=float(engine.clock.now),
                staleness_mean=float(staleness.mean()),
                staleness_p50=float(np.percentile(staleness, 50)),
                staleness_p99=float(np.percentile(staleness, 99)),
                staleness_max=int(staleness.max()),
                upload_fraction=float(
                    np.mean([r.upload_fraction for r in history])
                ),
                final_test_metric=final.test_metric,
                final_train_loss=final.mean_train_loss,
            )
        )
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bounds", type=int, nargs="+", default=list(DEFAULT_BOUNDS)
    )
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--drop-rate", type=float, default=0.1)
    parser.add_argument("--speed-sigma", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--trace-path",
        default=None,
        help="stream the S=2 run's trace (async.* instruments) to this "
        "JSONL file, ready for `python -m repro.obs export`",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the sweep as machine-readable JSON on stdout",
    )
    args = parser.parse_args(argv)
    result = run(
        bounds=args.bounds,
        rounds=args.rounds,
        drop_rate=args.drop_rate,
        speed_sigma=args.speed_sigma,
        seed=args.seed,
        trace_path=args.trace_path,
    )
    if args.json:
        print(json.dumps(result.to_dict(), sort_keys=True))
    else:
        print(result.report())
        if args.trace_path:
            print(
                f"\ntraced the S=2 run to {args.trace_path}; export its "
                f"final async.* metrics with:\n"
                f"  python -m repro.obs export {args.trace_path}"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
