"""Fig. 4 + Table I: accuracy vs accumulated communication rounds.

The paper compares vanilla FL, Gaia and CMFL on both workloads and
reports the *saving* (vanilla's accumulated communication rounds over
the compared algorithm's) at two target accuracies per workload.  Like
the paper (Sec. V-A), each filtering policy is swept over several
thresholds and the best-performing configuration per target is
reported.

Paper numbers (Table I): MNIST CNN -- Gaia 1.25/1.13, CMFL 3.45/3.47;
NWP LSTM -- Gaia 1.42/1.26, CMFL 13.35/13.97.  Our smaller federation
preserves the ordering (CMFL > Gaia > 1) with smaller factors; the
``paper`` scale uses the full sweep and client counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.saving import best_reached_accuracy, rounds_to_accuracy
from repro.baselines.gaia import GaiaPolicy
from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy, UploadPolicy
from repro.core.thresholds import (
    ConstantThreshold,
    InverseSqrtThreshold,
    LinearDecayThreshold,
)
from repro.experiments.workloads import DigitsWorkload, NWPWorkload, resolve_scale
from repro.fl.history import RunHistory
from repro.utils.tables import format_table

__all__ = ["Fig4Result", "WorkloadComparison", "main", "run"]

#: Target accuracies per workload.  The paper uses 60%/80% on its real
#: datasets; our synthetic NWP corpus has a lower attainable ceiling, so
#: its targets sit at comparable relative heights of the vanilla curve.
TARGETS = {"digits_cnn": (0.6, 0.8), "nwp_lstm": (0.2, 0.3)}


def _digit_policies(scale: str, rounds: int) -> Dict[str, UploadPolicy]:
    sweep: Dict[str, UploadPolicy] = {
        "gaia(0.05)": GaiaPolicy(ConstantThreshold(0.05)),
        "cmfl(0.57)": CMFLPolicy(ConstantThreshold(0.57)),
        "cmfl(lin 0.58-0.50)": CMFLPolicy(
            LinearDecayThreshold(0.58, 0.50, rounds)
        ),
    }
    if scale == "paper":
        for v in (0.02, 0.1, 0.15, 0.2, 0.25, 0.3, 0.5, 0.7, 0.9):
            sweep[f"gaia({v})"] = GaiaPolicy(ConstantThreshold(v))
        for v in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9):
            sweep[f"cmfl({v})"] = CMFLPolicy(InverseSqrtThreshold(v))
    return sweep


def _nwp_policies(scale: str, rounds: int) -> Dict[str, UploadPolicy]:
    sweep: Dict[str, UploadPolicy] = {
        "gaia(0.25)": GaiaPolicy(ConstantThreshold(0.25)),
        "cmfl(lin 0.54-0.48)": CMFLPolicy(
            LinearDecayThreshold(0.54, 0.48, rounds)
        ),
    }
    if scale == "bench":
        sweep["gaia(0.15)"] = GaiaPolicy(ConstantThreshold(0.15))
    if scale == "paper":
        for v in (0.02, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9):
            sweep[f"gaia({v})"] = GaiaPolicy(ConstantThreshold(v))
        for v in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9):
            sweep[f"cmfl({v})"] = CMFLPolicy(InverseSqrtThreshold(v))
    return sweep


@dataclass
class WorkloadComparison:
    """All runs of one workload plus the derived savings."""

    workload: str
    targets: Tuple[float, float]
    histories: Dict[str, RunHistory] = field(default_factory=dict)

    def curve(self, run_name: str) -> Tuple[np.ndarray, np.ndarray]:
        """(accumulated rounds, accuracy) -- the Fig. 4 series."""
        _, comm, acc = self.histories[run_name].evaluated_points()
        return comm, acc

    def rounds_table(self) -> Dict[str, Dict[float, Optional[int]]]:
        return {
            name: {a: rounds_to_accuracy(h, a) for a in self.targets}
            for name, h in self.histories.items()
        }

    def best_saving(self, family: str, target: float) -> Optional[float]:
        """Best saving across the swept thresholds of ``family``.

        Mirrors the paper's methodology: for each algorithm the
        best-performing threshold (per target) is reported.  When the
        vanilla baseline never reaches ``target`` but a filtered run
        does, the saving is unbounded and reported as infinity.
        """
        base = rounds_to_accuracy(self.histories["vanilla"], target)
        if base is None:
            for name, history in self.histories.items():
                if (name.startswith(family)
                        and rounds_to_accuracy(history, target) is not None):
                    return float("inf")
            return None
        best: Optional[float] = None
        for name, history in self.histories.items():
            if not name.startswith(family):
                continue
            phi = rounds_to_accuracy(history, target)
            if phi is None or phi == 0:
                continue
            s = base / phi
            if best is None or s > best:
                best = s
        return best

    def report(self) -> str:
        paper_saving = {
            ("digits_cnn", "gaia"): (1.25, 1.13),
            ("digits_cnn", "cmfl"): (3.45, 3.47),
            ("nwp_lstm", "gaia"): (1.42, 1.26),
            ("nwp_lstm", "cmfl"): (13.35, 13.97),
        }
        lines = []
        rows = []
        for name, history in self.histories.items():
            phis = [rounds_to_accuracy(history, a) for a in self.targets]
            rows.append(
                [
                    name,
                    history.final.accumulated_rounds,
                    f"{best_reached_accuracy(history):.3f}",
                ]
                + [("-" if p is None else p) for p in phis]
            )
        lines.append(
            format_table(
                ["run", "total phi", "best acc"]
                + [f"phi@{a}" for a in self.targets],
                rows,
                title=f"Fig 4 -- {self.workload}: accuracy vs accumulated "
                "communication rounds",
            )
        )
        save_rows = []
        for family in ("gaia", "cmfl"):
            ours = [self.best_saving(family, a) for a in self.targets]
            paper_low, paper_high = paper_saving[(self.workload, family)]
            save_rows.append(
                [
                    family,
                    "-" if ours[0] is None else f"{ours[0]:.2f}",
                    f"{paper_low:.2f}",
                    "-" if ours[1] is None else f"{ours[1]:.2f}",
                    f"{paper_high:.2f}",
                ]
            )
        lines.append(
            format_table(
                ["algorithm",
                 f"saving@{self.targets[0]} (ours)", "paper low-acc",
                 f"saving@{self.targets[1]} (ours)", "paper high-acc"],
                save_rows,
                title=f"Table I -- saving, {self.workload}",
            )
        )
        return "\n\n".join(lines)


@dataclass
class Fig4Result:
    scale: str
    comparisons: Dict[str, WorkloadComparison]

    def report(self) -> str:
        return "\n\n".join(c.report() for c in self.comparisons.values())


def _run_workload(
    name: str,
    workload,
    policies: Dict[str, UploadPolicy],
) -> WorkloadComparison:
    comparison = WorkloadComparison(workload=name, targets=TARGETS[name])
    comparison.histories["vanilla"] = workload.make_trainer(VanillaPolicy()).run()
    for policy_name, policy in policies.items():
        comparison.histories[policy_name] = workload.make_trainer(policy).run()
    return comparison


def run(
    scale: Optional[str] = None, workloads: Optional[List[str]] = None
) -> Fig4Result:
    """Reproduce Fig. 4 and Table I.

    ``workloads`` restricts the run to a subset of
    {"digits_cnn", "nwp_lstm"} (both by default).
    """
    scale = resolve_scale(scale)
    selected = workloads or ["digits_cnn", "nwp_lstm"]
    comparisons: Dict[str, WorkloadComparison] = {}
    if "digits_cnn" in selected:
        digits = DigitsWorkload(scale=scale)
        comparisons["digits_cnn"] = _run_workload(
            "digits_cnn", digits, _digit_policies(scale, digits.params.rounds)
        )
    if "nwp_lstm" in selected:
        nwp = NWPWorkload(scale=scale)
        comparisons["nwp_lstm"] = _run_workload(
            "nwp_lstm", nwp, _nwp_policies(scale, nwp.params.rounds)
        )
    return Fig4Result(scale=scale, comparisons=comparisons)


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
