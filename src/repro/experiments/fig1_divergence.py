"""Fig. 1: CDF of the Normalized Model Divergence d_j.

The paper trains MNIST CNN and NWP LSTM across 100 clients and finds
that more than 50% of parameters diverge by over 100% between client
and global models (maxima 268 and 175) -- the motivation for filtering
client-specific outlier updates.

We run each federation for a few warm-up rounds, then have every client
perform one more local optimisation from the shared global model and
measure Eq. (7) across the resulting client-side parameter vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.cdf import empirical_cdf, fraction_below
from repro.analysis.divergence import normalized_model_divergence
from repro.baselines.vanilla import VanillaPolicy
from repro.experiments.workloads import DigitsWorkload, NWPWorkload, resolve_scale
from repro.fl.executor import RoundPlan
from repro.fl.trainer import FederatedTrainer
from repro.utils.tables import format_table

__all__ = ["Fig1Result", "main", "measure_divergence", "run"]

#: Warm-up rounds before divergence is measured, per scale.
_WARMUP = {"test": 2, "bench": 10, "paper": 50}


def measure_divergence(trainer: FederatedTrainer, warmup_rounds: int) -> np.ndarray:
    """Warm the federation up, then measure per-parameter divergence.

    Every client runs one local optimisation from the current global
    model; Eq. (7) compares the resulting local parameter vectors with
    the global vector.
    """
    if warmup_rounds > 0:
        trainer.run(warmup_rounds)
    global_params = trainer.server.global_params.copy()
    lr = trainer.config.lr(max(len(trainer.history), 1))
    # The paper measures fully locally-trained client models, so the
    # probe runs several times the per-round local epochs.  It fans out
    # through the trainer's executor like a regular round, so the probe
    # parallelises under the thread/process backends too.
    plan = RoundPlan(
        iteration=max(len(trainer.history), 1),
        lr=lr,
        local_epochs=4 * trainer.config.local_epochs,
        batch_size=trainer.config.batch_size,
        global_params=global_params,
    )
    results = trainer.executor.run_round(plan, trainer.clients)
    client_params = [global_params + r.update for r in results]
    return normalized_model_divergence(client_params, global_params)


@dataclass
class Fig1Result:
    """Divergence distributions for the two workloads."""

    scale: str
    divergences: Dict[str, np.ndarray]

    def stats(self, model: str) -> Dict[str, float]:
        d = self.divergences[model]
        return {
            "median": float(np.median(d)),
            "fraction_above_100pct": 1.0 - fraction_below(d, 1.0),
            "max": float(np.max(d)),
        }

    def cdf(self, model: str):
        return empirical_cdf(self.divergences[model])

    def report(self) -> str:
        rows = []
        paper = {
            "digits_cnn": (">0.5", 268.0),
            "nwp_lstm": (">0.5", 175.0),
        }
        for model, d in self.divergences.items():
            s = self.stats(model)
            frac_paper, max_paper = paper[model]
            rows.append(
                [
                    model,
                    f"{s['fraction_above_100pct']:.2f}",
                    frac_paper,
                    f"{s['max']:.1f}",
                    f"{max_paper:.0f}",
                    f"{s['median']:.2f}",
                ]
            )
        return format_table(
            ["model", "frac d>1 (ours)", "frac d>1 (paper)",
             "max d (ours)", "max d (paper)", "median d (ours)"],
            rows,
            title=f"Fig 1 -- Normalized Model Divergence (scale={self.scale})",
        )


def run(scale: Optional[str] = None) -> Fig1Result:
    """Reproduce Fig. 1 at the requested scale."""
    scale = resolve_scale(scale)
    warmup = _WARMUP[scale]

    digits = DigitsWorkload(scale=scale)
    digits_trainer = digits.make_trainer(VanillaPolicy())
    d_digits = measure_divergence(digits_trainer, warmup)

    nwp = NWPWorkload(scale=scale)
    nwp_trainer = nwp.make_trainer(VanillaPolicy())
    d_nwp = measure_divergence(nwp_trainer, warmup)

    return Fig1Result(
        scale=scale,
        divergences={"digits_cnn": d_digits, "nwp_lstm": d_nwp},
    )


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
