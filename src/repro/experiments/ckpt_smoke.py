"""Checkpoint/kill/resume smoke run — the repro.ckpt layer end to end.

Runs a small deterministic CMFL federation with checkpointing (and
optionally tracing) on, and can kill itself mid-round with SIGKILL to
simulate a crashed run::

    python -m repro.experiments.ckpt_smoke --rounds 6 \
        --ckpt-dir /tmp/run --trace /tmp/run/trace.jsonl --kill-at 4
    python -m repro.experiments.ckpt_smoke --rounds 6 \
        --ckpt-dir /tmp/run --trace /tmp/run/trace.jsonl --resume

The resume invocation restores the latest checkpoint and finishes the
remaining rounds; the kill-resume test drives exactly this pair of
commands in subprocesses and asserts the final history, parameters and
trace digest are bitwise-identical to an uninterrupted run's.

The federation is built by :func:`federation_parts` from a fixed seed,
so two processes construct identical starting states — the property
``FederatedTrainer.restore`` relies on.
"""

from __future__ import annotations

import argparse
import os
import signal
from typing import Any, Dict, Optional

import numpy as np

from repro.ckpt import latest_checkpoint
from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.trainer import FederatedTrainer
from repro.fl.workspace import ModelWorkspace
from repro.models.linear import make_logistic_regression
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.metrics import binary_accuracy
from repro.nn.optimizers import Momentum, SGD
from repro.nn.schedules import ConstantLR
from repro.utils.rng import child_rngs

__all__ = ["build_trainer", "federation_parts", "main"]

_SEED = 7
_FEATURES = 12
_SAMPLES_PER_CLIENT = 24


def federation_parts(
    rounds: int = 6,
    backend: str = "serial",
    workers: int = 2,
    ckpt_dir: Optional[str] = None,
    ckpt_every: int = 1,
    ckpt_keep: int = 0,
    trace_path: Optional[str] = None,
    optimizer: str = "momentum",
    n_clients: int = 4,
) -> Dict[str, Any]:
    """Deterministic constructor kwargs for the smoke federation.

    Returns the keyword arguments shared by ``FederatedTrainer(...)``
    and ``FederatedTrainer.restore(path, ...)`` — building them twice
    (in two different processes) yields identical objects, seed-for-
    seed, which is the contract a checkpoint restore needs.
    """
    rngs = child_rngs(_SEED, n_clients + 4)
    w_true = rngs[0].normal(size=_FEATURES)
    n = n_clients * _SAMPLES_PER_CLIENT
    x = rngs[1].normal(size=(n, _FEATURES))
    y = (x @ w_true > 0).astype(np.int64)
    data = Dataset(x, y)
    x_test = rngs[2].normal(size=(64, _FEATURES))
    y_test = (x_test @ w_true > 0).astype(np.int64)

    model = make_logistic_regression(_FEATURES, rng=rngs[3])
    if optimizer == "momentum":
        opt = Momentum(model.parameters(), 0.2, momentum=0.9)
    elif optimizer == "sgd":
        opt = SGD(model.parameters(), 0.2)
    else:
        raise ValueError(f"optimizer must be 'momentum' or 'sgd', got {optimizer!r}")
    workspace = ModelWorkspace(
        model, SigmoidBinaryCrossEntropy(), opt, metric=binary_accuracy
    )
    parts = iid_partition(len(data), n_clients, rng=_SEED)
    clients = [
        FLClient(i, data.subset(p), rng=rngs[4 + i])
        for i, p in enumerate(parts)
    ]
    config = FLConfig(
        rounds=rounds,
        local_epochs=2,
        batch_size=6,
        lr=ConstantLR(0.2),
        eval_every=1,
        executor=backend,
        executor_workers=workers,
        trace_path=trace_path,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=ckpt_every,
        checkpoint_keep=ckpt_keep,
    )
    return {
        "workspace": workspace,
        "clients": clients,
        "policy": CMFLPolicy(InverseSqrtThreshold(0.7)),
        "config": config,
        "eval_fn": lambda ws: ws.evaluate(x_test, y_test),
    }


def build_trainer(**kwargs: Any) -> FederatedTrainer:
    """A fresh smoke-federation trainer (see :func:`federation_parts`)."""
    return FederatedTrainer(**federation_parts(**kwargs))


def _install_kill(
    trainer: FederatedTrainer, kill_round: int, after_decisions: int = 2
) -> None:
    """SIGKILL this process mid-round ``kill_round``.

    Hooks ``on_decision`` so the kill lands in the middle of the
    decide phase — after a checkpoint exists for ``kill_round - 1``,
    with spans open and the trace mid-stream, the worst realistic spot.
    """
    seen = {"count": 0}

    def hook(result, decision):
        del result, decision
        if len(trainer.history) + 1 == kill_round:
            seen["count"] += 1
            if seen["count"] >= after_decisions:
                os.kill(os.getpid(), signal.SIGKILL)

    trainer.on_decision = hook


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--ckpt-dir", required=True)
    parser.add_argument("--trace", default=None,
                        help="stream the trace to this .jsonl file")
    parser.add_argument("--every", type=int, default=1)
    parser.add_argument("--keep", type=int, default=0,
                        help="checkpoints to retain (0 = all)")
    parser.add_argument("--optimizer", default="momentum",
                        choices=("momentum", "sgd"))
    parser.add_argument("--kill-at", type=int, default=None,
                        help="SIGKILL this process during round N")
    parser.add_argument("--resume", action="store_true",
                        help="restore the latest checkpoint and finish")
    args = parser.parse_args(argv)

    parts = federation_parts(
        rounds=args.rounds,
        backend=args.backend,
        workers=args.workers,
        ckpt_dir=args.ckpt_dir,
        ckpt_every=args.every,
        ckpt_keep=args.keep,
        trace_path=args.trace,
        optimizer=args.optimizer,
    )
    if args.resume:
        path = latest_checkpoint(args.ckpt_dir)
        if path is None:
            print(f"error: no checkpoint found in {args.ckpt_dir}")
            return 2
        trainer = FederatedTrainer.restore(path, **parts)
        remaining = args.rounds - len(trainer.history)
        print(f"resuming from {path} ({remaining} rounds remaining)")
        if remaining > 0:
            with trainer:
                trainer.run(remaining)
        else:
            trainer.close()
    else:
        trainer = FederatedTrainer(**parts)
        if args.kill_at is not None:
            _install_kill(trainer, args.kill_at)
        with trainer:
            trainer.run(args.rounds)

    final = trainer.history.final
    print(
        f"done: {len(trainer.history)} rounds, "
        f"accumulated_rounds={final.accumulated_rounds}, "
        f"test_metric={final.test_metric}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
