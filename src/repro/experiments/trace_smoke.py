"""Traced smoke run: the observability layer end to end.

Runs a short CMFL federation on the digits workload with tracing on,
then renders the per-phase breakdown and reconciles the trace's
``comm.*`` counters against the trainer's communication ledger — the
same cross-check the tier-1 gate test performs.  Useful as a manual
sanity check of the :mod:`repro.obs` pipeline::

    python -m repro.experiments.trace_smoke [--backend thread] \
        [--trace-path /tmp/trace.jsonl]
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.core.policy import CMFLPolicy
from repro.core.thresholds import InverseSqrtThreshold
from repro.experiments.workloads import DigitsWorkload
from repro.fl.trainer import FederatedTrainer

__all__ = ["main", "run_traced_smoke"]


def run_traced_smoke(
    rounds: int = 2,
    trace_path: Optional[str] = None,
    backend: str = "serial",
    workers: int = 2,
    threshold: float = 0.8,
) -> FederatedTrainer:
    """Run a short traced federation; returns the closed trainer.

    With no ``trace_path`` the events collect in memory
    (``trainer.tracer.memory_events()``); the trainer — and therefore
    its tracer, including the final metrics snapshot — is closed before
    returning.
    """
    workload = DigitsWorkload(scale="test")
    trainer = workload.make_trainer(
        CMFLPolicy(InverseSqrtThreshold(threshold)),
        executor=backend,
        executor_workers=workers,
        rounds=rounds,
        trace=True,
        trace_path=trace_path,
    )
    with trainer:
        trainer.run(rounds)
    return trainer


def main(argv=None) -> int:
    from repro.obs import comm_totals, format_report, load_trace

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--trace-path", default=None,
                        help="write the trace to this .jsonl file")
    args = parser.parse_args(argv)

    trainer = run_traced_smoke(
        rounds=args.rounds,
        trace_path=args.trace_path,
        backend=args.backend,
        workers=args.workers,
    )
    if args.trace_path:
        events = load_trace(args.trace_path)
    else:
        events = trainer.tracer.memory_events()
    print(format_report(events, history=trainer.history))
    totals = comm_totals(events)
    ok = (
        totals.get("comm.uploads") == trainer.ledger.accumulated_rounds
        and totals.get("comm.uploaded_bytes", 0)
        + totals.get("comm.status_bytes", 0)
        == trainer.ledger.total_bytes
    )
    print(
        f"\ntrace/ledger reconciliation: "
        f"{'OK' if ok else 'MISMATCH'} "
        f"(uploads={totals.get('comm.uploads')}, "
        f"bytes={trainer.ledger.total_bytes})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
