"""Ablations of CMFL's design choices (beyond the paper's evaluation).

Four design points the paper leaves implicit are measured here:

1. **Threshold schedule** -- constant vs the paper's 1/sqrt(t) decay vs
   linear decay.  The 1/sqrt(t) schedule falls under the relevance
   distribution within a handful of iterations (then filters nothing);
   constant and linear schedules keep filtering throughout.
2. **Feedback staleness** -- CMFL estimates the current global update
   with the previous one; how much does a k-rounds-stale estimate hurt?
3. **Gaia granularity** -- whole-update norm ratio (what the paper
   evaluates) vs the original per-parameter significance.
4. **Relevance granularity** -- Eq. (9) pools all parameters; per-layer
   relevance shows which layers carry the alignment signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.saving import best_reached_accuracy, rounds_to_accuracy
from repro.baselines.gaia import GaiaPolicy
from repro.core.policy import CMFLPolicy, UploadPolicy
from repro.core.relevance import relevance_per_segment
from repro.core.thresholds import (
    ConstantThreshold,
    InverseSqrtThreshold,
    LinearDecayThreshold,
)
from repro.experiments.workloads import DigitsWorkload, resolve_scale
from repro.fl.history import RunHistory
from repro.utils.tables import format_table

__all__ = ["AblationResult", "AblationRun", "main", "run"]

_ROUNDS = {"test": 4, "bench": 30, "paper": 300}


@dataclass
class AblationRun:
    name: str
    history: RunHistory

    def row(self, target: float) -> List:
        phi = rounds_to_accuracy(self.history, target)
        return [
            self.name,
            self.history.final.accumulated_rounds,
            f"{best_reached_accuracy(self.history):.3f}",
            "-" if phi is None else phi,
        ]


@dataclass
class AblationResult:
    scale: str
    target: float
    schedule_runs: List[AblationRun] = field(default_factory=list)
    staleness_runs: List[AblationRun] = field(default_factory=list)
    gaia_runs: List[AblationRun] = field(default_factory=list)
    layer_relevance: Dict[str, float] = field(default_factory=dict)

    def report(self) -> str:
        sections = []
        for title, runs in (
            ("Ablation: threshold schedule", self.schedule_runs),
            ("Ablation: feedback staleness", self.staleness_runs),
            ("Ablation: Gaia granularity", self.gaia_runs),
        ):
            sections.append(
                format_table(
                    ["variant", "total phi", "best acc", f"phi@{self.target}"],
                    [r.row(self.target) for r in runs],
                    title=title,
                )
            )
        if self.layer_relevance:
            sections.append(
                format_table(
                    ["layer", "mean relevance"],
                    [[k, f"{v:.3f}"] for k, v in self.layer_relevance.items()],
                    title="Ablation: per-layer relevance (measurement)",
                )
            )
        return "\n\n".join(sections)


def _run(workload: DigitsWorkload, policy: UploadPolicy, rounds: int,
         **overrides) -> RunHistory:
    trainer = workload.make_trainer(policy, rounds=rounds, **overrides)
    return trainer.run()


def run(scale: Optional[str] = None) -> AblationResult:
    """Run all four ablations on the digit workload."""
    scale = resolve_scale(scale)
    rounds = _ROUNDS[scale]
    target = 0.6 if scale != "test" else 0.2
    workload = DigitsWorkload(scale=scale)
    result = AblationResult(scale=scale, target=target)

    # 1. threshold schedules
    for name, schedule in (
        ("constant(0.57)", ConstantThreshold(0.57)),
        ("inv-sqrt(0.8) [paper]", InverseSqrtThreshold(0.8)),
        ("linear(0.6->0.5)", LinearDecayThreshold(0.6, 0.5, rounds)),
    ):
        history = _run(workload, CMFLPolicy(schedule), rounds)
        result.schedule_runs.append(AblationRun(name, history))

    # 2. feedback staleness
    for staleness in (1, 3):
        trainer = workload.make_trainer(
            CMFLPolicy(ConstantThreshold(0.57)), rounds=rounds
        )
        trainer.server.estimator.staleness = staleness
        history = trainer.run()
        result.staleness_runs.append(
            AblationRun(f"staleness={staleness}", history)
        )

    # 3. Gaia granularity
    for name, policy in (
        ("norm-ratio(0.05)", GaiaPolicy(ConstantThreshold(0.05))),
        (
            "per-parameter(0.05)",
            GaiaPolicy(
                ConstantThreshold(0.05),
                mode="per_parameter",
                min_significant_fraction=0.3,
            ),
        ),
    ):
        history = _run(workload, policy, rounds)
        result.gaia_runs.append(AblationRun(name, history))

    # 4. per-layer relevance measurement on a short vanilla-style run.
    trainer = workload.make_trainer(CMFLPolicy(ConstantThreshold(0.0)),
                                    rounds=max(4, rounds // 4))
    boundaries: List[int] = []
    names: List[str] = []
    offset = 0
    for p in trainer.workspace.model.parameters():
        offset += p.size
        boundaries.append(offset)
        names.append(p.name)
    sums = np.zeros(len(boundaries))
    count = 0

    def hook(res, dec) -> None:
        nonlocal count
        feedback = trainer.server.feedback
        if not np.any(feedback):
            return
        sums[:] += relevance_per_segment(res.update, feedback, boundaries)
        count += 1

    trainer.on_decision = hook
    trainer.run()
    if count:
        for name, value in zip(names, sums / count):
            result.layer_relevance[name] = float(value)
    return result


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
