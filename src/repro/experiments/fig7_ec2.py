"""Fig. 7: the cluster (EC2) emulation of the NWP workload.

The paper's 30-node EC2 deployment re-runs the NWP LSTM comparison on a
real master/slave prototype and reports (a) the accuracy-vs-rounds
curves (Fig. 7a, same shape as the simulation) and (b) the uploaded
data volume in MB at three accuracy levels (Fig. 7b), where CMFL ships
6.4-7.1x less data.  Sec. V-C also measures the relevance check at
<0.13% of a local training iteration.

We replay the same federated rounds through the discrete-event cluster
emulator of :mod:`repro.emu`, which accounts every protocol message
byte-by-byte (model broadcast with feedback, full updates, tiny status
notices for withheld updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.saving import rounds_to_accuracy
from repro.baselines.gaia import GaiaPolicy
from repro.baselines.vanilla import VanillaPolicy
from repro.core.policy import CMFLPolicy, UploadPolicy
from repro.core.thresholds import ConstantThreshold, LinearDecayThreshold
from repro.emu.cluster import ClusterEmulator, EmulationReport
from repro.experiments.workloads import NWPWorkload, resolve_scale
from repro.fl.history import RunHistory
from repro.utils.smoothing import moving_average
from repro.utils.tables import format_table

__all__ = ["Fig7Result", "main", "run"]

#: Accuracy levels for the Fig. 7b byte-volume comparison.
ACCURACY_LEVELS = {"test": (0.05,), "bench": (0.12, 0.18, 0.22),
                   "paper": (0.5, 0.6, 0.7)}

_ROUNDS = {"test": 4, "bench": 30, "paper": 600}


def _policies(rounds: int) -> Dict[str, UploadPolicy]:
    return {
        "vanilla": VanillaPolicy(),
        "gaia": GaiaPolicy(ConstantThreshold(0.15)),
        "cmfl": CMFLPolicy(LinearDecayThreshold(0.54, 0.48, rounds)),
    }


def _megabytes_at_accuracy(
    history: RunHistory, report: EmulationReport, target: float
) -> Optional[float]:
    """Uploaded MB when the smoothed accuracy first reaches ``target``."""
    evaluated = [r for r in history.records if r.test_metric is not None]
    if not evaluated:
        return None
    acc = moving_average([r.test_metric for r in evaluated], 3)
    hits = np.flatnonzero(acc >= target)
    if hits.size == 0:
        return None
    # Uploaded bytes scale with accumulated rounds; the ledger's
    # total_bytes at that record already counts updates + statuses.
    return evaluated[hits[0]].total_bytes / 1e6


@dataclass
class Fig7Result:
    scale: str
    histories: Dict[str, RunHistory]
    reports: Dict[str, EmulationReport]
    levels: Tuple[float, ...]

    def curve(self, name: str):
        _, comm, acc = self.histories[name].evaluated_points()
        return comm, acc

    def data_reduction(self, target: float) -> Optional[float]:
        """vanilla MB / CMFL MB at ``target`` (paper: 6.4-7.1x)."""
        mb_v = _megabytes_at_accuracy(
            self.histories["vanilla"], self.reports["vanilla"], target
        )
        mb_c = _megabytes_at_accuracy(
            self.histories["cmfl"], self.reports["cmfl"], target
        )
        if mb_v is None or mb_c is None or mb_c == 0:
            return None
        return mb_v / mb_c

    def report(self) -> str:
        lines: List[str] = []
        rows = []
        for name, history in self.histories.items():
            report = self.reports[name]
            phis = [rounds_to_accuracy(history, a) for a in self.levels]
            rows.append(
                [
                    name,
                    history.final.accumulated_rounds,
                    f"{report.uploaded_megabytes:.2f}",
                    f"{report.simulated_seconds:.1f}",
                ]
                + [("-" if p is None else p) for p in phis]
            )
        lines.append(
            format_table(
                ["policy", "total phi", "uploaded MB", "sim seconds"]
                + [f"phi@{a}" for a in self.levels],
                rows,
                title=f"Fig 7a -- cluster emulation, NWP LSTM (scale={self.scale})",
            )
        )
        reduction_rows = []
        for level in self.levels:
            r = self.data_reduction(level)
            reduction_rows.append(
                [f"acc {level}", "-" if r is None else f"{r:.2f}",
                 "paper: 6.4-7.1x"]
            )
        overhead = self.reports["cmfl"].relevance_overhead_fraction()
        reduction_rows.append(
            ["relevance check / local compute", f"{overhead:.5f}",
             "paper: <0.0013"]
        )
        lines.append(
            format_table(
                ["metric", "ours", "paper"],
                reduction_rows,
                title="Fig 7b -- uploaded data reduction (vanilla / CMFL)",
            )
        )
        return "\n\n".join(lines)


def run(scale: Optional[str] = None) -> Fig7Result:
    """Reproduce Figs. 7a/7b at the requested scale."""
    scale = resolve_scale(scale)
    rounds = _ROUNDS[scale]
    levels = ACCURACY_LEVELS[scale]
    histories: Dict[str, RunHistory] = {}
    reports: Dict[str, EmulationReport] = {}
    for name, policy in _policies(rounds).items():
        workload = NWPWorkload(scale=scale)
        trainer = workload.make_trainer(policy, rounds=rounds)
        emulator = ClusterEmulator(
            trainer, feedback_in_broadcast=(name == "cmfl")
        )
        reports[name] = emulator.run(rounds)
        histories[name] = trainer.history
    return Fig7Result(
        scale=scale, histories=histories, reports=reports, levels=levels
    )


def main() -> None:
    print(run().report())


if __name__ == "__main__":
    main()
