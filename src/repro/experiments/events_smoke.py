"""Async-engine kill/resume smoke run — repro.fl.events end to end.

The asynchronous twin of :mod:`repro.experiments.ckpt_smoke`: a small
deterministic CMFL federation driven by the event engine with bounded
staleness, checkpointing (and optionally tracing) on, able to SIGKILL
itself mid-round::

    python -m repro.experiments.events_smoke --rounds 6 \
        --ckpt-dir /tmp/run --trace /tmp/run/trace.jsonl --kill-at 4
    python -m repro.experiments.events_smoke --rounds 6 \
        --ckpt-dir /tmp/run --trace /tmp/run/trace.jsonl --resume

A checkpoint taken mid-timeline carries the virtual clock, the event
queue and every in-flight round's computed results, so the resumed
engine continues the exact schedule — the kill-resume test asserts the
final history, parameters and trace digest are bitwise-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import argparse

from repro.ckpt import latest_checkpoint
from repro.experiments.ckpt_smoke import _install_kill, federation_parts
from repro.fl.events import AsyncConfig, AsyncFederatedTrainer
from repro.fl.trainer import FederatedTrainer

__all__ = ["async_config", "main"]


def async_config(staleness_bound: int = 2) -> AsyncConfig:
    """The smoke run's engine knobs (shared by kill and resume legs).

    The dispatch interval spaces rounds out on the virtual timeline so
    closes do not cluster into one arrival event — checkpoints then
    genuinely carry in-flight rounds, which is the machinery this smoke
    run exists to exercise.
    """
    return AsyncConfig(
        staleness_bound=staleness_bound,
        staleness_alpha=1.0,
        dispatch_interval_s=0.4,
        speed_sigma=1.0,
        drop_rate=0.1,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--staleness-bound", type=int, default=2)
    parser.add_argument("--ckpt-dir", required=True)
    parser.add_argument("--trace", default=None,
                        help="stream the trace to this .jsonl file")
    parser.add_argument("--every", type=int, default=1)
    parser.add_argument("--keep", type=int, default=0,
                        help="checkpoints to retain (0 = all)")
    parser.add_argument("--kill-at", type=int, default=None,
                        help="SIGKILL this process during round N")
    parser.add_argument("--resume", action="store_true",
                        help="restore the latest checkpoint and finish")
    args = parser.parse_args(argv)

    parts = federation_parts(
        rounds=args.rounds,
        ckpt_dir=args.ckpt_dir,
        ckpt_every=args.every,
        ckpt_keep=args.keep,
        trace_path=args.trace,
    )
    cfg = async_config(args.staleness_bound)
    if args.resume:
        path = latest_checkpoint(args.ckpt_dir)
        if path is None:
            print(f"error: no checkpoint found in {args.ckpt_dir}")
            return 2
        engine = AsyncFederatedTrainer.restore(
            path, async_config=cfg, **parts
        )
        remaining = args.rounds - len(engine.history)
        print(f"resuming from {path} ({remaining} rounds remaining)")
        with engine:
            if remaining > 0:
                engine.run(remaining)
    else:
        engine = AsyncFederatedTrainer(
            FederatedTrainer(**parts), async_config=cfg
        )
        if args.kill_at is not None:
            _install_kill(engine.trainer, args.kill_at)
        with engine:
            engine.run(args.rounds)

    final = engine.history.final
    print(
        f"done: {len(engine.history)} rounds, "
        f"staleness_max={engine.trainer.ledger.staleness_max}, "
        f"virtual_time={final.virtual_time:.3f}, "
        f"test_metric={final.test_metric}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
