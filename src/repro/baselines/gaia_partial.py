"""Original-Gaia partial synchronisation.

Hsieh et al.'s Gaia does not drop whole updates: it withholds the
*individual parameters* whose relative change |u_j / x_j| is below the
threshold and ships only the significant ones.  The paper under
reproduction evaluates the whole-update variant
(:class:`repro.baselines.gaia.GaiaPolicy`); this class implements the
faithful per-parameter protocol so the two can be compared.

Within the engine's all-or-nothing upload interface, a partial sync is
an upload whose insignificant coordinates are zeroed (they contribute
nothing to the aggregate, exactly as if they had not been sent) with
the wire ledger charged only for the significant ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.core.policy import PolicyContext, UploadDecision, UploadPolicy
from repro.core.thresholds import ThresholdSchedule
from repro.nn.serialization import STATUS_MESSAGE_BYTES

__all__ = ["GaiaPartialPolicy", "PartialSyncStats"]

_EPS = 1e-12

#: Bytes per shipped coordinate: 4 for the value plus 4 for its index.
SPARSE_COORD_BYTES = 8


@dataclass
class PartialSyncStats:
    """How much the partial protocol actually shipped."""

    shipped_bytes: int = 0
    dense_equivalent_bytes: int = 0
    significant_fractions: List[float] = field(default_factory=list)

    @property
    def mean_significant_fraction(self) -> float:
        if not self.significant_fractions:
            return 0.0
        return float(np.mean(self.significant_fractions))

    @property
    def bytes_saved_ratio(self) -> float:
        """Dense bytes over shipped bytes (>1 means the protocol saved)."""
        if self.shipped_bytes == 0:
            return float("inf")
        return self.dense_equivalent_bytes / self.shipped_bytes


class GaiaPartialPolicy(UploadPolicy):
    """Ship only the individually significant coordinates of each update.

    The upload always happens (Gaia never skips a worker entirely), but
    insignificant coordinates are zeroed in place before aggregation and
    the stats ledger records the sparse wire cost.  An update whose
    coordinates are *all* insignificant degenerates to a status message.
    """

    name = "gaia_partial"

    def __init__(self, threshold: ThresholdSchedule) -> None:
        self.threshold = threshold  # ckpt: transient — schedule rebuilt from config
        self.stats = PartialSyncStats()

    def state_dict(self) -> Dict[str, Any]:
        """The stats ledger accumulates across rounds and must survive
        a checkpoint resume, or reported savings silently reset."""
        return {
            "shipped_bytes": self.stats.shipped_bytes,
            "dense_equivalent_bytes": self.stats.dense_equivalent_bytes,
            "significant_fractions": list(self.stats.significant_fractions),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.stats = PartialSyncStats(
            shipped_bytes=int(state["shipped_bytes"]),
            dense_equivalent_bytes=int(state["dense_equivalent_bytes"]),
            significant_fractions=[
                float(f) for f in state["significant_fractions"]
            ],
        )

    def decide(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        thr = self.threshold(ctx.iteration)
        model = np.asarray(ctx.global_params, dtype=float).reshape(-1)
        ratios = np.abs(update) / np.maximum(np.abs(model), _EPS)
        significant = ratios >= thr
        fraction = float(np.mean(significant))
        self.stats.significant_fractions.append(fraction)
        self.stats.dense_equivalent_bytes += 4 * update.size

        n_kept = int(np.count_nonzero(significant))
        if n_kept == 0:
            self.stats.shipped_bytes += STATUS_MESSAGE_BYTES
            return UploadDecision(upload=False, score=fraction, threshold=thr)
        update[~significant] = 0.0
        self.stats.shipped_bytes += n_kept * SPARSE_COORD_BYTES
        return UploadDecision(upload=True, score=fraction, threshold=thr)
