"""Gaia-style magnitude significance filtering (Hsieh et al., NSDI'17).

Gaia judges a local update by its magnitude relative to the current
model, ||Update / Model||: updates below a threshold are "insignificant"
and withheld.  The paper applies this at whole-update granularity
(Sec. II-C / Fig. 2a plot exactly this quantity); the original
per-parameter granularity is provided as an alternative mode for the
ablation benchmark.

As the paper's Sec. III-B explains, this measure decays exponentially
as training converges, which is why a fixed (or even 1/sqrt(t))
threshold either stalls training or filters almost nothing.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import PolicyContext, UploadDecision, UploadPolicy
from repro.core.thresholds import ThresholdSchedule

__all__ = ["GaiaPolicy", "gaia_significance"]

_EPS = 1e-12

MODES = ("norm_ratio", "per_parameter")


def gaia_significance(
    update: np.ndarray, model: np.ndarray, mode: str = "norm_ratio"
) -> float:
    """Magnitude significance of ``update`` against ``model``.

    ``norm_ratio``: ||u||_2 / ||x||_2 over the whole vector.
    ``per_parameter``: the fraction of parameters with |u_j / x_j|
    exceeding... no single scalar exists for that mode, so it returns
    the *mean* |u_j / x_j|; the per-parameter decision happens in
    :class:`GaiaPolicy`.
    """
    u = np.asarray(update, dtype=float).reshape(-1)
    x = np.asarray(model, dtype=float).reshape(-1)
    if u.shape != x.shape:
        raise ValueError(f"shapes differ: {u.shape} vs {x.shape}")
    if u.size == 0:
        raise ValueError("vectors cannot be empty")
    if mode == "norm_ratio":
        return float(np.linalg.norm(u) / max(np.linalg.norm(x), _EPS))
    if mode == "per_parameter":
        return float(np.mean(np.abs(u) / np.maximum(np.abs(x), _EPS)))
    raise ValueError(f"unknown mode {mode!r}; choices: {MODES}")


class GaiaPolicy(UploadPolicy):
    """Upload iff the magnitude significance reaches the threshold.

    ``mode='norm_ratio'`` (default) reproduces what the paper evaluated;
    ``mode='per_parameter'`` uploads iff the *fraction* of individually
    significant parameters reaches ``min_significant_fraction``.
    """

    name = "gaia"

    def __init__(
        self,
        threshold: ThresholdSchedule,
        mode: str = "norm_ratio",
        min_significant_fraction: float = 0.01,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choices: {MODES}")
        if not 0.0 < min_significant_fraction <= 1.0:
            raise ValueError("min_significant_fraction must be in (0, 1]")
        self.threshold = threshold  # ckpt: transient — schedule rebuilt from config
        self.mode = mode  # ckpt: transient — constructor constant
        self.min_significant_fraction = min_significant_fraction  # ckpt: transient — constructor constant

    def decide(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        thr = self.threshold(ctx.iteration)
        if self.mode == "norm_ratio":
            score = gaia_significance(update, ctx.global_params, "norm_ratio")
            return UploadDecision(upload=score >= thr, score=score, threshold=thr)
        u = np.asarray(update, dtype=float).reshape(-1)
        x = np.asarray(ctx.global_params, dtype=float).reshape(-1)
        ratios = np.abs(u) / np.maximum(np.abs(x), _EPS)
        fraction = float(np.mean(ratios >= thr))
        return UploadDecision(
            upload=fraction >= self.min_significant_fraction,
            score=fraction,
            threshold=thr,
        )

    def __repr__(self) -> str:
        return f"GaiaPolicy(threshold={self.threshold!r}, mode={self.mode!r})"
