"""Baseline upload policies the paper compares against."""

from repro.baselines.vanilla import VanillaPolicy
from repro.baselines.gaia import GaiaPolicy, gaia_significance
from repro.baselines.gaia_partial import GaiaPartialPolicy

__all__ = ["VanillaPolicy", "GaiaPolicy", "GaiaPartialPolicy", "gaia_significance"]
