"""Vanilla Federated Learning: every client uploads every round."""

from __future__ import annotations

import numpy as np

from repro.core.policy import PolicyContext, UploadDecision, UploadPolicy

__all__ = ["VanillaPolicy"]


class VanillaPolicy(UploadPolicy):
    """The no-filtering baseline (McMahan et al.'s synchronous FL)."""

    name = "vanilla"

    def decide(self, update: np.ndarray, ctx: PolicyContext) -> UploadDecision:
        del update, ctx
        return UploadDecision(upload=True, score=1.0, threshold=0.0)

    def __repr__(self) -> str:
        return "VanillaPolicy()"
