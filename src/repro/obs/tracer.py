"""Structured tracing: nested spans, point events, streamed metrics.

One :class:`Tracer` serves one run.  It emits dict events to its sinks
in a single deterministic order; the federated round produces the span
hierarchy::

    run
      round
        broadcast                    (per round, emitted by the executor)
        client_compute x N           (participant order, whatever backend)
        decide
          relevance_check x N        (participant order)
        aggregate
        evaluate                     (rounds that evaluate)
        round_rollup                 (one summary event per round)
        health.*                     (run health findings, if any)

At scale the per-client spans (``client_compute``, ``relevance_check``)
are *head-sampled*: a :class:`~repro.obs.rollup.SpanSampler` keeps a
deterministic subset (a pure hash of seed/round/client index, rate
``FLConfig.trace_sample``) and the unsampled remainder is folded into
the exact per-round ``round_rollup`` event, so traces stay bounded
without breaking the determinism contract.

Event schema (one JSON object per line in a ``.jsonl`` trace)::

    {"seq": 12, "kind": "span", "name": "client_compute", "id": 7,
     "parent": 3, "attrs": {"iteration": 1, "client_id": 4},
     "rt": {"ts": 8.1, "dur": 0.03, "queue_wait": 0.001, "worker": "..."}}

``kind`` is ``header`` | ``span`` | ``point`` | ``metric``.

**Determinism contract.**  Everything outside the ``rt`` attribute —
event ordering, span nesting, names, ids and ``attrs`` payloads — is a
pure function of the run's decisions and therefore identical across the
serial/thread/process execution backends.  All wall-clock and
scheduling-dependent data (timestamps, durations, queue waits, worker
identities, backend names, host info) lives in ``rt``, and metrics in
the ``runtime.*`` namespace keep their values there too.
:func:`repro.obs.report.deterministic_view` strips ``rt``/``seq`` and
drops ``runtime.*`` events; two traces of the same run must be equal
under that view (asserted in ``tests/test_obs.py``).

The default :data:`NULL_TRACER` keeps instrumented code allocation-free
when tracing is off: ``span()`` returns a shared no-op span and the
null metrics registry hands back a shared no-op instrument.
"""

from __future__ import annotations

import os
import platform
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.rollup import RoundRollup, SpanSampler
from repro.obs.sinks import MemorySink, TraceSink

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
]

TRACE_SCHEMA = "repro-trace/v1"


class Span:
    """One timed, attributed region; a context manager.

    ``attrs`` must stay deterministic (see the module contract); use
    :meth:`set_rt` for anything wall-clock or scheduling dependent.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_tracer", "_start", "_rt")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start = 0.0
        self._rt: Optional[Dict[str, Any]] = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach a deterministic attribute (visible to trace diffs)."""
        self.attrs[key] = value

    def set_rt(self, key: str, value: Any) -> None:
        """Attach runtime-dependent data (masked by trace diffs)."""
        if self._rt is None:
            self._rt = {}
        self._rt[key] = value

    def __enter__(self) -> "Span":
        self._tracer._open_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._close_span(self)
        return False


class Tracer:
    """Emits spans, point events and metric updates to its sinks.

    Not thread-safe by design: all emission happens on the coordinating
    thread (the trainer's), which is exactly what the deterministic-
    ordering contract requires.  Executor backends gather per-task
    timings wherever the work ran and hand them back for ordered
    emission here.
    """

    enabled = True

    def __init__(
        self,
        sinks: Optional[Sequence[TraceSink]] = None,
        clock: Callable[[], float] = monotonic,
        emit_header: bool = True,
    ) -> None:
        self.sinks: List[TraceSink] = list(sinks or ())  # ckpt: transient — live I/O handles
        self.clock = clock
        self.metrics = MetricsRegistry(emit=self._metric_event)
        # Head-sampling policy for per-client spans; None keeps every
        # span.  A pure (seed, round, client_index) hash — the trainer
        # re-derives it from the config, so it never rides in a
        # checkpoint.
        self.sampler: Optional[SpanSampler] = None  # ckpt: transient — config-derived pure hash
        # The current round's rollup accumulator, attached by the
        # trainer for the duration of one round so executors can feed
        # per-task runtime data; always None at round boundaries.
        self.rollup: Optional[RoundRollup] = None  # ckpt: transient — intra-round scratch
        self._seq = 0
        self._next_id = 1
        self._stack: List[Span] = []
        self._closed = False  # ckpt: transient — lifecycle flag, always False for a live tracer
        if emit_header:
            self._emit(
                {
                    "kind": "header",
                    "name": "trace",
                    "attrs": {"schema": TRACE_SCHEMA},
                    "rt": {
                        "ts": self.clock(),
                        "python": platform.python_version(),
                        "host_cpus": os.cpu_count(),
                    },
                }
            )

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; enter it (``with tracer.span(...)``) to start."""
        return Span(self, name, attrs)

    def span_sampled(self, iteration: int, client_index: int) -> bool:
        """Head-sampling decision for a per-client span.

        True when the configured :class:`SpanSampler` keeps
        ``(iteration, client_index)`` — or when no sampler is set (the
        keep-everything default).  The decision is a pure hash, so it
        is identical on every execution backend and across resumes.
        """
        sampler = self.sampler
        return sampler is None or sampler.sampled(iteration, client_index)

    def sampled_span(
        self, name: str, iteration: int, client_index: int, /, **attrs: Any
    ) -> Any:
        """Like :meth:`span`, but subject to per-client head sampling.

        The first three parameters are positional-only so ``attrs`` may
        legitimately carry ``iteration=``/``client_id=`` keys.  Returns
        a shared no-op span for unsampled clients: the caller's
        ``with`` body still runs (and still feeds the round rollup);
        only the span event is suppressed.
        """
        if not self.span_sampled(iteration, client_index):
            return _NULL_SPAN
        return Span(self, name, attrs)

    def record_span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        rt: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Emit an already-timed span as a child of the current span.

        The executor backends time client tasks wherever they physically
        ran (worker thread/process) and replay them here in participant
        order; ``rt`` carries the measured ``dur`` (default 0.0) plus
        any other runtime fields.
        """
        span_id = self._next_id
        self._next_id += 1
        runtime = {"ts": self.clock(), "dur": 0.0}
        if rt:
            runtime.update(rt)
        self._emit(
            {
                "kind": "span",
                "name": name,
                "id": span_id,
                "parent": self._stack[-1].span_id if self._stack else None,
                "attrs": dict(attrs or {}),
                "rt": runtime,
            }
        )

    def _open_span(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        span._start = self.clock()

    def _close_span(self, span: Span) -> None:
        end = self.clock()
        top = self._stack.pop()
        if top is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span {span.name!r} closed while {top.name!r} was innermost"
            )
        runtime = {"ts": span._start, "dur": end - span._start}
        if span._rt:
            runtime.update(span._rt)
        self._emit(
            {
                "kind": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "attrs": span.attrs,
                "rt": runtime,
            }
        )

    # -- point events and metrics --------------------------------------

    def event(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        rt: Optional[Dict[str, Any]] = None,
    ) -> None:
        """An instantaneous event, parented to the current span."""
        runtime = {"ts": self.clock()}
        if rt:
            runtime.update(rt)
        self._emit(
            {
                "kind": "point",
                "name": name,
                "parent": self._stack[-1].span_id if self._stack else None,
                "attrs": dict(attrs or {}),
                "rt": runtime,
            }
        )

    def _metric_event(
        self, name: str, metric_type: str, fields: Dict[str, Any], runtime: bool
    ) -> None:
        attrs: Dict[str, Any] = {"type": metric_type}
        rt: Dict[str, Any] = {"ts": self.clock()}
        # Runtime metric values are nondeterministic; isolate them in rt
        # so the deterministic view masks them along with timestamps.
        (rt if runtime else attrs).update(fields)
        self._emit({"kind": "metric", "name": name, "attrs": attrs, "rt": rt})

    def _emit(self, event: Dict[str, Any]) -> None:
        event["seq"] = self._seq
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)

    # -- continuation (see repro.ckpt) ---------------------------------

    def current_span(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def export_state(self) -> Dict[str, Any]:
        """Continuation snapshot: counters, open spans, metric values.

        Everything :meth:`restore_state` needs to continue this exact
        event stream in a fresh process — sequence and id counters, the
        open-span stack (names, ids, deterministic attrs) and the
        metrics registry.  Checkpoints persist it so a killed-and-
        resumed run emits the same events, with the same ids and
        ``seq`` numbers, as an uninterrupted one.
        """
        return {
            "seq": self._seq,
            "next_id": self._next_id,
            "open_spans": [
                {
                    "name": span.name,
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "attrs": dict(span.attrs),
                }
                for span in self._stack
            ],
            "metrics": self.metrics.export_state(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt an :meth:`export_state` snapshot on a fresh tracer.

        The tracer must have been built with ``emit_header=False`` and
        must not have emitted anything yet: the snapshot's counters
        replace its own, checkpointed open spans are reopened with
        their original ids/attrs (their durations restart — runtime
        data, masked by the deterministic view), and metric values are
        reinstated without emitting events.
        """
        if self._seq != 0 or self._stack or len(self.metrics):
            raise RuntimeError(
                "restore_state needs a fresh tracer (emit_header=False, "
                "no events emitted, no metrics registered)"
            )
        self._seq = int(state["seq"])
        self._next_id = int(state["next_id"])
        for entry in state["open_spans"]:
            span = Span(self, entry["name"], dict(entry["attrs"]))
            span.span_id = entry["id"]
            span.parent_id = entry["parent"]
            span._start = self.clock()
            self._stack.append(span)
        self.metrics.restore(state.get("metrics", {}))

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Push buffered events on every sink to stable storage."""
        for sink in self.sinks:
            sink.flush()

    def memory_events(self) -> Optional[List[Dict[str, Any]]]:
        """The event list of the first :class:`MemorySink`, if any."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        return None

    def close(self) -> None:
        """Emit the final metrics snapshot and close every sink.

        Idempotent.  The snapshot separates deterministic metrics
        (``attrs``) from ``runtime.*`` ones (``rt``), like every other
        event.
        """
        if self._closed:
            return
        self._closed = True
        if len(self.metrics):
            self.event(
                "metrics_snapshot",
                attrs={"metrics": self.metrics.snapshot(runtime=False)},
                rt={"metrics": self.metrics.snapshot(runtime=True)},
            )
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_rt(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_METRICS = NullMetricsRegistry()


class NullTracer:
    """The default tracer: every operation is a constant-time no-op.

    No events, no allocations beyond the interpreter's argument
    handling, no I/O — instrumented hot paths cost a method call.
    """

    enabled = False
    metrics = _NULL_METRICS
    sampler = None
    rollup = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def span_sampled(self, iteration: int, client_index: int) -> bool:
        return False

    def sampled_span(
        self, name: str, iteration: int, client_index: int, /, **attrs: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name, attrs=None, rt=None) -> None:
        pass

    def event(self, name, attrs=None, rt=None) -> None:
        pass

    def current_span(self) -> None:
        return None

    def flush(self) -> None:
        pass

    def memory_events(self) -> None:
        return None

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: Shared disabled tracer; instrumented modules default to this.
NULL_TRACER = NullTracer()
