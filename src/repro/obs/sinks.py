"""Pluggable destinations for trace events.

Sinks receive finished event dicts (see :mod:`repro.obs.tracer` for the
schema) in emission order.  Three are shipped:

* :class:`MemorySink` — keeps events in a list (tests, in-process
  inspection); ``max_events`` bounds retention to a recent-events ring
  for long runs;
* :class:`JsonlSink` — one JSON object per line, opened lazily so an
  enabled-but-never-used tracer creates no file;
* :class:`SummarySink` — accumulates per-phase aggregates and writes a
  human-readable table to a stream when closed.

Library code must never ``print``; the summary sink writes to the
stream it was given (default ``sys.stderr``).
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, TextIO, Union

from repro.utils.atomic_io import atomic_write, fsync_file
from repro.utils.tables import format_table

__all__ = [
    "JsonlSink",
    "MemorySink",
    "SummarySink",
    "TraceSink",
    "encode_event",
    "truncate_trace",
]


def _json_default(obj: Any) -> Any:
    """Coerce numpy scalars (which expose ``.item()``) without importing
    numpy — the obs layer stays stdlib-only."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serialisable: {type(obj).__name__}")


def encode_event(event: Dict[str, Any]) -> str:
    """The canonical wire encoding: compact, key-sorted JSON."""
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), default=_json_default
    )


class TraceSink:
    """Interface: receive events in order, release resources on close."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to stable storage; a no-op by default."""

    def close(self) -> None:
        """Flush and release; idempotent."""


class MemorySink(TraceSink):
    """Collects events in-process; the default sink for tests.

    Unbounded by default — fine for short runs and tests, but on a
    population-scale run the event list itself becomes
    O(population·rounds).  ``max_events`` caps retention: the sink then
    keeps only the most recent N events (a ``collections.deque`` ring;
    oldest dropped first), trading history for constant memory.  Use a
    :class:`JsonlSink` when the *full* stream must survive a long run.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(
                f"max_events must be >= 1 or None, got {max_events}"
            )
        self.max_events = max_events
        self.events: Union[List[Dict[str, Any]], Deque[Dict[str, Any]]] = (
            [] if max_events is None else deque(maxlen=max_events)
        )

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Streams events to a JSON-lines file (the ``trace_path`` format).

    A *streaming* writer, deliberately not atomic: events must land in
    the final file as the run progresses so a killed run's trace can be
    recovered (the checkpoint layer truncates it back to the last
    durable event with :func:`truncate_trace`).  Crash safety comes from
    the line-oriented format plus explicit :meth:`flush` fsyncs at
    checkpoint boundaries and on close.  ``mode="a"`` continues an
    existing file — how a resumed run extends the original trace.
    """

    def __init__(self, path: Union[str, Path], mode: str = "w") -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self._fh: Optional[TextIO] = None

    def emit(self, event: Dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, self.mode, encoding="utf-8")
        self._fh.write(encode_event(event))
        self._fh.write("\n")

    def flush(self) -> None:
        if self._fh is not None:
            fsync_file(self._fh)

    def close(self) -> None:
        if self._fh is not None:
            fsync_file(self._fh)
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return f"JsonlSink({str(self.path)!r}, mode={self.mode!r})"


class SummarySink(TraceSink):
    """Streams span aggregates; renders a per-phase table on close.

    Only constant-size per-phase accumulators are kept (count, total
    duration), so the sink is safe on arbitrarily long runs.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._spans: Dict[str, List[float]] = {}  # name -> [count, total_s]
        self._counters: Dict[str, Any] = {}
        self._closed = False

    def emit(self, event: Dict[str, Any]) -> None:
        kind = event.get("kind")
        if kind == "span":
            entry = self._spans.setdefault(event["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += float(event.get("rt", {}).get("dur", 0.0))
        elif kind == "metric":
            attrs = event.get("attrs", {})
            if attrs.get("type") == "counter" and "value" in attrs:
                self._counters[event["name"]] = attrs["value"]

    def render(self) -> str:
        rows = [
            [name, int(count), total, (total / count) * 1e3 if count else 0.0]
            for name, (count, total) in sorted(self._spans.items())
        ]
        parts = [
            format_table(
                ["phase", "spans", "total_s", "mean_ms"],
                rows,
                title="trace summary (per-phase wall time)",
            )
        ]
        if self._counters:
            parts.append(
                format_table(
                    ["counter", "value"],
                    [[k, v] for k, v in sorted(self._counters.items())],
                )
            )
        return "\n\n".join(parts)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.stream.write(self.render() + "\n")


def truncate_trace(path: Union[str, Path], upto_seq: int) -> int:
    """Atomically cut a JSONL trace back to events with ``seq < upto_seq``.

    The recovery step before a resumed run reopens its trace in append
    mode: events past the checkpoint's sequence counter (a killed run's
    partial round) are dropped, as is any half-written trailing line the
    kill left behind.  Returns how many events were kept; the caller
    checks it equals ``upto_seq`` before continuing the stream.
    """
    if upto_seq < 0:
        raise ValueError(f"upto_seq must be >= 0, got {upto_seq}")
    kept: List[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            record = line.strip()
            if not record:
                continue
            try:
                event = json.loads(record)
            except json.JSONDecodeError:
                break  # half-written tail from a crash; drop it
            if int(event.get("seq", 0)) >= upto_seq:
                break
            kept.append(record)
    with atomic_write(path, "w") as fh:
        for record in kept:
            fh.write(record)
            fh.write("\n")
    return len(kept)
