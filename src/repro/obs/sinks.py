"""Pluggable destinations for trace events.

Sinks receive finished event dicts (see :mod:`repro.obs.tracer` for the
schema) in emission order.  Three are shipped:

* :class:`MemorySink` — keeps events in a list (tests, in-process
  inspection);
* :class:`JsonlSink` — one JSON object per line, opened lazily so an
  enabled-but-never-used tracer creates no file;
* :class:`SummarySink` — accumulates per-phase aggregates and writes a
  human-readable table to a stream when closed.

Library code must never ``print``; the summary sink writes to the
stream it was given (default ``sys.stderr``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.utils.tables import format_table

__all__ = ["JsonlSink", "MemorySink", "SummarySink", "TraceSink", "encode_event"]


def _json_default(obj: Any) -> Any:
    """Coerce numpy scalars (which expose ``.item()``) without importing
    numpy — the obs layer stays stdlib-only."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serialisable: {type(obj).__name__}")


def encode_event(event: Dict[str, Any]) -> str:
    """The canonical wire encoding: compact, key-sorted JSON."""
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), default=_json_default
    )


class TraceSink:
    """Interface: receive events in order, release resources on close."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release; idempotent."""


class MemorySink(TraceSink):
    """Collects events in-process; the default sink for tests."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Streams events to a JSON-lines file (the ``trace_path`` format)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIO] = None

    def emit(self, event: Dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.write(encode_event(event))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return f"JsonlSink({str(self.path)!r})"


class SummarySink(TraceSink):
    """Streams span aggregates; renders a per-phase table on close.

    Only constant-size per-phase accumulators are kept (count, total
    duration), so the sink is safe on arbitrarily long runs.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._spans: Dict[str, List[float]] = {}  # name -> [count, total_s]
        self._counters: Dict[str, Any] = {}
        self._closed = False

    def emit(self, event: Dict[str, Any]) -> None:
        kind = event.get("kind")
        if kind == "span":
            entry = self._spans.setdefault(event["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += float(event.get("rt", {}).get("dur", 0.0))
        elif kind == "metric":
            attrs = event.get("attrs", {})
            if attrs.get("type") == "counter" and "value" in attrs:
                self._counters[event["name"]] = attrs["value"]

    def render(self) -> str:
        rows = [
            [name, int(count), total, (total / count) * 1e3 if count else 0.0]
            for name, (count, total) in sorted(self._spans.items())
        ]
        parts = [
            format_table(
                ["phase", "spans", "total_s", "mean_ms"],
                rows,
                title="trace summary (per-phase wall time)",
            )
        ]
        if self._counters:
            parts.append(
                format_table(
                    ["counter", "value"],
                    [[k, v] for k, v in sorted(self._counters.items())],
                )
            )
        return "\n\n".join(parts)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.stream.write(self.render() + "\n")
