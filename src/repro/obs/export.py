"""Export metrics in standard forms: OpenMetrics text and JSONL.

A ``repro-trace/v1`` file (or a live :class:`~repro.obs.metrics.
MetricsRegistry` snapshot) carries the run's ``comm.*``/``emu.*``/
``store.*``/``runtime.*`` instruments; this module writes them out so
they can leave the process in a form other tooling understands:

* :func:`to_openmetrics` — the OpenMetrics text exposition format
  (Prometheus-compatible): counters as ``<name>_total``, gauges as
  bare samples, histogram summaries as ``quantile``-labelled samples
  plus ``_count``/``_sum``, terminated by ``# EOF``.
* :func:`to_jsonl_snapshot` — one JSON object per metric after a
  schema header line (``repro-metrics/v1``), for machine diffing.

``python -m repro.obs export trace.jsonl`` is the CLI entry point.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "EXPORT_SCHEMA",
    "metrics_from_trace",
    "openmetrics_name",
    "to_jsonl_snapshot",
    "to_openmetrics",
]

EXPORT_SCHEMA = "repro-metrics/v1"

#: OpenMetrics metric names: letters, digits, underscores and colons.
_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def openmetrics_name(name: str) -> str:
    """Sanitize a dotted registry name (``comm.uploads`` ->
    ``comm_uploads``) into the OpenMetrics charset."""
    sanitized = _NAME_BAD_CHARS.sub("_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def metrics_from_trace(
    events: Iterable[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Reconstruct the final metric summaries from a trace.

    Prefers the close-time ``metrics_snapshot`` event (complete,
    including histogram quantiles); a trace without one — a killed or
    still-running run — falls back to folding the streamed ``metric``
    events, which recovers the latest counter/gauge values (histograms
    do not stream per observation and are absent on that path).
    """
    snapshot: Optional[Dict[str, Any]] = None
    folded: Dict[str, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "point" and event.get("name") == "metrics_snapshot":
            snapshot = dict(event.get("attrs", {}).get("metrics", {}))
            snapshot.update(event.get("rt", {}).get("metrics", {}))
        elif kind == "metric":
            attrs = dict(event.get("attrs", {}))
            metric_type = attrs.pop("type", "gauge")
            fields = {
                k: v
                for k, v in {**event.get("rt", {}), **attrs}.items()
                if k != "ts"
            }
            fields["type"] = metric_type
            folded[str(event["name"])] = fields
    return snapshot if snapshot is not None else folded


def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_openmetrics(metrics: Dict[str, Dict[str, Any]]) -> str:
    """Render final metric summaries as OpenMetrics exposition text.

    ``metrics`` maps registry names to summary dicts (the shape of
    :meth:`MetricsRegistry.snapshot` / :func:`metrics_from_trace`).
    Families are name-sorted; the output always ends with ``# EOF``.
    """
    lines: List[str] = []
    for name in sorted(metrics):
        summary = metrics[name]
        om_name = openmetrics_name(name)
        metric_type = str(summary.get("type", "gauge"))
        if metric_type == "counter":
            lines.append(f"# TYPE {om_name} counter")
            value = summary.get("value")
            if value is not None:
                lines.append(f"{om_name}_total {_format_value(value)}")
        elif metric_type == "histogram":
            # Quantile sketches map onto the OpenMetrics summary type.
            lines.append(f"# TYPE {om_name} summary")
            for key in sorted(summary):
                if not key.startswith("p") or not key[1:].isdigit():
                    continue
                if summary[key] is None:
                    continue
                quantile = int(key[1:]) / 100
                lines.append(
                    f'{om_name}{{quantile="{quantile:g}"}} '
                    f"{_format_value(summary[key])}"
                )
            lines.append(f"{om_name}_count {int(summary.get('count', 0))}")
            lines.append(
                f"{om_name}_sum {_format_value(summary.get('total', 0.0))}"
            )
        else:
            lines.append(f"# TYPE {om_name} gauge")
            value = summary.get("value")
            if value is not None:
                lines.append(f"{om_name} {_format_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_jsonl_snapshot(metrics: Dict[str, Dict[str, Any]]) -> str:
    """One JSON object per metric, after a schema header line."""
    lines = [json.dumps({"schema": EXPORT_SCHEMA}, sort_keys=True)]
    for name in sorted(metrics):
        entry = {"name": name}
        entry.update(
            {k: v for k, v in metrics[name].items() if k != "state"}
        )
        lines.append(
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
        )
    return "\n".join(lines) + "\n"
