"""Constant-memory rollups: streaming quantiles and per-round summaries.

At population scale a per-client span for every participant is the
observability layer's own memory/throughput bottleneck, so the tracer
head-samples those spans (:class:`SpanSampler`) and folds the unsampled
remainder into one exact ``round_rollup`` event per round
(:class:`RoundRollup`).  The quantile summaries inside the rollup come
from :class:`StreamingHistogram` — a bounded sketch (count/total/
min/max plus P² streaming quantile estimators for p50/p90/p99) whose
state is a fixed handful of floats regardless of how many values it
has absorbed.

Determinism: every structure here is a pure function of its input
*sequence*.  The trainer feeds deterministic quantities (relevance
scores, upload decisions) in participant order, so rollup ``attrs``
are identical across execution backends; wall-clock quantities
(compute durations, queue waits) accumulate on the runtime side and
are emitted under the event's ``rt`` key, which the deterministic view
masks.  The sampling decision itself is a pure hash of
``(seed, round, client_index)`` — no RNG object, no state — so the
same clients are sampled on every backend and ``trace_digest`` stays a
pure function of the run at any sampling rate.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "P2Quantile",
    "RoundRollup",
    "SpanSampler",
    "StreamingHistogram",
]


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac, 1985).

    Tracks one quantile ``p`` with five markers — O(1) memory, O(1)
    update — and is deterministic for a given observation sequence,
    which is what lets quantile summaries ride inside deterministic
    rollup events.  Exact for the first five observations; a parabolic
    (falling back to linear) marker adjustment thereafter.
    """

    __slots__ = ("p", "count", "_buffer", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._buffer: List[float] = []
        self._q: List[float] = []
        self._n: List[int] = []
        self._np: List[float] = []
        # Desired-position increments are a pure function of p; this is
        # the per-observe hot path, so build them once.
        self._dn = (0.0, p / 2, p, (1 + p) / 2, 1.0)  # ckpt: transient — pure function of p

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self.count <= 5:
            self._buffer.append(value)
            if self.count == 5:
                # Markers take over from here; the five-value buffer is
                # kept so value() stays exact until the sixth sample.
                self._q = sorted(self._buffer)
                self._n = [0, 1, 2, 3, 4]
                p = self.p
                self._np = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
            return
        q, n, np_ = self._q, self._n, self._np
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if value >= q[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1
        dn = self._dn
        # np_[0] += 0.0 is the identity; skip it.
        np_[1] += dn[1]
        np_[2] += dn[2]
        np_[3] += dn[3]
        np_[4] += 1.0
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (
                d <= -1 and n[i - 1] - n[i] < -1
            ):
                step = 1 if d >= 1 else -1
                if q[i - 1] == q[i + 1]:
                    # Degenerate neighborhood (constant stream): both
                    # the parabolic and linear formulas reduce to
                    # q[i] + 0.0, so only the marker position moves.
                    # Worth special-casing — all-zero queue waits on
                    # the serial backend hit this on every observe.
                    q[i] = q[i] + 0.0
                    n[i] += step
                    continue
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self) -> Optional[float]:
        """Current estimate; exact below six observations, else marker 3."""
        if self.count == 0:
            return None
        if self.count <= 5:
            ordered = sorted(self._buffer)
            # Nearest-rank interpolation over the exact small sample.
            pos = self.p * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            return ordered[lo] + (pos - lo) * (ordered[hi] - ordered[lo])
        return self._q[2]

    def state_dict(self) -> Dict[str, Any]:
        return {
            "p": self.p,
            "count": self.count,
            "buffer": list(self._buffer),
            "q": list(self._q),
            "n": list(self._n),
            "np": list(self._np),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if float(state["p"]) != self.p:
            raise ValueError(
                f"estimator tracks p={self.p}, state is for p={state['p']}"
            )
        self.count = int(state["count"])
        self._buffer = [float(v) for v in state["buffer"]]
        self._q = [float(v) for v in state["q"]]
        self._n = [int(v) for v in state["n"]]
        self._np = [float(v) for v in state["np"]]


class StreamingHistogram:
    """Bounded summary of a value stream: moments plus quantiles.

    The constant-memory replacement for retaining raw observations:
    count/total/min/max exactly, p50/p90/p99 quantiles.  Short streams
    (up to :data:`SPILL_AT` values — every per-round rollup at sane
    cohort sizes) stay in an exact buffer whose ``observe`` is one
    append, which keeps the tracing hot path off the P² marker
    arithmetic; a stream that outgrows the buffer *spills*: the
    buffered values feed the :class:`P2Quantile` estimators in arrival
    order (so the estimator state is bitwise what always-streaming
    would have produced) and subsequent observations stream directly.
    Memory is bounded by ``SPILL_AT`` floats either way.

    State round-trips exactly through
    :meth:`state_dict`/:meth:`load_state_dict`, so a checkpointed run
    resumes the sequence bitwise.
    """

    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

    #: Buffer size at which exact retention hands over to P² sketches.
    SPILL_AT = 512

    __slots__ = (
        "count", "total", "min", "max", "_estimators", "_est_seq",
        "_buffer",
    )

    def __init__(
        self, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._estimators = {float(p): P2Quantile(p) for p in quantiles}
        # Hot-path alias: iterating a tuple beats a dict view per call.
        self._est_seq = tuple(self._estimators.values())  # ckpt: transient — alias of _estimators
        self._buffer: Optional[List[float]] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        buffer = self._buffer
        if buffer is not None:
            buffer.append(value)
            if len(buffer) >= self.SPILL_AT:
                self._spill()
            return
        for estimator in self._est_seq:
            estimator.observe(value)

    def _spill(self) -> None:
        """Replay the exact buffer into the P² estimators, in order."""
        for value in self._buffer:
            for estimator in self._est_seq:
                estimator.observe(value)
        self._buffer = None

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, p: float) -> Optional[float]:
        p = float(p)
        if self._buffer is not None:
            if not self._buffer:
                return None
            # Exact, from the sorted buffer — same interpolation the
            # P² estimator uses for its own small-sample phase.
            ordered = sorted(self._buffer)
            pos = self._estimators[p].p * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            return ordered[lo] + (pos - lo) * (ordered[hi] - ordered[lo])
        return self._estimators[p].value()

    def summary(self) -> Dict[str, Any]:
        """Key-stable summary dict (``p50``/``p90``/``p99`` labels)."""
        out: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for p in sorted(self._estimators):
            out[f"p{round(p * 100):d}"] = self.quantile(p)
        return out

    def state_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buffer": None if self._buffer is None else list(self._buffer),
            "quantiles": {
                str(p): estimator.state_dict()
                for p, estimator in self._estimators.items()
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.min = state["min"]
        self.max = state["max"]
        saved = state.get("quantiles", {})
        if set(saved) != {str(p) for p in self._estimators}:
            raise ValueError(
                f"histogram tracks quantiles "
                f"{sorted(self._estimators)}, state has {sorted(saved)}"
            )
        buffer = state.get("buffer")
        self._buffer = None if buffer is None else [float(v) for v in buffer]
        for key, estimator_state in saved.items():
            self._estimators[float(key)].load_state_dict(estimator_state)


class SpanSampler:
    """Deterministic head-sampling of per-client spans.

    The keep/fold decision for ``(round, client_index)`` is a pure
    blake2b hash of ``(seed, round, client_index)`` mapped to [0, 1)
    and compared against ``rate`` — no RNG object, no mutable state —
    so every execution backend samples the same clients and a resumed
    run samples exactly as the uninterrupted one would have.

    ``rate=1.0`` keeps every span (the default, bit-compatible with
    pre-sampling traces); ``rate=0.0`` keeps none and leaves only the
    exact per-round rollups.
    """

    __slots__ = ("seed", "rate")

    def __init__(self, seed: int, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.seed = int(seed)
        self.rate = float(rate)

    def sampled(self, iteration: int, client_index: int) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        key = b"%d:%d:%d" % (self.seed, iteration, client_index)
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") < self.rate * 2.0**64

    def __repr__(self) -> str:
        return f"SpanSampler(seed={self.seed}, rate={self.rate})"


class RoundRollup:
    """Accumulates one round's per-client data into a single event.

    The trainer owns one instance per round and attaches it to the
    tracer; the executor feeds wall-clock task timings for *every*
    participant (sampled or not) via :meth:`observe_task_rt`, the
    trainer feeds the deterministic decision stream via
    :meth:`observe_decision`, and the finished accumulators are
    emitted as one ``round_rollup`` event — deterministic aggregates in
    ``attrs`` (:meth:`attrs`), runtime aggregates in ``rt``
    (:meth:`rt`).
    """

    #: How many slowest clients the runtime side remembers.
    SLOWEST_K = 3

    def __init__(self, iteration: int) -> None:
        self.iteration = iteration
        # Deterministic side (participant order).
        self.scores = StreamingHistogram()
        self.train_losses = StreamingHistogram()
        self.n_participants = 0
        self.n_uploaded = 0
        self.n_forced = 0
        self.uploaded_bytes = 0
        self.status_bytes = 0
        self.layer_sign_agreement: Optional[List[float]] = None
        self.extra: Dict[str, Any] = {}
        # Runtime side (completion data replayed in participant order).
        self.compute = StreamingHistogram()
        self.queue_wait = StreamingHistogram()
        self._slowest: List[Tuple[float, int]] = []

    # -- deterministic feed ---------------------------------------------

    def observe_decision(
        self, score: float, train_loss: float, uploaded: bool
    ) -> None:
        """One client's decide-half outcome, in participant order."""
        self.n_participants += 1
        self.scores.observe(score)
        self.train_losses.observe(train_loss)
        if uploaded:
            self.n_uploaded += 1

    # -- runtime feed ----------------------------------------------------

    def observe_task_rt(
        self, client_index: int, dur: float, queue_wait: float
    ) -> None:
        """One client task's wall-clock cost (runtime side)."""
        self.compute.observe(dur)
        self.queue_wait.observe(queue_wait)
        entry = (float(dur), int(client_index))
        if len(self._slowest) < self.SLOWEST_K:
            self._slowest.append(entry)
            self._slowest.sort()
        elif entry > self._slowest[0]:
            self._slowest[0] = entry
            self._slowest.sort()

    def slowest(self) -> List[Tuple[int, float]]:
        """``(client_index, duration)`` pairs, slowest first."""
        return [
            (index, dur) for dur, index in sorted(self._slowest, reverse=True)
        ]

    # -- event payloads --------------------------------------------------

    def attrs(self) -> Dict[str, Any]:
        """The deterministic half of the ``round_rollup`` event."""
        out: Dict[str, Any] = {
            "iteration": self.iteration,
            "n_participants": self.n_participants,
            "n_uploaded": self.n_uploaded,
            "n_forced": self.n_forced,
            "uploaded_bytes": self.uploaded_bytes,
            "status_bytes": self.status_bytes,
            "score": self.scores.summary(),
            "train_loss": self.train_losses.summary(),
        }
        if self.layer_sign_agreement is not None:
            out["layer_sign_agreement"] = list(self.layer_sign_agreement)
        out.update(self.extra)
        return out

    def rt(self) -> Dict[str, Any]:
        """The runtime half (masked by the deterministic view)."""
        return {
            "compute_s": self.compute.summary(),
            "queue_wait_s": self.queue_wait.summary(),
            "slowest": [[index, dur] for index, dur in self.slowest()],
        }
