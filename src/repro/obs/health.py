"""Online run-health checks over per-round rollups.

A :class:`HealthMonitor` lives on the trainer when tracing is enabled.
Once per round it receives the finished rollup (deterministic ``attrs``
plus runtime ``rt``) together with the round's evaluation and
communication totals, and returns structured findings that the trainer
emits as trace events:

* ``health.dead_cohort`` — a round where no client chose to upload
  (every update fell below the relevance threshold; only forced
  uploads, if any, kept the round alive);
* ``health.non_finite`` — a NaN/inf training or evaluation quantity;
* ``health.stall`` — the evaluation metric has not improved by
  ``stall_min_delta`` for ``stall_patience`` consecutive evaluations;
* ``health.comm_drift`` — the ledger's byte total disagrees with the
  streamed ``comm.*`` counters (an accounting bug, not a run property);
* ``runtime.health.straggler`` — the slowest client task took at least
  ``straggler_factor`` times the round's median compute time.

Naming is load-bearing: the first four findings are pure functions of
the run and keep the plain ``health.`` prefix, so they participate in
cross-backend digest equality.  Straggler detection depends on
wall-clock scheduling, so its events live under ``runtime.health.`` and
are dropped by the deterministic view along with every other
``runtime.*`` event — two backends may disagree about stragglers
without breaking ``trace_digest``.

The monitor's cursor (best metric seen, evaluations since improvement)
is tiny and rides in checkpoints (``manifest["health"]``) so a resumed
run reaches the same stall verdicts as an uninterrupted one.

The module also carries the read side: :func:`health_events` /
:func:`health_summary` over a loaded trace, and
:func:`render_dashboard`, the pure-ASCII screen behind
``python -m repro.obs watch``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.tables import format_table

__all__ = [
    "HEALTH_PREFIX",
    "HealthMonitor",
    "RUNTIME_HEALTH_PREFIX",
    "health_events",
    "health_summary",
    "render_dashboard",
    "sparkline",
]

HEALTH_PREFIX = "health."
RUNTIME_HEALTH_PREFIX = "runtime.health."

#: A finding, ready for ``tracer.event(name, attrs=..., rt=...)``.
Finding = Tuple[str, Dict[str, Any], Optional[Dict[str, Any]]]


def _is_non_finite(value: Optional[float]) -> bool:
    return value is not None and not math.isfinite(value)


class HealthMonitor:
    """Streaming anomaly checks; one :meth:`observe_round` per round.

    Stateless between rounds except for the stall cursor, so memory is
    O(1) regardless of run length or population size.
    """

    def __init__(
        self,
        stall_patience: int = 5,
        stall_min_delta: float = 1e-4,
        straggler_factor: float = 4.0,
        straggler_min_clients: int = 8,
    ) -> None:
        if stall_patience < 1:
            raise ValueError(
                f"stall_patience must be >= 1, got {stall_patience}"
            )
        if straggler_factor <= 1.0:
            raise ValueError(
                f"straggler_factor must be > 1, got {straggler_factor}"
            )
        self.stall_patience = stall_patience  # ckpt: transient — caller-supplied threshold
        self.stall_min_delta = float(stall_min_delta)  # ckpt: transient — caller-supplied threshold
        self.straggler_factor = float(straggler_factor)  # ckpt: transient — caller-supplied threshold
        self.straggler_min_clients = straggler_min_clients  # ckpt: transient — caller-supplied threshold
        # Stall cursor — the only cross-round state; checkpointed.
        self.best_metric: Optional[float] = None
        self.rounds_since_improvement = 0
        self.evals_seen = 0

    # -- per-round entry point ------------------------------------------

    def observe_round(
        self,
        attrs: Dict[str, Any],
        rt: Optional[Dict[str, Any]] = None,
        *,
        test_metric: Optional[float] = None,
        test_loss: Optional[float] = None,
        mean_train_loss: Optional[float] = None,
        ledger_total_bytes: Optional[int] = None,
        counter_total_bytes: Optional[int] = None,
    ) -> List[Finding]:
        """Check one finished round; returns findings in a fixed order.

        ``attrs``/``rt`` are the round rollup's two halves.  Check
        order (dead cohort, non-finite, stall, comm drift, straggler)
        is fixed so the emitted event sequence stays deterministic.
        """
        iteration = attrs.get("iteration")
        findings: List[Finding] = []

        n_participants = int(attrs.get("n_participants", 0))
        organic = int(attrs.get("n_uploaded", 0)) - int(
            attrs.get("n_forced", 0)
        )
        if n_participants > 0 and organic <= 0:
            findings.append(
                (
                    "health.dead_cohort",
                    {
                        "iteration": iteration,
                        "n_participants": n_participants,
                        "n_forced": int(attrs.get("n_forced", 0)),
                    },
                    None,
                )
            )

        non_finite = {
            name: repr(value)
            for name, value in (
                ("mean_train_loss", mean_train_loss),
                ("test_loss", test_loss),
                ("test_metric", test_metric),
            )
            if _is_non_finite(value)
        }
        if non_finite:
            findings.append(
                (
                    "health.non_finite",
                    {"iteration": iteration, "fields": non_finite},
                    None,
                )
            )

        if test_metric is not None and math.isfinite(test_metric):
            self.evals_seen += 1
            if (
                self.best_metric is None
                or test_metric > self.best_metric + self.stall_min_delta
            ):
                self.best_metric = float(test_metric)
                self.rounds_since_improvement = 0
            else:
                self.rounds_since_improvement += 1
            if self.rounds_since_improvement >= self.stall_patience:
                findings.append(
                    (
                        "health.stall",
                        {
                            "iteration": iteration,
                            "rounds_since_improvement": (
                                self.rounds_since_improvement
                            ),
                            "best_metric": self.best_metric,
                        },
                        None,
                    )
                )

        if (
            ledger_total_bytes is not None
            and counter_total_bytes is not None
            and ledger_total_bytes != counter_total_bytes
        ):
            findings.append(
                (
                    "health.comm_drift",
                    {
                        "iteration": iteration,
                        "ledger_bytes": int(ledger_total_bytes),
                        "counter_bytes": int(counter_total_bytes),
                    },
                    None,
                )
            )

        compute = (rt or {}).get("compute_s", {})
        p50 = compute.get("p50")
        worst = compute.get("max")
        if (
            int(compute.get("count", 0)) >= self.straggler_min_clients
            and p50
            and worst is not None
            and worst >= self.straggler_factor * p50
        ):
            # Wall-clock verdict: runtime.* name, payload in rt, so the
            # deterministic view drops the whole event.
            findings.append(
                (
                    "runtime.health.straggler",
                    {"iteration": iteration},
                    {
                        "max_s": worst,
                        "p50_s": p50,
                        "factor": worst / p50,
                        "slowest": (rt or {}).get("slowest", []),
                    },
                )
            )

        return findings

    # -- checkpoint support ---------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """The stall cursor; everything else is per-round scratch."""
        return {
            "best_metric": self.best_metric,
            "rounds_since_improvement": self.rounds_since_improvement,
            "evals_seen": self.evals_seen,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        best = state["best_metric"]
        self.best_metric = None if best is None else float(best)
        self.rounds_since_improvement = int(state["rounds_since_improvement"])
        self.evals_seen = int(state["evals_seen"])


# -- trace read side ----------------------------------------------------


def health_events(
    events: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Every health finding (deterministic and runtime) in a trace."""
    return [
        event
        for event in events
        if str(event.get("name", "")).startswith(
            (HEALTH_PREFIX, RUNTIME_HEALTH_PREFIX)
        )
    ]


def health_summary(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """``{finding name: count}`` over a trace, name-sorted."""
    counts: Dict[str, int] = {}
    for event in health_events(events):
        name = str(event["name"])
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


#: ASCII intensity ramp for :func:`sparkline` (space = lowest).
_SPARK_CHARS = " .:-=+*#@"


def sparkline(values: Sequence[Optional[float]], width: int = 40) -> str:
    """A pure-ASCII sparkline; ``None`` gaps render as ``?``.

    Deliberately not :mod:`repro.utils.ascii_plot` — that module
    imports numpy and the obs layer stays stdlib-only.
    """
    points = list(values)[-width:]
    finite = [v for v in points if v is not None and math.isfinite(v)]
    if not finite:
        return "?" * len(points)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in points:
        if v is None or not math.isfinite(v):
            out.append("?")
            continue
        frac = 0.5 if span == 0 else (v - lo) / span
        out.append(_SPARK_CHARS[round(frac * (len(_SPARK_CHARS) - 1))])
    return "".join(out)


def _summary_field(event: Dict[str, Any], block: str, key: str) -> Any:
    return event.get("attrs", {}).get(block, {}).get(key)


def render_dashboard(events: Sequence[Dict[str, Any]]) -> str:
    """The ``python -m repro.obs watch`` screen, as one ASCII string.

    Three sections built from a (possibly still-growing) trace: a
    per-round rollup table, trend sparklines, and the health findings.
    """
    rollups = [e for e in events if e.get("name") == "round_rollup"]
    parts: List[str] = []

    rows = []
    for event in rollups[-12:]:
        attrs = event.get("attrs", {})
        rt = event.get("rt", {})
        compute = rt.get("compute_s", {})
        rows.append(
            [
                attrs.get("iteration"),
                attrs.get("n_participants"),
                attrs.get("n_uploaded"),
                attrs.get("n_forced"),
                _summary_field(event, "score", "p50"),
                _summary_field(event, "train_loss", "p50"),
                compute.get("p50"),
                compute.get("max"),
            ]
        )
    if rows:
        parts.append(
            format_table(
                [
                    "round",
                    "clients",
                    "uploads",
                    "forced",
                    "score_p50",
                    "loss_p50",
                    "compute_p50",
                    "compute_max",
                ],
                rows,
                title=f"round rollups (last {len(rows)} of {len(rollups)})",
            )
        )
    else:
        parts.append("no round_rollup events yet")

    if rollups:
        losses = [_summary_field(e, "train_loss", "p50") for e in rollups]
        uploads = [
            (
                e["attrs"].get("n_uploaded", 0)
                / max(1, e["attrs"].get("n_participants", 0))
            )
            for e in rollups
        ]
        parts.append(
            "trend  loss_p50  [{}]\n"
            "trend  upload%   [{}]".format(
                sparkline(losses), sparkline(uploads)
            )
        )

    findings = health_events(events)
    if findings:
        finding_rows = []
        for event in findings[-10:]:
            attrs = dict(event.get("attrs", {}))
            iteration = attrs.pop("iteration", None)
            detail = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if str(event["name"]).startswith(RUNTIME_HEALTH_PREFIX):
                rt = event.get("rt", {})
                detail = ", ".join(
                    f"{k}={rt[k]}" for k in ("factor", "max_s") if k in rt
                )
            finding_rows.append([event["name"], iteration, detail])
        parts.append(
            format_table(
                ["finding", "round", "detail"],
                finding_rows,
                title=f"health findings ({len(findings)} total)",
            )
        )
    else:
        parts.append("health: no findings")

    return "\n\n".join(parts)
