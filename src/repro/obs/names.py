"""The central metric-name registry.

Every ``counter(...)``/``gauge(...)``/``histogram(...)`` call site in
the tree must name its instrument with a string literal declared here —
the ``metric-name-registry`` lint rule enforces it — so a typo'd metric
name is a lint error, not a silently separate time series.  Families
whose suffix is data-driven (the emulator's per-``MessageKind``
counters) register a literal *prefix* instead; call sites may then
build the name with an f-string whose literal head matches the prefix.

Names follow the namespace conventions of the determinism contract
(DESIGN.md §6c): ``runtime.*`` values are wall-clock/scheduling
dependent and masked from the deterministic view; everything else must
be a pure function of the run.
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES", "METRIC_PREFIXES", "is_registered"]

#: Every fixed metric name in the tree, namespace-sorted.
METRIC_NAMES = frozenset(
    {
        # async.* — the discrete-event engine (repro.fl.events).  All
        # deterministic: event times come from the virtual clock, a
        # pure function of (seed, config), never the wall clock.
        "async.arrivals",
        "async.closes",
        "async.deferred_dispatches",
        "async.dispatches",
        "async.drops",
        "async.staleness",
        "async.virtual_time",
        # comm.* — the paper's communication measurements (deterministic;
        # reconciled byte-for-byte against the CommunicationLedger).
        "comm.skips",
        "comm.status_bytes",
        "comm.uploaded_bytes",
        "comm.uploads",
        # store.* — sharded population-store accounting (deterministic
        # for a fixed seed/sampler).
        "store.checkouts",
        "store.rows_written",
        "store.shards_materialized",
        # ckpt.* — run-state persistence.
        "ckpt.saves",
        # runtime.* — scheduling/wall-clock dependent, rt-isolated.
        "runtime.ckpt.bytes",
        "runtime.ckpt.save_s",
        "runtime.executor.batched_fallbacks",
        "runtime.executor.pool_starts",
        "runtime.executor.queue_wait",
    }
)

#: Registered name families: a call site may pass an f-string whose
#: literal head starts with one of these prefixes (part of the name is
#: data-driven).  The emulator namespace is such a family twice over:
#: per-``MessageKind`` counters (``emu.messages.<kind>``,
#: ``emu.bytes.<kind>``) and per-link transfer counters with a
#: data-driven *middle* (``emu.<link>.transfers``), hence the broad
#: ``emu.`` entry.
METRIC_PREFIXES = (
    "emu.",
    "emu.bytes.",
    "emu.messages.",
)


def is_registered(name: str) -> bool:
    """True when ``name`` is declared, exactly or via a prefix family."""
    return name in METRIC_NAMES or any(
        name.startswith(prefix) for prefix in METRIC_PREFIXES
    )
