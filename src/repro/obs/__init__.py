"""``repro.obs`` — zero-dependency tracing, metrics and profiling.

The observability layer of the reproduction: a :class:`Tracer` emits
nested spans (``run``/``round``/``broadcast``/``client_compute``/
``relevance_check``/``decide``/``aggregate``/``evaluate``) with
monotonic-clock durations, a :class:`MetricsRegistry` streams counters,
gauges and histograms, and pluggable sinks persist the event stream
(in-memory, JSON-lines, human-readable summary).

The central invariant is the *determinism contract*: event ordering and
payloads are a pure function of the run, identical across the
serial/thread/process execution backends; every wall-clock or
scheduling-dependent value is confined to the ``rt`` event attribute
and the ``runtime.*`` metric namespace, which
:func:`~repro.obs.report.deterministic_view` masks.  See
:mod:`repro.obs.tracer` for the schema and DESIGN.md §6c for the full
contract.

Render or diff a trace file with ``python -m repro.obs``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    RUNTIME_PREFIX,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    SummarySink,
    TraceSink,
    truncate_trace,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, TRACE_SCHEMA, Tracer
from repro.obs.report import (
    comm_totals,
    deterministic_view,
    diff_traces,
    format_report,
    load_trace,
    phase_summary,
    round_rows,
    trace_digest,
    trace_to_timing_payload,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "RUNTIME_PREFIX",
    "JsonlSink",
    "MemorySink",
    "SummarySink",
    "TraceSink",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "comm_totals",
    "deterministic_view",
    "diff_traces",
    "format_report",
    "load_trace",
    "phase_summary",
    "round_rows",
    "trace_digest",
    "trace_to_timing_payload",
    "truncate_trace",
    "validate_trace",
]
