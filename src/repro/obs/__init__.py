"""``repro.obs`` — zero-dependency tracing, metrics and profiling.

The observability layer of the reproduction: a :class:`Tracer` emits
nested spans (``run``/``round``/``broadcast``/``client_compute``/
``relevance_check``/``decide``/``aggregate``/``evaluate``) with
monotonic-clock durations, a :class:`MetricsRegistry` streams counters,
gauges and histograms, and pluggable sinks persist the event stream
(in-memory, JSON-lines, human-readable summary).

Built to stay constant-memory at population scale: per-client spans are
head-sampled (:class:`SpanSampler`, rate ``FLConfig.trace_sample``)
with the unsampled remainder folded into exact per-round
``round_rollup`` events (:class:`RoundRollup`, quantiles via the P²
sketch in :class:`StreamingHistogram`); a :class:`HealthMonitor`
consumes the rollups online and flags stalls, dead cohorts, comm-ledger
drift and stragglers.  Final metric values export as OpenMetrics text
or JSONL snapshots (:mod:`repro.obs.export`); metric names are declared
centrally in :mod:`repro.obs.names`.

The central invariant is the *determinism contract*: event ordering and
payloads are a pure function of the run, identical across the
serial/thread/process execution backends; every wall-clock or
scheduling-dependent value is confined to the ``rt`` event attribute
and the ``runtime.*`` metric namespace, which
:func:`~repro.obs.report.deterministic_view` masks.  See
:mod:`repro.obs.tracer` for the schema and DESIGN.md §6c for the full
contract.

Render, diff, export or live-watch a trace file with
``python -m repro.obs``.
"""

from repro.obs.export import (
    EXPORT_SCHEMA,
    metrics_from_trace,
    openmetrics_name,
    to_jsonl_snapshot,
    to_openmetrics,
)
from repro.obs.health import (
    HealthMonitor,
    health_events,
    health_summary,
    render_dashboard,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    RUNTIME_PREFIX,
)
from repro.obs.names import METRIC_NAMES, METRIC_PREFIXES, is_registered
from repro.obs.rollup import (
    P2Quantile,
    RoundRollup,
    SpanSampler,
    StreamingHistogram,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    SummarySink,
    TraceSink,
    truncate_trace,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, TRACE_SCHEMA, Tracer
from repro.obs.report import (
    comm_totals,
    deterministic_view,
    diff_traces,
    format_report,
    load_trace,
    phase_summary,
    rollup_rows,
    round_rows,
    trace_digest,
    trace_to_timing_payload,
    validate_trace,
)

__all__ = [
    "Counter",
    "EXPORT_SCHEMA",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "METRIC_NAMES",
    "METRIC_PREFIXES",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "P2Quantile",
    "RUNTIME_PREFIX",
    "RoundRollup",
    "SpanSampler",
    "StreamingHistogram",
    "JsonlSink",
    "MemorySink",
    "SummarySink",
    "TraceSink",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "comm_totals",
    "deterministic_view",
    "diff_traces",
    "format_report",
    "health_events",
    "health_summary",
    "is_registered",
    "load_trace",
    "metrics_from_trace",
    "openmetrics_name",
    "phase_summary",
    "render_dashboard",
    "rollup_rows",
    "round_rows",
    "to_jsonl_snapshot",
    "to_openmetrics",
    "trace_digest",
    "trace_to_timing_payload",
    "truncate_trace",
    "validate_trace",
]
