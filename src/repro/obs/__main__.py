"""``python -m repro.obs`` — render, validate, export and watch traces.

    python -m repro.obs report trace.jsonl [--history run.jsonl]
    python -m repro.obs validate trace.jsonl
    python -m repro.obs digest trace.jsonl
    python -m repro.obs diff a.jsonl b.jsonl
    python -m repro.obs export trace.jsonl [--format openmetrics|jsonl]
    python -m repro.obs watch trace.jsonl [--follow] [--interval 2.0]

``report`` prints the per-phase time/bytes breakdown; ``diff`` compares
two traces under the deterministic view (timestamps and other runtime
data masked) and exits non-zero when the runs diverged.  ``export``
writes the trace's final metric values as OpenMetrics text (or a JSONL
snapshot); ``watch`` renders the live health dashboard, re-reading the
growing trace file under ``--follow``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.export import (
    metrics_from_trace,
    to_jsonl_snapshot,
    to_openmetrics,
)
from repro.obs.health import render_dashboard
from repro.obs.report import (
    diff_traces,
    format_report,
    load_trace,
    trace_digest,
    validate_trace,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect repro-trace/v1 JSONL trace files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="per-phase time/bytes breakdown")
    report.add_argument("trace", type=Path)
    report.add_argument(
        "--history",
        type=Path,
        default=None,
        help="RunHistory JSONL to join round records by iteration",
    )

    validate = sub.add_parser("validate", help="schema-check a trace file")
    validate.add_argument("trace", type=Path)

    digest = sub.add_parser(
        "digest", help="SHA-256 of the deterministic view"
    )
    digest.add_argument("trace", type=Path)

    diff = sub.add_parser(
        "diff", help="compare two traces modulo runtime data"
    )
    diff.add_argument("a", type=Path)
    diff.add_argument("b", type=Path)

    export = sub.add_parser(
        "export", help="final metric values as OpenMetrics text or JSONL"
    )
    export.add_argument("trace", type=Path)
    export.add_argument(
        "--format",
        choices=("openmetrics", "jsonl"),
        default="openmetrics",
        help="output format (default: openmetrics)",
    )
    export.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write to this file instead of stdout",
    )

    watch = sub.add_parser(
        "watch", help="ASCII health dashboard over a (growing) trace"
    )
    watch.add_argument("trace", type=Path)
    watch.add_argument(
        "--follow",
        action="store_true",
        help="keep re-reading the trace until interrupted",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes under --follow (default: 2)",
    )
    return parser


def _run_export(args: argparse.Namespace) -> int:
    metrics = metrics_from_trace(load_trace(args.trace))
    render = to_openmetrics if args.format == "openmetrics" else (
        to_jsonl_snapshot
    )
    text = render(metrics)
    if args.out is None:
        sys.stdout.write(text)
    else:
        args.out.write_text(text, encoding="utf-8")
    return 0


def _load_loose(path: Path):
    """Like load_trace, but a half-written tail (a live run mid-write)
    is skipped instead of failing the whole refresh."""
    import json

    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return events


def _run_watch(args: argparse.Namespace) -> int:
    while True:
        events = _load_loose(args.trace)
        print(f"== {args.trace} — {len(events)} events ==")
        print(render_dashboard(events))
        if not args.follow:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "report":
            events = load_trace(args.trace)
            history = None
            if args.history is not None:
                from repro.fl.history import RunHistory

                history = RunHistory.from_jsonl(args.history)
            print(format_report(events, history=history))
            return 0
        if args.command == "validate":
            problems = validate_trace(load_trace(args.trace))
            if problems:
                for problem in problems:
                    print(problem, file=sys.stderr)
                return 1
            print(f"{args.trace}: valid repro-trace/v1")
            return 0
        if args.command == "digest":
            print(trace_digest(load_trace(args.trace)))
            return 0
        if args.command == "diff":
            differences = diff_traces(load_trace(args.a), load_trace(args.b))
            if differences:
                for difference in differences:
                    print(difference)
                return 1
            print("traces are equivalent modulo runtime data")
            return 0
        if args.command == "export":
            return _run_export(args)
        if args.command == "watch":
            return _run_watch(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
