"""``python -m repro.obs`` — render, validate, digest and diff traces.

    python -m repro.obs report trace.jsonl [--history run.jsonl]
    python -m repro.obs validate trace.jsonl
    python -m repro.obs digest trace.jsonl
    python -m repro.obs diff a.jsonl b.jsonl

``report`` prints the per-phase time/bytes breakdown; ``diff`` compares
two traces under the deterministic view (timestamps and other runtime
data masked) and exits non-zero when the runs diverged.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.report import (
    diff_traces,
    format_report,
    load_trace,
    trace_digest,
    validate_trace,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect repro-trace/v1 JSONL trace files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="per-phase time/bytes breakdown")
    report.add_argument("trace", type=Path)
    report.add_argument(
        "--history",
        type=Path,
        default=None,
        help="RunHistory JSONL to join round records by iteration",
    )

    validate = sub.add_parser("validate", help="schema-check a trace file")
    validate.add_argument("trace", type=Path)

    digest = sub.add_parser(
        "digest", help="SHA-256 of the deterministic view"
    )
    digest.add_argument("trace", type=Path)

    diff = sub.add_parser(
        "diff", help="compare two traces modulo runtime data"
    )
    diff.add_argument("a", type=Path)
    diff.add_argument("b", type=Path)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "report":
            events = load_trace(args.trace)
            history = None
            if args.history is not None:
                from repro.fl.history import RunHistory

                history = RunHistory.from_jsonl(args.history)
            print(format_report(events, history=history))
            return 0
        if args.command == "validate":
            problems = validate_trace(load_trace(args.trace))
            if problems:
                for problem in problems:
                    print(problem, file=sys.stderr)
                return 1
            print(f"{args.trace}: valid repro-trace/v1")
            return 0
        if args.command == "digest":
            print(trace_digest(load_trace(args.trace)))
            return 0
        if args.command == "diff":
            differences = diff_traces(load_trace(args.a), load_trace(args.b))
            if differences:
                for difference in differences:
                    print(difference)
                return 1
            print("traces are equivalent modulo runtime data")
            return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
