"""Counters, gauges and histograms for the observability layer.

A :class:`MetricsRegistry` is a named collection of instruments.
Counter and gauge updates are (optionally) streamed as ``metric``
events through the owning tracer's sinks, so a trace file carries the
full metric history, not just final values.  Histograms are the
exception: one event per observation would make the trace itself
O(population·rounds) on population-scale runs, so a histogram keeps a
constant-memory streaming summary (exact count/total/min/max plus P²
p50/p90/p99 — see :class:`repro.obs.rollup.StreamingHistogram`) and
surfaces it in the close-time ``metrics_snapshot`` event and the
per-round ``round_rollup`` events instead.

Metric names are not free-form: every call-site literal must be
declared in the :mod:`repro.obs.names` registry (the
``metric-name-registry`` lint rule enforces it).

Determinism contract (see :mod:`repro.obs.tracer`): a metric whose name
starts with ``runtime.`` is *runtime-dependent* — its values (queue
waits, pool restarts, worker timings) vary with scheduling and backend.
Runtime metrics carry their values inside the event's ``rt`` attribute
and are dropped entirely by :func:`repro.obs.report.deterministic_view`,
so traces of the same run under different execution backends digest
identically.  Everything else (uploads, rejected updates, bytes on the
wire) must be bitwise-deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.rollup import StreamingHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "RUNTIME_PREFIX",
]

#: Metric-name prefix marking runtime-dependent (nondeterministic) data.
RUNTIME_PREFIX = "runtime."

#: Emit callback: (name, metric_type, fields, runtime) -> None.
EmitFn = Callable[[str, str, Dict[str, Any], bool], None]


class _Instrument:
    """Shared plumbing: a name, a runtime flag and the emit callback."""

    metric_type = "instrument"
    __slots__ = ("name", "runtime", "_emit")

    def __init__(self, name: str, emit: Optional[EmitFn] = None) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.runtime = name.startswith(RUNTIME_PREFIX)
        self._emit = emit

    def _stream(self, fields: Dict[str, Any]) -> None:
        if self._emit is not None:
            self._emit(self.name, self.metric_type, fields, self.runtime)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Instrument):
    """A monotonically increasing count (uploads, bytes, restarts)."""

    metric_type = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, emit: Optional[EmitFn] = None) -> None:
        super().__init__(name, emit)
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r}: delta must be >= 0")
        self.value += delta
        self._stream({"delta": delta, "value": self.value})

    def summary(self) -> Dict[str, Any]:
        return {"type": self.metric_type, "value": self.value}


class Gauge(_Instrument):
    """A point-in-time value that can move both ways."""

    metric_type = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, emit: Optional[EmitFn] = None) -> None:
        super().__init__(name, emit)
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        self._stream({"value": value})

    def summary(self) -> Dict[str, Any]:
        return {"type": self.metric_type, "value": self.value}


class Histogram(_Instrument):
    """Bounded streaming summary over observed values (queue waits).

    Constant memory at any observation count: exact count/total/min/
    max plus P² quantile sketches (p50/p90/p99).  Deliberately does
    *not* stream a metric event per observation — see the module
    docstring; the summary reaches the trace through the close-time
    snapshot and the per-round rollups.
    """

    metric_type = "histogram"
    __slots__ = ("_sketch",)

    def __init__(self, name: str, emit: Optional[EmitFn] = None) -> None:
        super().__init__(name, emit)
        self._sketch = StreamingHistogram()

    def observe(self, value: float) -> None:
        self._sketch.observe(value)

    @property
    def count(self) -> int:
        return self._sketch.count

    @property
    def total(self) -> float:
        return self._sketch.total

    @property
    def min(self) -> Optional[float]:
        return self._sketch.min

    @property
    def max(self) -> Optional[float]:
        return self._sketch.max

    @property
    def mean(self) -> Optional[float]:
        return self._sketch.mean

    def quantile(self, p: float) -> Optional[float]:
        return self._sketch.quantile(p)

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": self.metric_type}
        out.update(self._sketch.summary())
        return out

    def state_dict(self) -> Dict[str, Any]:
        """Exact sketch state, for bitwise checkpoint resume."""
        return self._sketch.state_dict()

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._sketch.load_state_dict(state)


class MetricsRegistry:
    """Get-or-create store of named instruments.

    ``emit`` (wired up by :class:`~repro.obs.tracer.Tracer`) streams
    every update into the trace; a registry constructed without it is a
    plain in-memory store, usable standalone in tests.
    """

    def __init__(self, emit: Optional[EmitFn] = None) -> None:
        self._emit = emit
        self._metrics: Dict[str, _Instrument] = {}

    def _get(self, name: str, cls: type) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type}, not {cls.metric_type}"
                )
            return existing
        instrument = cls(name, emit=self._emit)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, runtime: Optional[bool] = None) -> Dict[str, Dict]:
        """Name-sorted ``{name: summary}``; filter by the runtime flag.

        ``runtime=False`` returns only deterministic metrics (safe to
        compare across execution backends), ``runtime=True`` only the
        ``runtime.*`` namespace, ``None`` everything.
        """
        return {
            name: metric.summary()
            for name, metric in sorted(self._metrics.items())
            if runtime is None or metric.runtime == runtime
        }

    def export_state(self) -> Dict[str, Dict]:
        """Serialisable snapshot of every instrument, for checkpoints.

        Histograms additionally carry their exact sketch state (the P²
        marker arrays) under ``state``, so a resumed run's quantile
        estimators continue the original observation sequence bitwise.
        """
        out: Dict[str, Dict] = {}
        for name, metric in sorted(self._metrics.items()):
            entry = metric.summary()
            if isinstance(metric, Histogram):
                entry = dict(entry)
                entry["state"] = metric.state_dict()
            out[name] = entry
        return out

    def restore(self, state: Dict[str, Dict]) -> None:
        """Reinstate instruments from :meth:`export_state` output.

        Sets instrument values directly — nothing is streamed to the
        trace — so a resumed run's next update continues the original
        value sequence exactly (counters keep counting from where the
        checkpointed run left off).
        """
        classes = {
            cls.metric_type: cls for cls in (Counter, Gauge, Histogram)
        }
        for name, summary in state.items():
            cls = classes.get(str(summary.get("type")))
            if cls is None:
                raise ValueError(
                    f"metric {name!r} has unknown type "
                    f"{summary.get('type')!r} in checkpoint state"
                )
            instrument = self._get(name, cls)
            if cls is Histogram:
                instrument.load_state_dict(summary["state"])
            else:
                instrument.value = summary["value"]


class _NullInstrument:
    """Accepts any update and does nothing; shared singleton."""

    __slots__ = ()
    value = None
    count = 0
    total = 0.0

    def inc(self, delta: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled-path registry: every lookup is the same no-op object.

    Keeps instrumented call sites (``metrics.counter(...).inc(...)``)
    allocation-free when tracing is off.
    """

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def snapshot(self, runtime: Optional[bool] = None) -> Dict[str, Dict]:
        return {}
