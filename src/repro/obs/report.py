"""Read, validate, diff and summarise ``repro-trace/v1`` files.

The functions here are the measurement side of the observability layer:
``tools/trace_report.py`` and ``python -m repro.obs`` render a
per-phase time/bytes breakdown from a trace, and the deterministic view
(+ digest) is how the cross-backend equivalence contract is checked —
two traces of the same run under different execution backends must be
identical after :func:`deterministic_view`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.health import health_summary
from repro.obs.metrics import RUNTIME_PREFIX
from repro.obs.tracer import TRACE_SCHEMA
from repro.utils.tables import format_table

__all__ = [
    "comm_totals",
    "deterministic_view",
    "diff_traces",
    "format_report",
    "load_trace",
    "phase_summary",
    "rollup_rows",
    "round_rows",
    "trace_digest",
    "trace_to_timing_payload",
    "validate_trace",
]

_KINDS = ("header", "span", "point", "metric")


def load_trace(source: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a ``.jsonl`` trace file into its event list."""
    events = []
    with open(source, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{source}:{lineno}: not JSON: {exc}") from exc
    return events


def validate_trace(events: List[Dict[str, Any]]) -> List[str]:
    """Schema-check an event list; returns problems (empty = valid)."""
    problems: List[str] = []
    if not events:
        return ["trace is empty"]
    head = events[0]
    if head.get("kind") != "header":
        problems.append("first event is not a header")
    elif head.get("attrs", {}).get("schema") != TRACE_SCHEMA:
        problems.append(
            f"header schema is {head.get('attrs', {}).get('schema')!r}, "
            f"expected {TRACE_SCHEMA!r}"
        )
    seen_ids = set()
    prev_seq = -1
    for i, event in enumerate(events):
        where = f"event {i}"
        kind = event.get("kind")
        if kind not in _KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= prev_seq:
            problems.append(f"{where}: seq {seq!r} not strictly increasing")
        else:
            prev_seq = seq
        if not isinstance(event.get("attrs"), dict):
            problems.append(f"{where}: attrs is not a dict")
        if not isinstance(event.get("rt"), dict):
            problems.append(f"{where}: rt is not a dict")
        if kind == "span":
            span_id = event.get("id")
            if not isinstance(span_id, int):
                problems.append(f"{where}: span without integer id")
            elif span_id in seen_ids:
                problems.append(f"{where}: duplicate span id {span_id}")
            else:
                seen_ids.add(span_id)
            dur = event.get("rt", {}).get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: span rt.dur {dur!r} invalid")
        if kind in ("span", "point"):
            parent = event.get("parent")
            if parent is not None and not isinstance(parent, int):
                problems.append(f"{where}: parent {parent!r} invalid")
    # Parents must reference real span ids.  A parent may legitimately
    # be emitted *after* its children (spans emit on close), so resolve
    # against the full id set.
    all_ids = {e["id"] for e in events if e.get("kind") == "span"}
    for i, event in enumerate(events):
        parent = event.get("parent")
        if parent is not None and parent not in all_ids:
            problems.append(f"event {i}: parent {parent} is not a span id")
    return problems


def deterministic_view(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The backend-invariant projection of a trace.

    Drops ``runtime.*`` events, then strips ``rt`` (timestamps,
    durations, workers, backend) and ``seq`` (renumbered implicitly by
    list order) from what remains.  Two traces of the same run under
    any execution backend are equal under this view.
    """
    return [
        {k: v for k, v in event.items() if k not in ("rt", "seq")}
        for event in events
        if not str(event.get("name", "")).startswith(RUNTIME_PREFIX)
    ]


def trace_digest(events: Iterable[Dict[str, Any]]) -> str:
    """SHA-256 over the deterministic view (canonical JSON)."""
    canonical = json.dumps(
        deterministic_view(events), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def diff_traces(
    a: List[Dict[str, Any]], b: List[Dict[str, Any]]
) -> List[str]:
    """Compare two traces under the deterministic view.

    Returns human-readable differences (empty = equivalent runs).
    """
    va, vb = deterministic_view(a), deterministic_view(b)
    differences: List[str] = []
    if len(va) != len(vb):
        differences.append(
            f"event counts differ: {len(va)} vs {len(vb)} (after masking)"
        )
    for i, (ea, eb) in enumerate(zip(va, vb)):
        if ea != eb:
            differences.append(
                f"first divergence at masked event {i}: "
                f"{json.dumps(ea, sort_keys=True)} != "
                f"{json.dumps(eb, sort_keys=True)}"
            )
            break
    return differences


def phase_summary(events: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per span-name aggregates: count, total/mean/max duration (s)."""
    phases: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        dur = float(event.get("rt", {}).get("dur", 0.0))
        entry = phases.setdefault(
            event["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += dur
        entry["max_s"] = max(entry["max_s"], dur)
    for entry in phases.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return phases


def comm_totals(events: Iterable[Dict[str, Any]]) -> Dict[str, Union[int, float]]:
    """Final values of the deterministic counters (``comm.*``, ``emu.*``).

    Reads the running ``value`` field of metric events, so a truncated
    trace yields the totals up to the truncation point.
    """
    totals: Dict[str, Union[int, float]] = {}
    for event in events:
        if event.get("kind") != "metric":
            continue
        if str(event["name"]).startswith(RUNTIME_PREFIX):
            continue
        value = event.get("attrs", {}).get("value")
        if value is not None:
            totals[event["name"]] = value
    return totals


def _round_ancestor(
    event: Dict[str, Any], by_id: Dict[int, Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    seen = set()
    current = event
    while True:
        parent = current.get("parent")
        if parent is None or parent in seen or parent not in by_id:
            return None
        seen.add(parent)
        current = by_id[parent]
        if current.get("name") == "round":
            return current


def round_rows(
    events: List[Dict[str, Any]],
    history: Optional[Iterable] = None,
) -> List[Dict[str, Any]]:
    """One row per round span: wall time plus per-phase child sums.

    ``history`` (an iterable of
    :class:`~repro.fl.history.RoundRecord`-likes, e.g. loaded via
    ``RunHistory.from_jsonl``) is joined by iteration to pull in the
    round's upload count and byte totals.
    """
    spans = [e for e in events if e.get("kind") == "span"]
    by_id = {e["id"]: e for e in spans}
    records = {}
    if history is not None:
        records = {r.iteration: r for r in history}
    rows: Dict[int, Dict[str, Any]] = {}
    for span in spans:
        if span["name"] == "round":
            iteration = span.get("attrs", {}).get("iteration")
            rows[span["id"]] = {
                "iteration": iteration,
                "round_s": float(span["rt"].get("dur", 0.0)),
                "client_compute_s": 0.0,
                "decide_s": 0.0,
                "aggregate_s": 0.0,
                "evaluate_s": 0.0,
                "broadcast_s": 0.0,
            }
    for span in spans:
        key = f"{span['name']}_s"
        owner = _round_ancestor(span, by_id)
        if owner is None or owner["id"] not in rows:
            continue
        row = rows[owner["id"]]
        if key in row and span["name"] != "round":
            row[key] += float(span["rt"].get("dur", 0.0))
    ordered = sorted(rows.values(), key=lambda r: (r["iteration"] is None, r["iteration"]))
    for row in ordered:
        record = records.get(row["iteration"])
        if record is not None:
            row["n_uploaded"] = record.n_uploaded
            row["total_bytes"] = record.total_bytes
    return ordered


def rollup_rows(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One flat row per ``round_rollup`` event, for tables.

    Pulls the headline numbers out of the nested summaries: cohort and
    upload counts plus the p50s of relevance score, train loss and
    (runtime side) client compute time.
    """
    rows: List[Dict[str, Any]] = []
    for event in events:
        if event.get("name") != "round_rollup":
            continue
        attrs = event.get("attrs", {})
        compute = event.get("rt", {}).get("compute_s", {})
        rows.append(
            {
                "iteration": attrs.get("iteration"),
                "n_participants": attrs.get("n_participants"),
                "n_uploaded": attrs.get("n_uploaded"),
                "n_forced": attrs.get("n_forced"),
                "uploaded_bytes": attrs.get("uploaded_bytes"),
                "score_p50": attrs.get("score", {}).get("p50"),
                "train_loss_p50": attrs.get("train_loss", {}).get("p50"),
                "compute_p50_s": compute.get("p50"),
                "compute_max_s": compute.get("max"),
            }
        )
    return rows


def format_report(
    events: List[Dict[str, Any]],
    history: Optional[Iterable] = None,
) -> str:
    """The human-readable breakdown behind ``python -m repro.obs``."""
    parts: List[str] = []
    phases = phase_summary(events)
    parts.append(
        format_table(
            ["phase", "spans", "total_s", "mean_ms", "max_ms"],
            [
                [
                    name,
                    int(entry["count"]),
                    entry["total_s"],
                    entry["mean_s"] * 1e3,
                    entry["max_s"] * 1e3,
                ]
                for name, entry in sorted(phases.items())
            ],
            title="per-phase wall time",
        )
    )
    rows = round_rows(events, history=history)
    if rows:
        headers = ["iter", "round_s", "broadcast_s", "client_compute_s",
                   "decide_s", "aggregate_s", "evaluate_s"]
        extra = [k for k in ("n_uploaded", "total_bytes") if k in rows[0]]
        parts.append(
            format_table(
                headers + extra,
                [
                    [r["iteration"], r["round_s"], r["broadcast_s"],
                     r["client_compute_s"], r["decide_s"], r["aggregate_s"],
                     r["evaluate_s"]] + [r.get(k, "") for k in extra]
                    for r in rows
                ],
                title="per-round breakdown",
            )
        )
    totals = comm_totals(events)
    if totals:
        parts.append(
            format_table(
                ["metric", "total"],
                [[name, value] for name, value in sorted(totals.items())],
                title="communication totals",
            )
        )
    rollups = rollup_rows(events)
    if rollups:
        keys = list(rollups[0].keys())
        parts.append(
            format_table(
                keys,
                [[row.get(k, "") for k in keys] for row in rollups],
                title="per-round rollups",
            )
        )
    findings = health_summary(events)
    if findings:
        parts.append(
            format_table(
                ["finding", "events"],
                [[name, count] for name, count in findings.items()],
                title="health findings",
            )
        )
    errors = [e for e in events if e.get("kind") == "point"
              and e.get("name") == "client_error"]
    if errors:
        parts.append(
            format_table(
                ["client", "iteration", "error", "elapsed_s"],
                [
                    [e["attrs"].get("client_id"), e["attrs"].get("iteration"),
                     e["attrs"].get("error"),
                     e.get("rt", {}).get("elapsed", "")]
                    for e in errors
                ],
                title="client failures",
            )
        )
    return "\n\n".join(parts)


def trace_to_timing_payload(
    events: List[Dict[str, Any]], workload: str = "traced_run"
) -> Dict[str, Any]:
    """Convert a trace's phase aggregates into the bench-timing schema.

    The result is a minimal ``repro-bench-timing/v1`` payload (one
    workload, one backend) accepted by ``tools/bench_compare.py``, so a
    traced production run can be regression-checked against the
    recorded ``BENCH_timing.json`` baseline.
    """
    phases = phase_summary(events)
    rounds = phases.get("round")
    if rounds is None or not rounds["count"]:
        raise ValueError("trace contains no round spans")
    compute = phases.get("client_compute", {"count": 0})
    n_rounds = int(rounds["count"])
    n_clients = int(compute["count"]) // n_rounds if compute["count"] else 0
    sec_per_round = rounds["total_s"] / n_rounds
    backend = "traced"
    for event in events:
        if event.get("kind") == "span" and event["name"] == "run":
            backend = event.get("rt", {}).get("backend", backend)
            break
    return {
        "schema": "repro-bench-timing/v1",
        "config": {"source": "trace", "rounds_timed": n_rounds},
        "workloads": {
            workload: {
                "backends": {
                    backend: {
                        "backend": backend,
                        "rounds_timed": n_rounds,
                        "n_clients": n_clients,
                        "sec_per_round": sec_per_round,
                        "clients_per_sec": (
                            n_clients / sec_per_round if sec_per_round else 0.0
                        ),
                    }
                },
                "identical_histories": True,
            }
        },
    }
