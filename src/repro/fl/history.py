"""Per-round run records and the history container experiments consume."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.utils.atomic_io import atomic_write_text

__all__ = ["COMPATIBLE_SCHEMAS", "HISTORY_SCHEMA", "RoundRecord", "RunHistory"]

#: Schema tag of the JSONL serialisation (header line of every file).
#: v2 added the async-engine columns ``staleness``/``virtual_time``
#: (synchronous runs record zeros); v1 files still load, with zeros.
HISTORY_SCHEMA = "repro-run-history/v2"

#: Schemas :meth:`RunHistory.from_jsonl` accepts (newest first).
COMPATIBLE_SCHEMAS = ("repro-run-history/v2", "repro-run-history/v1")


@dataclass
class RoundRecord:
    """Everything measured in one federated iteration.

    ``staleness`` is how many later rounds closed between this round's
    dispatch and its aggregation, and ``virtual_time`` the simulated
    close time — both always zero under the synchronous trainer (and
    the async engine's S=0 mode, whose histories are bitwise the
    synchronous ones), nonzero only under bounded-staleness async runs.
    """

    iteration: int
    n_clients: int
    n_uploaded: int
    accumulated_rounds: int
    total_bytes: int
    lr: float
    mean_train_loss: float
    mean_score: float
    threshold: float
    test_loss: Optional[float] = None
    test_metric: Optional[float] = None
    uploaded_ids: List[int] = field(default_factory=list)
    staleness: int = 0
    virtual_time: float = 0.0

    @property
    def upload_fraction(self) -> float:
        return self.n_uploaded / self.n_clients if self.n_clients else 0.0


class RunHistory:
    """Ordered round records plus convenience array views."""

    def __init__(self, policy_name: str) -> None:
        self.policy_name = policy_name
        self.records: List[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        if self.records and record.iteration <= self.records[-1].iteration:
            raise ValueError("round records must have increasing iterations")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def final(self) -> RoundRecord:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1]

    def iterations(self) -> np.ndarray:
        return np.asarray([r.iteration for r in self.records])

    def accumulated_rounds(self) -> np.ndarray:
        return np.asarray([r.accumulated_rounds for r in self.records])

    def total_bytes(self) -> np.ndarray:
        return np.asarray([r.total_bytes for r in self.records])

    def scores(self) -> np.ndarray:
        """Mean policy score (relevance / significance) per round."""
        return np.asarray([r.mean_score for r in self.records])

    def train_losses(self) -> np.ndarray:
        return np.asarray([r.mean_train_loss for r in self.records])

    def staleness(self) -> np.ndarray:
        """Per-round aggregation staleness (all zeros for sync runs)."""
        return np.asarray([r.staleness for r in self.records])

    def virtual_times(self) -> np.ndarray:
        """Simulated close times (all zeros for sync runs)."""
        return np.asarray([r.virtual_time for r in self.records])

    def evaluated_points(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """(iterations, accumulated_rounds, test_metric) where evaluated."""
        rows = [
            (r.iteration, r.accumulated_rounds, r.test_metric)
            for r in self.records
            if r.test_metric is not None
        ]
        if not rows:
            return np.array([]), np.array([]), np.array([])
        arr = np.asarray(rows, dtype=float)
        return arr[:, 0], arr[:, 1], arr[:, 2]

    # -- JSONL round-trip ----------------------------------------------

    def to_jsonl(
        self,
        path: Optional[Union[str, Path]] = None,
        append: bool = False,
    ) -> str:
        """Serialise as JSON lines: a schema header, then one record per line.

        Returns the text; also writes it to ``path`` when given (via an
        atomic replace, so a crash never leaves a half-written file).
        The format round-trips exactly through :meth:`from_jsonl` (plain
        ints/floats only, so equality is bitwise).

        ``append=True`` is *continuation* mode for resumed runs: when
        ``path`` already holds a history, this history must extend it —
        same policy, byte-identical records for every iteration the file
        already covers — otherwise a ``ValueError`` refuses the write.
        The full serialisation is still written atomically (the file is
        replaced, not appended to in place); ``append`` names the
        contract, not the syscall.
        """
        lines = [
            json.dumps(
                {"schema": HISTORY_SCHEMA, "policy_name": self.policy_name},
                sort_keys=True,
            )
        ]
        lines.extend(
            json.dumps(asdict(record), sort_keys=True) for record in self.records
        )
        text = "\n".join(lines) + "\n"
        if path is not None:
            if append and Path(path).exists():
                self._check_continuation(Path(path))
            atomic_write_text(path, text)
        return text

    def _check_continuation(self, path: Path) -> None:
        """Require this history to be a superset of the one at ``path``."""
        existing = type(self).from_jsonl(path)
        if existing.policy_name != self.policy_name:
            raise ValueError(
                f"history at {path} is for policy "
                f"{existing.policy_name!r}, not {self.policy_name!r}; "
                "refusing to overwrite"
            )
        if len(existing) > len(self):
            raise ValueError(
                f"history at {path} has {len(existing)} records, more "
                f"than this run's {len(self)}; refusing to overwrite"
            )
        for old, new in zip(existing.records, self.records):
            if asdict(old) != asdict(new):
                raise ValueError(
                    f"history at {path} diverges at iteration "
                    f"{old.iteration}; refusing to overwrite"
                )

    @classmethod
    def from_jsonl(cls, source: Union[str, Path]) -> "RunHistory":
        """Rebuild a history from :meth:`to_jsonl` output.

        ``source`` may be a path to a ``.jsonl`` file or the serialised
        text itself (recognised by its leading ``{``).
        """
        if isinstance(source, Path) or not source.lstrip().startswith("{"):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty run-history serialisation")
        header = json.loads(lines[0])
        if header.get("schema") not in COMPATIBLE_SCHEMAS:
            raise ValueError(
                f"expected schema {HISTORY_SCHEMA!r} (or a compatible "
                f"older one of {COMPATIBLE_SCHEMAS}), "
                f"got {header.get('schema')!r}"
            )
        history = cls(policy_name=header["policy_name"])
        for line in lines[1:]:
            history.append(RoundRecord(**json.loads(line)))
        return history
